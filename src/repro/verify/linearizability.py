"""Linearizability checking for KV histories (Wing–Gong / Lowe style).

The service is linearizable iff every operation appears to take effect
atomically between its invocation and its response. We exploit that KV
keys are independent registers: a history is linearizable iff each per-key
sub-history is, which turns an exponential global search into many small
ones.

Per key, the checker runs the classic Wing–Gong search — repeatedly pick a
*minimal* operation (one invoked before every unlinearized response),
apply it to the model state, recurse — with Lowe's memoisation on
``(remaining operation set, model state)``.

Pending operations (invoked, never acknowledged) are handled soundly: each
may either have taken effect at any point after its invocation or never
have executed at all, so the search may linearize it or leave it out.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any

from repro.errors import VerificationError
from repro.verify.histories import History, Operation

_INFINITY = float("inf")


@dataclass(frozen=True, slots=True)
class LinearizabilityResult:
    """Outcome of a check, with the failing key for diagnostics."""

    ok: bool
    failing_key: str | None = None
    checked_keys: int = 0
    checked_ops: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def _apply(op: Operation, state: Any) -> tuple[bool, Any]:
    """Check ``op``'s observed response against model ``state``.

    Returns ``(consistent, new_state)``. Pending operations have no
    observed response, so any outcome is consistent; their state effect
    still applies.
    """
    kind = op.op
    if kind == "get":
        if op.pending:
            return True, state
        return state == op.value, state
    if kind == "set":
        new_state = op.args[1]
        if op.pending:
            return True, new_state
        return op.value == "ok", new_state
    if kind == "delete":
        existed = state is not None
        if op.pending:
            return True, None
        return op.value == existed, None
    if kind == "cas":
        expected, new = op.args[1], op.args[2]
        success = state == expected
        new_state = new if success else state
        if op.pending:
            return True, new_state
        return op.value == success, new_state
    raise VerificationError(f"linearizability model cannot interpret op {kind!r}")


def _check_key(ops: list[Operation]) -> bool:
    """Wing–Gong search over one key's operations."""
    n = len(ops)
    invs = [op.invoked_at for op in ops]
    rets = [op.returned_at if op.returned_at is not None else _INFINITY for op in ops]
    completed_mask = 0
    for i, op in enumerate(ops):
        if not op.pending:
            completed_mask |= 1 << i

    memo: set[tuple[int, Any]] = set()

    def search(remaining: int, state: Any) -> bool:
        if remaining & completed_mask == 0:
            # Every acknowledged operation is linearized; leftover pending
            # operations are allowed to have never executed.
            return True
        key = (remaining, state)
        if key in memo:
            return False
        earliest_ret = min(
            rets[i] for i in range(n) if remaining >> i & 1
        )
        for i in range(n):
            if not remaining >> i & 1:
                continue
            if invs[i] > earliest_ret:
                continue
            consistent, new_state = _apply(ops[i], state)
            if not consistent:
                continue
            if search(remaining & ~(1 << i), new_state):
                return True
        memo.add(key)
        return False

    return search((1 << n) - 1, None)


def check_kv_linearizable(
    history: History, raise_on_failure: bool = False
) -> LinearizabilityResult:
    """Check a KV history for linearizability, key by key."""
    partitions = history.by_key()
    total_ops = sum(len(ops) for ops in partitions.values())
    depth_needed = max((len(ops) for ops in partitions.values()), default=0) + 100
    old_limit = sys.getrecursionlimit()
    if depth_needed > old_limit:
        sys.setrecursionlimit(depth_needed + old_limit)
    try:
        for key, ops in sorted(partitions.items()):
            if not _check_key(ops):
                if raise_on_failure:
                    raise VerificationError(f"history is not linearizable at key {key!r}")
                return LinearizabilityResult(
                    ok=False,
                    failing_key=key,
                    checked_keys=len(partitions),
                    checked_ops=total_ops,
                )
    finally:
        sys.setrecursionlimit(old_limit)
    return LinearizabilityResult(
        ok=True, checked_keys=len(partitions), checked_ops=total_ops
    )
