"""Correctness oracles: histories, linearizability, structural invariants.

Replication bugs rarely announce themselves; these oracles make them loud:

* :mod:`repro.verify.histories` — client-observed operation histories.
* :mod:`repro.verify.linearizability` — a Wing–Gong/Lowe-style checker for
  per-key KV histories (the service-level safety property).
* :mod:`repro.verify.invariants` — replica-internal structural checks:
  virtual-log prefix consistency, configuration-chain agreement, cut
  determinism, reply consistency.
"""

from repro.verify.app_oracles import (
    bank_conservation_bounds,
    check_bank_conservation,
    check_lock_mutual_exclusion,
)
from repro.verify.histories import History, Operation, dump_jsonl, load_jsonl
from repro.verify.invariants import (
    check_chain_agreement,
    check_prefix_consistency,
    check_reply_consistency,
    run_all_invariants,
)
from repro.verify.linearizability import check_kv_linearizable
from repro.verify.replay import check_replay_matches_acks, replay_committed
from repro.verify.suite import VerificationReport, verify_run

__all__ = [
    "History",
    "Operation",
    "bank_conservation_bounds",
    "check_bank_conservation",
    "check_chain_agreement",
    "check_lock_mutual_exclusion",
    "check_kv_linearizable",
    "check_prefix_consistency",
    "check_reply_consistency",
    "run_all_invariants",
    "VerificationReport",
    "check_replay_matches_acks",
    "dump_jsonl",
    "load_jsonl",
    "replay_committed",
    "verify_run",
]
