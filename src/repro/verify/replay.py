"""Replay oracle: acknowledged replies must match a log replay.

The linearizability checker validates the service from the clients' side;
the structural invariants validate replicas against each other. This
oracle closes the remaining gap — it validates the *link* between the two:
replaying a replica's committed virtual log through a fresh state machine
must reproduce, at the right position, exactly the reply value every
client was given. A bug that computed a wrong reply but logged the right
command (or vice versa) is invisible to the other oracles and loud here.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.client import Client
from repro.core.command import ReconfigCommand
from repro.core.reconfig import ReconfigurableReplica
from repro.core.statemachine import DedupStateMachine, StateMachine
from repro.errors import VerificationError
from repro.types import Command, CommandId


def replay_committed(
    replica: ReconfigurableReplica,
    app_factory: Callable[[], StateMachine],
) -> dict[CommandId, object]:
    """Replay a replica's committed entries; returns cid -> replay value.

    Only meaningful for replicas that executed from the beginning of the
    virtual log (founding members that never jumped); replicas that joined
    mid-log raise, since their prefix is inside a snapshot.
    """
    if replica.committed and replica.committed[0][2] != 0:
        raise VerificationError(
            f"{replica.node} joined mid-log; replay needs a founding replica"
        )
    state = DedupStateMachine(app_factory())
    values: dict[CommandId, object] = {}
    for payload, _epoch, _vindex in replica.committed:
        if isinstance(payload, Command):
            values[payload.cid] = state.apply(payload)
        elif isinstance(payload, ReconfigCommand):
            values.setdefault(payload.cid, None)
    return values


def check_replay_matches_acks(
    replica: ReconfigurableReplica,
    clients: Iterable[Client],
    app_factory: Callable[[], StateMachine],
    lease_mode: bool = False,
    read_only_ops: frozenset = frozenset(
        {"get", "scan", "read", "balance", "holder", "total"}
    ),
) -> int:
    """Verify every acknowledged reply against the replay; returns count.

    With ``lease_mode`` on, reads may legitimately be absent from the log
    (served locally at the leaseholder) or have been answered at a
    different serialization point than a logged duplicate — they are
    skipped, and their correctness is the linearizability checker's job.
    A *write* missing from the log is always a violation: an acknowledged
    effect that never happened.
    """
    replayed = replay_committed(replica, app_factory)
    checked = 0
    for client in clients:
        for record in client.records:
            cid = record.cid
            is_read = record.op in read_only_ops
            if cid not in replayed:
                if is_read and lease_mode:
                    continue  # served off-log by a leaseholder
                raise VerificationError(
                    f"acknowledged {record.op} {cid} never appears in the "
                    f"committed log of {replica.node}"
                )
            if is_read and lease_mode:
                continue  # ack may predate the logged duplicate
            checked += 1
            if replayed[cid] != record.value:
                raise VerificationError(
                    f"reply mismatch for {cid}: client was told "
                    f"{record.value!r}, replay computes {replayed[cid]!r}"
                )
    return checked
