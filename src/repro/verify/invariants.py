"""Structural invariants over replica internals.

The linearizability checker validates the service from the outside; these
checks validate the composition from the inside. They read replica state
directly (simulation superpower) and raise :class:`VerificationError` on
the first violation.

* **Virtual-log prefix consistency** — committed entries at any two
  replicas agree position-by-position (aligned on virtual index; joiners
  start mid-log, so their sequence is a contiguous slice, not a prefix).
* **Chain agreement** — every epoch known to several replicas has the same
  membership everywhere; sealed epochs have the same cut slot.
* **Reply consistency** — any command acknowledged anywhere has exactly
  one (value, virtual index) across the cluster; exactly-once made
  visible.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.reconfig import ReconfigurableReplica
from repro.errors import VerificationError
from repro.types import Command


def check_prefix_consistency(replicas: Iterable[ReconfigurableReplica]) -> int:
    """Verify all replicas agree on every virtual-log position they share.

    Returns the number of distinct positions covered.
    """
    canon: dict[int, tuple[str, int]] = {}
    owner: dict[int, str] = {}
    for replica in replicas:
        for payload, epoch, vindex in replica.committed:
            entry = (repr(payload), epoch)
            if vindex in canon:
                if canon[vindex] != entry:
                    raise VerificationError(
                        f"virtual-log divergence at index {vindex}: "
                        f"{owner[vindex]} has {canon[vindex]}, "
                        f"{replica.node} has {entry}"
                    )
            else:
                canon[vindex] = entry
                owner[vindex] = str(replica.node)
    # Each replica's own sequence must be strictly increasing. It is
    # normally contiguous too, but a replica that adopted a later boundary
    # snapshot (joiners; the skipped-epoch jump) legitimately has one
    # upward gap per adoption — never a repeat or regression.
    for replica in replicas:
        indices = [vindex for _, _, vindex in replica.committed]
        for a, b in zip(indices, indices[1:]):
            if b <= a:
                raise VerificationError(
                    f"{replica.node} executed virtual indices out of order: "
                    f"{a} then {b}"
                )
    return len(canon)


def check_chain_agreement(replicas: Iterable[ReconfigurableReplica]) -> int:
    """Verify configuration-chain agreement; returns epochs covered."""
    members_by_epoch: dict[int, tuple[str, str]] = {}
    cut_by_epoch: dict[int, tuple[int, str]] = {}
    for replica in replicas:
        for epoch, runtime in replica.chain.items():
            membership = str(runtime.config.members)
            known = members_by_epoch.get(epoch)
            if known is not None and known[0] != membership:
                raise VerificationError(
                    f"epoch {epoch} membership disagreement: "
                    f"{known[1]} has {known[0]}, {replica.node} has {membership}"
                )
            members_by_epoch.setdefault(epoch, (membership, str(replica.node)))
            if runtime.sealed:
                cut = cut_by_epoch.get(epoch)
                if cut is not None and cut[0] != runtime.cut_slot:
                    raise VerificationError(
                        f"epoch {epoch} cut disagreement: {cut[1]} cut at "
                        f"{cut[0]}, {replica.node} cut at {runtime.cut_slot}"
                    )
                cut_by_epoch.setdefault(epoch, (runtime.cut_slot, str(replica.node)))
    return len(members_by_epoch)


def check_reply_consistency(replicas: Iterable[ReconfigurableReplica]) -> int:
    """Verify acknowledged commands have one value/position cluster-wide."""
    canon: dict[object, tuple[object, int, str]] = {}
    for replica in replicas:
        for cid, (value, _epoch, vindex) in replica._replies.items():
            known = canon.get(cid)
            if known is not None:
                if (known[0], known[1]) != (value, vindex):
                    raise VerificationError(
                        f"command {cid} answered differently: "
                        f"{known[2]} said {known[0]!r}@{known[1]}, "
                        f"{replica.node} said {value!r}@{vindex}"
                    )
            else:
                canon[cid] = (value, vindex, str(replica.node))
    return len(canon)


def check_no_duplicate_effects(replicas: Iterable[ReconfigurableReplica]) -> int:
    """Verify no replica *applied* a client command twice with effect.

    Duplicate log entries are legal (retries, orphan re-proposal); the
    dedup layer must have suppressed every re-execution. We reconstruct the
    per-replica applied sets and confirm each command id executes at most
    once before its duplicate appears.
    """
    checked = 0
    for replica in replicas:
        first_seen: dict[object, int] = {}
        for payload, _epoch, vindex in replica.committed:
            if isinstance(payload, Command):
                checked += 1
                if payload.cid in first_seen:
                    # A duplicate entry: allowed, but the dedup layer must
                    # report it as suppressed, which we can observe in the
                    # state machine statistics.
                    state = replica.state
                    if state is not None and state.duplicates_suppressed == 0:
                        raise VerificationError(
                            f"{replica.node} saw duplicate entry for "
                            f"{payload.cid} but suppressed nothing"
                        )
                else:
                    first_seen[payload.cid] = vindex
    return checked


def run_all_invariants(replicas: Iterable[ReconfigurableReplica]) -> dict[str, int]:
    """Run every structural invariant; returns coverage counters."""
    replica_list = [r for r in replicas]
    return {
        "positions": check_prefix_consistency(replica_list),
        "epochs": check_chain_agreement(replica_list),
        "replies": check_reply_consistency(replica_list),
        "commands": check_no_duplicate_effects(replica_list),
    }
