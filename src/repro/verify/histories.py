"""Client-observed operation histories.

A history is the external, service-level record of a run: invocations and
responses as the *clients* saw them. This is the right granularity for
linearizability — internals (epochs, retries, re-proposals) are invisible
here, exactly as they should be invisible to correctness.

Pending operations (invoked but never acknowledged, e.g., the client's last
command when the run ended) matter: they *may or may not* have taken
effect, and the checker must consider both possibilities.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.core.client import Client
from repro.errors import HistoryError
from repro.types import ClientId, CommandId, Time


@dataclass(frozen=True, slots=True)
class Operation:
    """One client operation, completed or pending."""

    cid: CommandId
    op: str
    args: tuple
    invoked_at: Time
    #: None for pending operations (no response observed).
    returned_at: Time | None
    value: Any

    @property
    def pending(self) -> bool:
        return self.returned_at is None

    def key(self) -> str | None:
        """The KV key this operation touches, if it is a KV operation."""
        if self.op in ("get", "set", "delete", "cas") and self.args:
            return str(self.args[0])
        return None


class History:
    """An ordered collection of client operations from one run."""

    def __init__(self, operations: Iterable[Operation]):
        self.operations = sorted(operations, key=lambda o: (o.invoked_at, str(o.cid)))
        self._validate()

    def _validate(self) -> None:
        seen: set[CommandId] = set()
        for op in self.operations:
            if op.cid in seen:
                raise HistoryError(f"duplicate operation record for {op.cid}")
            seen.add(op.cid)
            if op.returned_at is not None and op.returned_at < op.invoked_at:
                raise HistoryError(f"operation {op.cid} returned before invocation")

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    @property
    def completed(self) -> list[Operation]:
        return [op for op in self.operations if not op.pending]

    @property
    def pending(self) -> list[Operation]:
        return [op for op in self.operations if op.pending]

    def for_client(self, client: ClientId) -> list[Operation]:
        return [op for op in self.operations if op.cid.client == client]

    def by_key(self) -> dict[str, list[Operation]]:
        """Partition KV operations per key (keys are independent objects)."""
        partitions: dict[str, list[Operation]] = {}
        for op in self.operations:
            key = op.key()
            if key is not None:
                partitions.setdefault(key, []).append(op)
        return partitions

    @classmethod
    def from_clients(cls, clients: Iterable[Client], include_pending: bool = True) -> "History":
        """Assemble the run's history from client-side records."""
        operations: list[Operation] = []
        for client in clients:
            for record in client.records:
                operations.append(
                    Operation(
                        cid=record.cid,
                        op=record.op,
                        args=record.args,
                        invoked_at=record.invoked_at,
                        returned_at=record.returned_at,
                        value=record.value,
                    )
                )
            if include_pending and client._current is not None:
                current = client._current
                operations.append(
                    Operation(
                        cid=current.cid,
                        op=current.op,
                        args=current.args,
                        invoked_at=client._invoked_at,
                        returned_at=None,
                        value=None,
                    )
                )
        return cls(operations)


def dump_jsonl(history: History, path: str | Path) -> None:
    """Write a history as JSON lines (one operation per line).

    Live chaos runs (``repro chaos --history``) persist their recorded
    histories this way, so a failing run's evidence survives the run and
    can be re-checked offline with :func:`load_jsonl` +
    :func:`repro.verify.linearizability.check_kv_linearizable`.
    """
    with open(path, "w", encoding="utf-8") as out:
        for op in history:
            out.write(json.dumps({
                "client": str(op.cid.client),
                "seq": op.cid.seq,
                "op": op.op,
                "args": list(op.args),
                "invoked_at": op.invoked_at,
                "returned_at": op.returned_at,
                "value": op.value,
            }, separators=(",", ":")) + "\n")


def load_jsonl(path: str | Path) -> History:
    """Load a history written by :func:`dump_jsonl`."""
    operations: list[Operation] = []
    with open(path, "r", encoding="utf-8") as source:
        for line in source:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            operations.append(
                Operation(
                    cid=CommandId(ClientId(record["client"]), record["seq"]),
                    op=record["op"],
                    args=tuple(record["args"]),
                    invoked_at=record["invoked_at"],
                    returned_at=record["returned_at"],
                    value=record["value"],
                )
            )
    return History(operations)
