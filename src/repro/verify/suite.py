"""One-call verification: run the full oracle stack over a finished run.

Downstream users should not need to know which five checks exist; after a
simulation they call :func:`verify_run` and get either a
:class:`VerificationReport` or a :class:`repro.errors.VerificationError`
explaining exactly what broke.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.client import Client
from repro.core.reconfig import ReconfigurableReplica
from repro.verify.histories import History
from repro.verify.invariants import run_all_invariants
from repro.verify.linearizability import check_kv_linearizable


@dataclass(frozen=True, slots=True)
class VerificationReport:
    """What was checked and how much of it there was."""

    operations: int
    pending_operations: int
    kv_keys_checked: int
    positions: int
    epochs: int
    replies: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"verified: {self.operations} ops ({self.pending_operations} pending), "
            f"{self.kv_keys_checked} keys linearizable, {self.positions} log "
            f"positions, {self.epochs} epochs, {self.replies} replies consistent"
        )


def verify_run(
    replicas: Iterable[ReconfigurableReplica],
    clients: Iterable[Client],
    check_linearizability: bool = True,
) -> VerificationReport:
    """Run every applicable oracle; raises VerificationError on failure.

    ``check_linearizability`` may be disabled for non-KV applications
    (the structural invariants still apply to every application).
    """
    replica_list = list(replicas)
    client_list = list(clients)
    history = History.from_clients(client_list)
    keys_checked = 0
    if check_linearizability:
        result = check_kv_linearizable(history, raise_on_failure=True)
        keys_checked = result.checked_keys
    coverage = run_all_invariants(replica_list)
    return VerificationReport(
        operations=len(history),
        pending_operations=len(history.pending),
        kv_keys_checked=keys_checked,
        positions=coverage["positions"],
        epochs=coverage["epochs"],
        replies=coverage["replies"],
    )
