"""Application-level oracles over client histories.

The linearizability checker covers the KV store; these oracles give the
other applications whole-history correctness checks that are cheap enough
to run after every failure-injection test:

* **bank conservation** — transfers never create or destroy money, so the
  final total is fully determined by acknowledged opens/deposits/
  withdrawals, up to the uncertainty contributed by *pending* operations
  (which may or may not have executed).
* **lock mutual exclusion** — two successful acquires by different owners
  that are provably sequential must have a possible release between them.

Both checks are *sound*: they only report violations that no legal
execution could explain (pending operations are given the benefit of the
doubt).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VerificationError
from repro.verify.histories import History, Operation


@dataclass(frozen=True, slots=True)
class ConservationBounds:
    """Money totals a correct bank could end with."""

    minimum: int
    maximum: int

    def contains(self, total: int) -> bool:
        return self.minimum <= total <= self.maximum


def bank_conservation_bounds(history: History, initial_total: int = 0) -> ConservationBounds:
    """Bounds on the final total implied by the history.

    Acknowledged ops contribute exactly; pending opens/deposits/withdrawals
    contribute an uncertainty interval (they may or may not have applied).
    Transfers never change the total, pending or not.
    """
    low = high = initial_total
    for op in history.operations:
        if op.op == "open":
            amount = int(op.args[1])
            if op.pending:
                high += amount
            elif op.value == "ok":
                low += amount
                high += amount
        elif op.op == "deposit":
            amount = int(op.args[1])
            if op.pending:
                high += amount
            elif op.value is not None:
                low += amount
                high += amount
        elif op.op == "withdraw":
            amount = int(op.args[1])
            if op.pending:
                low -= amount
            elif op.value is not None:
                low -= amount
                high -= amount
    return ConservationBounds(low, high)


def check_bank_conservation(
    history: History, final_total: int, initial_total: int = 0
) -> ConservationBounds:
    """Raise unless ``final_total`` is reachable by a correct bank."""
    bounds = bank_conservation_bounds(history, initial_total)
    if not bounds.contains(final_total):
        raise VerificationError(
            f"bank conservation violated: final total {final_total} outside "
            f"[{bounds.minimum}, {bounds.maximum}]"
        )
    return bounds


def _successful(op: Operation) -> bool:
    return not op.pending and op.value is True


def check_lock_mutual_exclusion(history: History) -> int:
    """Raise on a provable mutual-exclusion violation; returns pairs checked.

    A violation is claimed only when acquire A (owner X) *completed before*
    acquire B (owner Y != X) was invoked, both succeeded, and no release by
    X on that lock — successful or pending — could possibly have been
    linearized between them.
    """
    by_lock: dict[str, list[Operation]] = {}
    for op in history.operations:
        if op.op in ("acquire", "release"):
            by_lock.setdefault(str(op.args[0]), []).append(op)

    checked = 0
    for lock, ops in by_lock.items():
        acquires = [op for op in ops if op.op == "acquire" and _successful(op)]
        releases = [
            op
            for op in ops
            if op.op == "release" and (op.pending or op.value is True)
        ]
        for first in acquires:
            for second in acquires:
                if first is second or first.args[1] == second.args[1]:
                    continue
                if first.returned_at is None or first.returned_at > second.invoked_at:
                    continue  # concurrent: either order is legal
                checked += 1
                owner = first.args[1]
                # Some release by `owner` must fit between the two.
                explains = False
                for release in releases:
                    if release.args[1] != owner:
                        continue
                    starts_after_first = release.invoked_at >= first.invoked_at
                    ends_before_second = (
                        release.returned_at is None
                        or second.returned_at is None
                        or release.invoked_at <= second.returned_at
                    )
                    if starts_after_first and ends_before_second:
                        explains = True
                        break
                if not explains:
                    raise VerificationError(
                        f"mutual exclusion violated on lock {lock!r}: "
                        f"{owner} held it when {second.args[1]}'s acquire at "
                        f"t={second.invoked_at} succeeded"
                    )
    return checked
