"""Reconfiguration commands.

A reconfiguration is an *ordinary command* proposed to the current static
instance — that is the heart of the composition: no special wedge/stop API
is demanded of the building block. The first ``ReconfigCommand`` decided in
an epoch's log deterministically terminates that epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import CommandId, Membership, NodeId


@dataclass(frozen=True, slots=True)
class ReconfigCommand:
    """Request to switch the service to ``new_members``.

    Carries a :class:`CommandId` like any client command so that engine- and
    application-level deduplication apply to it uniformly (admin retries and
    orphan re-proposal must not fork the configuration chain — the chain
    cannot fork anyway, since each epoch seals at the *first* reconfig in
    its log, but dedup avoids wasted epochs).
    """

    cid: CommandId
    new_members: Membership
    size: int = 128

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Reconfig({self.cid}, ->{self.new_members})"


@dataclass(frozen=True, slots=True)
class ReconfigRequest:
    """Admin client -> replica: propose this reconfiguration, then reply.

    In simulation the admin plane calls
    :meth:`repro.core.reconfig.ReconfigurableReplica.request_reconfiguration`
    directly; over the live TCP transport the admin is a remote process, so
    the same request travels as an ordinary message. The contacted replica
    registers ``reply_to`` as the waiting client and answers with a
    :class:`repro.core.client.ClientReply` once the reconfiguration commits
    (the reply value names the new epoch), or with a ``Redirect`` if it has
    already retired from the cluster.
    """

    command: ReconfigCommand
    reply_to: NodeId
