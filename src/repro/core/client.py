"""Client library: request routing, retries, redirection.

A :class:`Client` is a closed-loop process: it issues one command at a
time, waits for the reply, then issues the next (after an optional think
time). Retries reuse the same :class:`repro.types.CommandId`, so the
service's dedup layers guarantee exactly-once execution no matter how many
replicas end up proposing the command.

Routing: the client keeps a *view* of the membership (possibly stale). It
sends to one replica, rotates on timeout, and adopts fresher membership
from ``Redirect`` responses — the standard way clients chase a
reconfiguring service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.runtime import Runtime
from repro.sim.events import Timer
from repro.sim.node import Process
from repro.types import ClientId, Command, CommandId, Membership, NodeId, Time


@dataclass(frozen=True, slots=True)
class ClientRequest:
    """Client -> replica: please execute this command."""

    command: Command
    reply_to: NodeId


@dataclass(frozen=True, slots=True)
class ClientReply:
    """Replica -> client: command executed with this result."""

    cid: CommandId
    value: Any
    epoch: int
    virtual_index: int


@dataclass(frozen=True, slots=True)
class RequestBatch:
    """Client -> replica: execute these commands (one wire frame).

    Wire-level coalescing for pipelined clients: many commands share one
    frame's encode/decode/dispatch overhead. The replica unpacks and
    handles each exactly as an individual :class:`ClientRequest` —
    ordering, dedup, redirects, and replies stay per-command.
    """

    commands: tuple[Command, ...]
    reply_to: NodeId


@dataclass(frozen=True, slots=True)
class ReplyBatch:
    """Replica -> client: replies for commands that executed together.

    Emitted when one decided consensus batch completes several commands
    for the same client; the client demultiplexes it back into individual
    :class:`ClientReply` handling.
    """

    replies: tuple[ClientReply, ...]


@dataclass(frozen=True, slots=True)
class Redirect:
    """Replica -> client: I am retired; talk to these members."""

    cid: CommandId
    members: Membership
    epoch: int


@dataclass(slots=True)
class ClientParams:
    """Client behaviour knobs (simulated seconds)."""

    request_timeout: float = 0.5
    think_time: float = 0.0
    start_delay: float = 0.0


# An operation generator yields (op, args, size) tuples, or None to stop.
OperationSource = Callable[[], "tuple[str, tuple, int] | None"]


@dataclass(slots=True)
class OpRecord:
    """Client-side record of one completed operation (for metrics/verify)."""

    cid: CommandId
    op: str
    args: tuple
    invoked_at: Time
    returned_at: Time
    value: Any
    retries: int


class Client(Process):
    """Closed-loop client issuing commands against the replicated service."""

    def __init__(
        self,
        sim: Runtime,
        client: ClientId,
        view: Membership,
        operations: OperationSource,
        params: ClientParams | None = None,
        on_complete: Callable[[OpRecord], None] | None = None,
    ):
        super().__init__(sim, NodeId(str(client)))
        self.client = client
        self.view = view
        self.operations = operations
        self.params = params if params is not None else ClientParams()
        self.on_complete = on_complete
        self.seq = 0
        self.records: list[OpRecord] = []
        self.finished = False
        self._current: Command | None = None
        self._invoked_at: Time = 0.0
        self._retries = 0
        self._target_index = 0
        self._timeout: Timer | None = None
        self._rng = sim.rng.fork(f"client/{client}")
        self._known_nodes: set[NodeId] = set(view.nodes)
        self._redirect_streak = 0

    # -- lifecycle --------------------------------------------------------------

    def on_start(self) -> None:
        self.set_timer(self.params.start_delay, self._issue_next, label="client-start")

    def _issue_next(self) -> None:
        if self.finished or self.crashed:
            return
        operation = self.operations()
        if operation is None:
            self.finished = True
            self.trace("client-done", ops=len(self.records))
            return
        op, args, size = operation
        self.seq += 1
        self._current = Command(CommandId(self.client, self.seq), op, args, size=size)
        self._invoked_at = self.now
        self._retries = 0
        self._send_current()

    # -- sending & retries ----------------------------------------------------------

    def _send_current(self) -> None:
        assert self._current is not None
        targets = self.view.sorted_nodes()
        target = targets[self._target_index % len(targets)]
        self.send(
            target,
            ClientRequest(self._current, self.node),
            size=64 + self._current.size,
        )
        if self._timeout is not None:
            self._timeout.cancel()
        self._timeout = self.set_timer(
            self.params.request_timeout, self._on_timeout, label="client-timeout"
        )

    def _on_timeout(self) -> None:
        if self._current is None or self.finished:
            return
        self._retries += 1
        self._target_index += 1
        self.trace("client-retry", cid=str(self._current.cid), retry=self._retries)
        self._send_current()

    # -- replies -----------------------------------------------------------------------

    def on_message(self, payload: Any, sender: NodeId) -> None:
        if isinstance(payload, ClientReply):
            self._handle_reply(payload)
        elif isinstance(payload, ReplyBatch):
            for reply in payload.replies:
                self._handle_reply(reply)
        elif isinstance(payload, Redirect):
            self._handle_redirect(payload)

    def _handle_reply(self, reply: ClientReply) -> None:
        if self._current is None or reply.cid != self._current.cid:
            return  # duplicate or stale reply
        self._redirect_streak = 0
        if self._timeout is not None:
            self._timeout.cancel()
        record = OpRecord(
            cid=reply.cid,
            op=self._current.op,
            args=self._current.args,
            invoked_at=self._invoked_at,
            returned_at=self.now,
            value=reply.value,
            retries=self._retries,
        )
        self._current = None
        self.records.append(record)
        if self.on_complete is not None:
            self.on_complete(record)
        if self.params.think_time > 0.0:
            self.set_timer(self.params.think_time, self._issue_next, label="think")
        else:
            # Go through the event queue (zero delay) to avoid unbounded
            # synchronous recursion on fast paths.
            self.set_timer(0.0, self._issue_next, label="next-op")

    def _handle_redirect(self, redirect: Redirect) -> None:
        if self._current is None or redirect.cid != self._current.cid:
            return
        self._redirect_streak += 1
        self._known_nodes.update(redirect.members.nodes)
        if self._redirect_streak > 8:
            # Redirect chains can loop through stale hints; fall back to
            # every node we have ever heard of and rotate through them.
            self.view = Membership(frozenset(self._known_nodes))
            self._target_index += 1
        elif len(redirect.members) > 0:
            self.view = redirect.members
            self._target_index = self._rng.randint(0, len(redirect.members) - 1)
        # A short pause stops tight redirect ping-pong from flooding the
        # network between two confused nodes.
        self.set_timer(0.01, self._resend_if_current, label="redirect-resend")

    def _resend_if_current(self) -> None:
        if self._current is not None and not self.finished:
            self._send_current()
