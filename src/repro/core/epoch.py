"""Per-epoch runtime state held by a reconfigurable replica.

An :class:`EpochRuntime` tracks everything one replica knows about one
epoch: its configuration, its (possibly absent) engine, the decided
effective log, the cut position, and the boundary snapshot needed to start
executing it. The replica in :mod:`repro.core.reconfig` owns a chain of
these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.consensus.interface import SmrEngine
from repro.types import Configuration, Slot


@dataclass(slots=True)
class EpochRuntime:
    """One replica's view of one epoch."""

    config: Configuration
    #: engine instance if this replica is a member of the epoch, else None.
    engine: SmrEngine | None = None
    #: whether engine.start() has been called (speculation gate).
    engine_started: bool = False
    #: effective-log entries delivered in order so far (payloads).
    effective: list[Any] = field(default_factory=list)
    #: local time each effective entry was decided at (parallel to
    #: ``effective``); execution lag = execute time - decided time, the
    #: window speculative pipelining holds a command un-executable.
    decided_at: list[float] = field(default_factory=list)
    #: slot of the first ReconfigCommand decided, once known.
    cut_slot: Slot | None = None
    #: next configuration (set when sealed).
    next_config: Configuration | None = None
    #: boundary snapshot (application state at the start of this epoch).
    start_state: Any = None
    start_state_ready: bool = False
    #: False when ``start_state`` is a mid-epoch recovery checkpoint
    #: rather than the true epoch boundary — such a state must never be
    #: served to joiners or observers as if it were the boundary.
    start_state_is_boundary: bool = True
    #: how many effective entries have been executed locally.
    executed: int = 0
    #: count of decisions orphaned past the cut (diagnostics).
    orphaned: int = 0

    @property
    def sealed(self) -> bool:
        """True once the cut position is known at this replica."""
        return self.cut_slot is not None

    @property
    def effective_complete(self) -> bool:
        """True when every effective entry (up to the cut) is present."""
        return self.sealed and len(self.effective) == self.cut_slot + 1

    @property
    def fully_executed(self) -> bool:
        """True when the whole effective log has been executed locally."""
        return self.effective_complete and self.executed == len(self.effective)

    def describe(self) -> str:  # pragma: no cover - cosmetic
        state = "sealed" if self.sealed else "open"
        return (
            f"epoch {self.config.epoch} {self.config.members} {state} "
            f"decided={len(self.effective)} executed={self.executed}"
        )
