"""Reconfigurable SMR composed from non-reconfigurable building blocks.

This package is the paper's contribution. The composition:

* runs one static SMR instance per configuration *epoch* (any engine
  implementing :class:`repro.consensus.interface.SmrEngine`),
* orders ``ReconfigCommand``s inside the current instance and cuts the
  epoch's *effective log* at the first one decided,
* re-proposes orphaned decisions (those ordered after the cut) into the
  next instance,
* transfers boundary snapshots to joining members, and
* **speculatively pipelines** epochs: a new instance orders commands before
  the previous epoch's state has been transferred/executed, so the service
  never stops ordering during reconfiguration — the paper's liveness claim.

See :mod:`repro.core.reconfig` for the replica, :mod:`repro.core.client`
for the client library and :mod:`repro.core.service` for cluster builders.
"""

from repro.core.command import ReconfigCommand
from repro.core.client import Client, ClientParams
from repro.core.epoch import EpochRuntime
from repro.core.reconfig import ReconfigParams, ReconfigurableReplica
from repro.core.service import ReplicatedService, spawn_replica
from repro.core.statemachine import DedupStateMachine, StateMachine

__all__ = [
    "Client",
    "ClientParams",
    "DedupStateMachine",
    "EpochRuntime",
    "ReconfigCommand",
    "ReconfigParams",
    "ReconfigurableReplica",
    "ReplicatedService",
    "StateMachine",
    "spawn_replica",
]
