"""The reconfigurable replica: composing static SMR instances.

This module implements the paper's protocol. Each replica hosts a *chain*
of epochs; epoch ``e`` wraps one static SMR engine over the fixed member
set ``C_e``. The moving parts:

Effective-log cut
    Reconfiguration requests are ordinary payloads ordered by the current
    engine. The **first** ``ReconfigCommand`` delivered in an epoch's log
    seals the epoch at that slot: the epoch's effective log is exactly the
    prefix up to and including the cut. Because the cut is a pure function
    of the (agreed) decided log, every member computes the same cut with
    no extra coordination and no "stop" API on the black box.

Orphan re-proposal
    The black box keeps deciding slots past the cut (it cannot be told to
    stop). Those decisions are *orphans*: their payloads are re-proposed
    into the newest epoch. Engine-level key dedup plus the exactly-once
    apply layer make this safe; nothing acknowledged is ever lost and
    nothing executes twice.

Chain construction
    Sealing epoch ``e`` opens epoch ``e+1`` over the membership named by
    the cut command. New members (in ``C_{e+1}`` but not ``C_e``) learn of
    the epoch via ``EpochAnnounce`` and fetch the boundary snapshot from
    old members.

Speculative pipelining (the paper's liveness point)
    Ordering in epoch ``e+1`` starts as soon as the epoch is known —
    *before* the boundary state is available. Decided-but-not-yet-
    executable commands accumulate; execution (and client replies) catch
    up the moment the boundary state lands. ``ReconfigParams.pipeline_depth``
    gates this: ``None`` is the paper's unbounded pipeline, ``1`` disables
    speculation entirely (the stop-the-world baseline), and intermediate
    depths support the ablation experiment F4.
"""

from __future__ import annotations

from copy import deepcopy
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.consensus.interface import (
    Batch,
    EngineFactory,
    InstanceMessage,
    Transport,
)
from repro.core.client import (
    ClientReply,
    ClientRequest,
    Redirect,
    ReplyBatch,
    RequestBatch,
)
from repro.core.command import ReconfigCommand, ReconfigRequest
from repro.core.epoch import EpochRuntime
from repro.core.runtime import Runtime
from repro.core.state_transfer import (
    DirtySnapshotReply,
    SnapshotChunkReply,
    SnapshotChunkRequest,
    SnapshotReply,
    SnapshotRequest,
    SnapshotUnavailable,
    TransferTask,
)
from repro.core.statemachine import DedupStateMachine, StateMachine
from repro.errors import ProtocolError
from repro.metrics.registry import SPAN_RECONFIG, SPAN_RECOVERY, metrics_of
from repro.sim.node import Process
from repro.types import (
    Command,
    CommandId,
    Configuration,
    Decision,
    EpochId,
    Membership,
    NodeId,
    Time,
)


@dataclass(frozen=True, slots=True)
class EpochAnnounce:
    """Tell members of a new configuration that their epoch exists.

    Sent by every sealing member of the previous epoch to every member of
    the new one; idempotent on receipt. ``prev_members`` tells joiners whom
    to ask for the boundary snapshot.
    """

    config: Configuration
    prev_members: Membership


@dataclass(frozen=True, slots=True)
class ObserverSubscribe:
    """A non-voting standby asks a member to stream the virtual log to it.

    Observers (learners) warm up *before* being added to the membership:
    they receive a bootstrap (boundary snapshot + effective entries so far)
    and then every subsequent effective entry. A later reconfiguration that
    promotes the observer finds its state already local, so the hand-off
    costs no bulk transfer — the warm-join ablation (experiment F5).
    """


@dataclass(frozen=True, slots=True)
class ObserverBootstrap:
    """Sponsor -> observer: everything needed to start tracking.

    ``epochs`` lists ``(config, effective_entries, cut_slot)`` for every
    epoch from ``start_epoch`` on, in order; ``boundary`` is the
    application state at the start of ``start_epoch`` (None = fresh).
    """

    start_epoch: EpochId
    boundary: Any
    boundary_bytes: int
    epochs: tuple[tuple[Configuration, tuple, Any], ...]


@dataclass(frozen=True, slots=True)
class ObserverUpdate:
    """Sponsor -> observer: one new effective entry."""

    config: Configuration
    slot: int
    payload: Any


@dataclass(slots=True)
class ReconfigParams:
    """Composition-layer parameters."""

    engine_factory: EngineFactory
    #: None = unbounded speculation (the paper); 1 = stop-the-world.
    pipeline_depth: int | None = None
    transfer_retry_interval: float = 0.05
    #: None = ship the snapshot in one message; otherwise stream it as a
    #: train of chunks of this many bytes (resumable across source crashes).
    transfer_chunk_bytes: int | None = None
    #: grace before a sealed, fully-executed epoch's engine is stopped.
    engine_gc_grace: float = 1.0
    #: boundary snapshots cached for serving joiners.
    snapshot_cache_limit: int = 8
    #: how often a silent observer re-subscribes (sponsor failover).
    observer_resubscribe_interval: float = 0.5
    #: members re-announce the newest epoch at this period until it seals,
    #: so a joiner that missed the (unacknowledged) announce still joins.
    announce_interval: float = 0.5
    #: period of durable state-machine checkpoints (0 = boundary-only).
    #: Only meaningful on replicas constructed with a ``storage`` store.
    checkpoint_interval: float = 0.0
    #: "log" orders every operation; "lease" serves read-only operations
    #: locally at the current epoch's leaseholding leader (linearizable,
    #: no log round); "follower" serves read-only operations locally at
    #: ANY caught-up member within ``staleness_bound`` of leader contact
    #: (bounded staleness, NOT linearizable — reads scale across members).
    read_mode: str = "log"
    #: operations eligible for the lease fast path (pure reads only).
    read_only_ops: frozenset = frozenset(
        {"get", "scan", "read", "balance", "holder", "total"}
    )
    #: follower mode only: max seconds of leader silence before a member
    #: refuses local reads and falls back to the ordered path. A served
    #: read reflects every write the member had learned of when it last
    #: heard from the leader, so the observable staleness is bounded by
    #: roughly this plus one heartbeat interval.
    staleness_bound: float = 0.5
    #: "clean" waits for the exact epoch cut: commands caught in the
    #: sealed engine ride out their orphan decide (or the GC-time
    #: rescue), and joiners retry until a source finished the outgoing
    #: epoch and can serve the true boundary snapshot. "dirty" overlaps
    #: the outgoing epoch's tail with the incoming one instead: at the
    #: seal every payload still waiting in the outgoing engine is
    #: immediately re-proposed into the new epoch, and a snapshot source
    #: that has not finished the outgoing epoch answers joiners with its
    #: newest finished boundary plus the effective-log tail so far
    #: (:class:`~repro.core.state_transfer.DirtySnapshotReply`), which
    #: the joiner replays. Both halves re-order only *agreed* payloads
    #: and the exactly-once apply layer deduplicates, so safety is
    #: unchanged — the mode trades extra proposals for a shorter
    #: unavailability window around the cut.
    handoff: str = "clean"


# Commit listener: (time, payload, epoch, virtual_index, reply_value).
CommitListener = Callable[[Time, Any, EpochId, int, Any], None]

# Order listener: (time, payload, epoch, slot) — fires when a decision
# enters an epoch's effective log, i.e. when its position becomes final.
# This is the signal that keeps flowing during speculative hand-off even
# though execution (and client replies) wait for the boundary state.
OrderListener = Callable[[Time, Any, EpochId, int], None]


@dataclass(slots=True)
class _PendingReply:
    client: NodeId
    received_at: Time


class ReconfigurableReplica(Process):
    """One server of the reconfigurable replicated service."""

    def __init__(
        self,
        sim: Runtime,
        node: NodeId,
        app_factory: Callable[[], StateMachine],
        params: ReconfigParams,
        initial_config: Configuration | None = None,
        commit_listener: CommitListener | None = None,
        order_listener: OrderListener | None = None,
        observe_from: list[NodeId] | None = None,
        storage: Any = None,
    ):
        super().__init__(sim, node)
        # Set before any engine exists: engines discover durability by
        # reading ``host.storage`` through their transport at construction.
        self.storage = storage
        self._last_checkpoint_marker: tuple[EpochId, int] = (-1, -1)
        self.params = params
        self.app_factory = app_factory
        self.commit_listener = commit_listener
        self.order_listener = order_listener
        #: nodes this replica streams the virtual log to (we are a sponsor).
        self._observers: set[NodeId] = set()
        #: sponsors to subscribe to when running as a warm standby.
        self._observe_targets: list[NodeId] = list(observe_from or [])
        self._observe_index = 0
        self._observer_bootstrapped = False
        self._last_observed_at = -1.0
        #: out-of-order observed entries: epoch -> slot -> (config, payload)
        self._observed_stash: dict[EpochId, dict[int, tuple[Configuration, Any]]] = {}

        self.chain: dict[EpochId, EpochRuntime] = {}
        self.newest_epoch: EpochId = -1
        #: first epoch not fully executed locally.
        self.exec_epoch: EpochId = 0
        self.virtual_index = 0
        self.state: DedupStateMachine | None = None

        #: boundary snapshots: epoch -> (snapshot, size); serves joiners.
        self.boundary_snapshots: dict[EpochId, tuple[Any, int]] = {}
        self._transfer: TransferTask | None = None
        self._transfer_timer_armed = False

        self._pending: dict[CommandId, _PendingReply] = {}
        self._replies: dict[CommandId, tuple[Any, EpochId, int]] = {}
        #: while a decided Batch executes, replies coalesce here (keyed by
        #: destination) and leave as one ReplyBatch frame per client.
        self._reply_buffer: dict[NodeId, list[ClientReply]] | None = None
        self._sealed_cids: set[CommandId] = set()
        self.committed: list[tuple[Any, EpochId, int]] = []
        self.lease_reads = 0
        self.follower_reads = 0
        #: dirty hand-off diagnostics: payloads overlapped into the new
        #: epoch at seal time, and dirty snapshot replies served/applied.
        self.dirty_overlaps = 0
        self.dirty_served = 0
        self.dirty_applied = 0

        self.metrics = metrics_of(sim)
        self._commits_total = self.metrics.counter("smr.commits")
        self._m_lease_reads = self.metrics.counter("smr.lease_reads")
        self._m_follower_reads = self.metrics.counter("smr.follower_reads")
        self._orphans = self.metrics.counter("smr.orphans")
        self._m_dirty_overlaps = self.metrics.counter("smr.dirty_overlaps")
        self._m_dirty_served = self.metrics.counter("smr.dirty_snapshots_served")
        self._m_dirty_applied = self.metrics.counter("smr.dirty_snapshots_applied")
        self._exec_lag = self.metrics.histogram("smr.exec_lag")
        self._epoch_commits: dict[EpochId, Any] = {}
        #: the epoch this replica was bootstrapped into (no reconfiguration
        #: created it, so it gets no reconfiguration span).
        self._genesis_epoch: EpochId | None = (
            initial_config.epoch if initial_config is not None else None
        )

        recovered = False
        if storage is not None and storage.recovered.has_state:
            recovered = self._recover_from_storage()
        if not recovered and initial_config is not None:
            if node not in initial_config.members:
                raise ProtocolError(
                    f"{node} bootstrapped with a configuration it is not in"
                )
            self.exec_epoch = initial_config.epoch
            self._open_epoch(initial_config, prev_members=None)
            runtime = self.chain[initial_config.epoch]
            runtime.start_state = None  # fresh application state
            runtime.start_state_ready = True
            self._maybe_start_engines()

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests, examples, the harness)
    # ------------------------------------------------------------------

    @property
    def newest_config(self) -> Configuration | None:
        runtime = self.chain.get(self.newest_epoch)
        return runtime.config if runtime is not None else None

    @property
    def is_retired(self) -> bool:
        config = self.newest_config
        return config is None or self.node not in config.members

    def epoch_runtime(self, epoch: EpochId) -> EpochRuntime | None:
        return self.chain.get(epoch)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _span(self, epoch: EpochId, phase: str) -> None:
        """Mark one phase of the reconfiguration span producing ``epoch``.

        The span id is the *new* epoch: decided/cut fire while sealing
        ``epoch - 1``, transfer when ``epoch``'s boundary state becomes
        available, first-commit when ``epoch`` executes its first entry.
        The genesis epoch was not produced by a reconfiguration, so it
        gets no span.
        """
        if epoch == self._genesis_epoch:
            return
        self.metrics.span_event(SPAN_RECONFIG, epoch, phase, self.now)

    def _count_commit(self, epoch: EpochId) -> None:
        self._commits_total.inc()
        counter = self._epoch_commits.get(epoch)
        if counter is None:
            counter = self._epoch_commits[epoch] = self.metrics.counter(
                f"smr.commits.epoch.{epoch}"
            )
        counter.inc()

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def _recover_from_storage(self) -> bool:
        """Rebuild the epoch chain from the durable store at boot.

        The checkpoint pins the execution frontier (state machine, virtual
        index, entries of the frontier epoch already applied); the WAL's
        epoch-open records say which engines to rebuild, and each engine
        restores its own acceptor/learner state through its durability
        handle as it is constructed — replayed decisions flow through the
        ordinary ``on_decide`` path, so seals, chain growth and execution
        all happen exactly as they did the first time. Anything the WAL
        does not know (entries decided elsewhere while we were down) is
        healed afterwards by the normal catch-up and announce protocols:
        we *rejoin* the cluster, we do not cold-join it.

        Returns False (cold boot proceeds) when the store holds nothing a
        chain can be built from.
        """
        rec = self.storage.recovered
        ckpt = rec.checkpoint
        epoch_opens = {eo.config.epoch: eo for eo in rec.epochs}
        if not epoch_opens:
            return False
        base = ckpt.exec_epoch if ckpt is not None else min(epoch_opens)
        base_open = epoch_opens.get(base)
        if base_open is None:
            return False
        self.metrics.span_event(SPAN_RECOVERY, self.node, "begin", self.now)

        self.exec_epoch = base
        runtime = EpochRuntime(config=base_open.config)
        self.chain[base] = runtime
        self.newest_epoch = base
        if ckpt is not None:
            runtime.executed = ckpt.executed
            runtime.start_state = {
                "state": ckpt.app_state,
                "vindex": ckpt.virtual_index,
            }
            runtime.start_state_ready = True
            # A mid-epoch checkpoint is not the epoch boundary: replay
            # resumes from it, but joiners must fetch the true boundary
            # from someone else.
            runtime.start_state_is_boundary = ckpt.executed == 0
            self._last_checkpoint_marker = (ckpt.exec_epoch, ckpt.virtual_index)
        elif base_open.prev_members is None:
            # Genesis epoch, never checkpointed: replay from scratch.
            runtime.start_state = None
            runtime.start_state_ready = True
        # else: we joined ``base`` and crashed before its boundary landed —
        # leave start_state_ready False and _open_epoch below re-fetches
        # the boundary from base_open.prev_members, like a cold joiner.

        # The recovered base was not (re)produced by a reconfiguration we
        # will observe this lifetime; suppress its reconfig span.
        self._genesis_epoch = base
        for epoch in sorted(epoch_opens):
            if epoch < base:
                continue
            eo = epoch_opens[epoch]
            self._open_epoch(eo.config, prev_members=eo.prev_members)
        self.metrics.span_event(SPAN_RECOVERY, self.node, "replayed", self.now)
        self._advance_execution()
        self._replay_dirty_overlaps(rec.dirty_overlaps)
        self.metrics.span_event(SPAN_RECOVERY, self.node, "rejoined", self.now)
        self.trace(
            "recovered",
            base=base,
            newest=self.newest_epoch,
            executed=self.virtual_index,
            wal_records=rec.records,
            torn_bytes=rec.torn_bytes,
        )
        return True

    def _replay_dirty_overlaps(self, records: list[Any]) -> None:
        """Re-propose recovered dirty hand-off tails (satellite of the
        dirty cut): a tail whose re-proposals never reached an acceptor
        before the crash exists nowhere but its WAL record, so it rides
        the ordinary orphan path again. Tails that *did* decide are
        screened out by the reply cache / apply-time dedup — a replay is
        at worst a no-op proposal.
        """
        for record in records:
            for payload in record.payloads:
                self.dirty_overlaps += 1
                self._m_dirty_overlaps.inc()
                self._repropose_orphan(payload)
            self.trace(
                "dirty-overlap-replay",
                epoch=record.epoch,
                payloads=len(record.payloads),
            )

    # ------------------------------------------------------------------
    # Epoch chain management
    # ------------------------------------------------------------------

    def _open_epoch(
        self, config: Configuration, prev_members: Membership | None
    ) -> None:
        """Create (or complete) the runtime for ``config``.

        Idempotent; also handles the warm-standby promotion case where the
        runtime already exists (built from observed entries) but the engine
        does not (we were not a member when it was created).
        """
        runtime = self.chain.get(config.epoch)
        if runtime is None:
            runtime = EpochRuntime(config=config)
            self.chain[config.epoch] = runtime
            if config.epoch > self.newest_epoch:
                self.newest_epoch = config.epoch
            if len(self.chain) == 1:
                self.exec_epoch = config.epoch
        if self.node in config.members and runtime.engine is None:
            if self.storage is not None:
                # Durable before the engine exists (let alone speaks): a
                # recovered replica must know which epochs it was in.
                self.storage.log_epoch_open(config, prev_members)
            transport = Transport(self, f"e{config.epoch}")
            runtime.engine = self.params.engine_factory(
                transport,
                config.members,
                lambda decision, e=config.epoch: self._on_engine_decide(e, decision),
            )
            # A member that cannot compute the boundary locally must fetch
            # it. "Locally" requires a way to obtain the previous epoch's
            # effective entries: hosting its engine (we were a member) or
            # an active observer stream. Merely *knowing about* the
            # previous epoch (a chain entry with no entry source — the
            # in/out/in "skipped epoch" case) does not qualify.
            was_in_prev = prev_members is not None and self.node in prev_members
            prev_runtime = self.chain.get(config.epoch - 1)
            warm = (
                not was_in_prev
                and prev_runtime is not None
                and (prev_runtime.engine is not None or bool(self._observe_targets))
            )
            if prev_members is not None and not was_in_prev and not warm:
                if not runtime.start_state_ready:
                    self._begin_transfer(config.epoch, prev_members)
            self.trace(
                "epoch-open",
                epoch=config.epoch,
                members=str(config.members),
                member=True,
                warm=warm,
            )
        self._maybe_start_engines()

    def _maybe_start_engines(self) -> None:
        """Start created engines allowed by the speculation gate."""
        depth = self.params.pipeline_depth
        exec_runtime = self.chain.get(self.exec_epoch)
        if exec_runtime is not None and exec_runtime.start_state_ready:
            frontier = self.exec_epoch
        else:
            frontier = self.exec_epoch - 1
        for epoch in sorted(self.chain):
            runtime = self.chain[epoch]
            if runtime.engine is None or runtime.engine_started:
                continue
            if depth is not None and epoch - frontier > depth - 1:
                continue
            runtime.engine_started = True
            runtime.engine.start()
            self.trace("engine-start", epoch=epoch, speculative=not runtime.start_state_ready)

    # ------------------------------------------------------------------
    # Decisions from engines
    # ------------------------------------------------------------------

    def _on_engine_decide(self, epoch: EpochId, decision: Decision) -> None:
        runtime = self.chain[epoch]
        if runtime.sealed and decision.slot > runtime.cut_slot:
            runtime.orphaned += 1
            self._orphans.inc()
            self._repropose_orphan(decision.payload)
            return
        if decision.slot < len(runtime.effective):
            # Already present: a promoted observer heard this entry from
            # its sponsor before its own engine delivered it. Agreement
            # guarantees the payloads match; check anyway.
            if runtime.effective[decision.slot] != decision.payload:
                raise ProtocolError(
                    f"epoch {epoch} slot {decision.slot}: engine decision "
                    f"contradicts observed entry"
                )
            return
        if decision.slot != len(runtime.effective):
            raise ProtocolError(
                f"epoch {epoch} delivered slot {decision.slot}, "
                f"expected {len(runtime.effective)}"
            )
        self._append_effective(runtime, decision.slot, decision.payload)
        self._advance_execution()

    def _append_effective(self, runtime: EpochRuntime, slot: int, payload: Any) -> None:
        """Append one entry to an epoch's effective log (engine or observed)."""
        epoch = runtime.config.epoch
        runtime.effective.append(payload)
        runtime.decided_at.append(self.now)
        if self.order_listener is not None:
            self.order_listener(self.now, payload, epoch, slot)
        if self._observers:
            update = ObserverUpdate(runtime.config, slot, payload)
            size = 64 + int(getattr(payload, "size", 32))
            for observer in self._observers:
                self.send(observer, update, size=size)
        if isinstance(payload, ReconfigCommand) and not runtime.sealed:
            self._span(epoch + 1, "decided")
            self._seal_epoch(runtime, slot, payload)

    def _seal_epoch(
        self, runtime: EpochRuntime, slot: int, command: ReconfigCommand
    ) -> None:
        runtime.cut_slot = slot
        next_config = Configuration(runtime.config.epoch + 1, command.new_members)
        runtime.next_config = next_config
        self._sealed_cids.add(command.cid)
        self._span(next_config.epoch, "cut")
        self.trace(
            "epoch-seal",
            epoch=runtime.config.epoch,
            cut=slot,
            next_members=str(command.new_members),
        )
        was_member = runtime.engine is not None
        self._open_epoch(next_config, prev_members=runtime.config.members)
        if was_member:
            # Only actual members of the sealed epoch announce; observers
            # learn seals second-hand and must not speak for the epoch.
            self._announce_epoch(next_config, runtime.config.members)
        if was_member and self.params.handoff == "dirty":
            self._overlap_sealed_tail(runtime)

    def _overlap_sealed_tail(self, runtime: EpochRuntime) -> None:
        """Dirty hand-off, ordering half: carry the tail over *now*.

        At the instant of the seal the outgoing engine may still hold
        payloads it has not managed to decide (``awaiting``). Under the
        clean cut those wait for an orphan decide round trip — or, if the
        outgoing leader just died, for the old epoch to re-elect or for
        the engine-GC rescue — before reaching the new epoch. Here they
        are re-proposed into the new epoch immediately. A payload that
        *also* decides at or before the cut in the old epoch executes
        there first and the new-epoch copy deduplicates at apply time; a
        payload that decides past the cut was an orphan anyway. Nothing
        is acknowledged twice and nothing is lost.
        """
        engine = runtime.engine
        if engine is None or engine.stopped:
            return
        tail = list(getattr(engine, "awaiting", {}).values())
        if not tail:
            return
        if self.storage is not None:
            # Durable before the re-proposals can reach a socket: the
            # record is the only trace of the tail until some engine
            # accepts it, and a SIGKILL in that gap must not lose it.
            # The sealing command itself is excluded: it already took
            # effect (that is what sealed us), and _sealed_cids — which
            # screens it out of the live re-propose below — is not
            # rebuilt by recovery, so replaying it would cut a redundant
            # extra epoch.
            durable_tail = [
                p
                for p in tail
                if not (
                    isinstance(p, ReconfigCommand)
                    and p.cid in self._sealed_cids
                )
            ]
            if durable_tail:
                self.storage.log_dirty_overlap(
                    runtime.config.epoch, durable_tail
                )
        for payload in tail:
            self.dirty_overlaps += 1
            self._m_dirty_overlaps.inc()
            self._repropose_orphan(payload)
        self.trace(
            "dirty-overlap", epoch=runtime.config.epoch, payloads=len(tail)
        )

    def _announce_epoch(self, config: Configuration, prev_members: Membership) -> None:
        """Announce ``config`` to its members, re-sending until it seals.

        Announces carry no ack, so a single send can vanish into a
        partition and strand a joiner forever; re-announcing while the
        epoch is still the newest unsealed one makes epoch discovery
        self-healing at a cost of a few small messages per interval.
        """
        if self.crashed:
            return
        runtime = self.chain.get(config.epoch)
        if runtime is None or runtime.sealed or config.epoch < self.newest_epoch:
            return
        announce = EpochAnnounce(config, prev_members)
        for member in config.members:
            if member != self.node:
                self.send(member, announce)
        self.set_timer(
            self.params.announce_interval,
            lambda: self._announce_epoch(config, prev_members),
            label="re-announce",
        )

    def _repropose_orphan(self, payload: Any) -> None:
        if isinstance(payload, Batch):
            for inner in payload.payloads:
                self._repropose_orphan(inner)
            return
        if isinstance(payload, ReconfigCommand):
            if payload.cid in self._sealed_cids:
                return  # already took effect in an earlier epoch
        elif not isinstance(payload, Command):
            return  # noops and other filler need no second life
        if isinstance(payload, Command) and payload.cid in self._replies:
            return  # already executed
        if self._propose_newest(payload):
            return
        # We host no engine in any live epoch — we are leaving the cluster
        # and cannot carry this command forward. Bounce the waiting client
        # to the new configuration *now*; otherwise it only finds out via
        # its request timeout, which turns every hand-off into a full
        # timeout-length outage for the clients caught mid-seal.
        pending = self._pending.pop(payload.cid, None)
        if pending is not None:
            config = self.newest_config
            if config is not None:
                self.send(
                    pending.client,
                    Redirect(payload.cid, config.members, config.epoch),
                )

    def _propose_newest(self, payload: Any) -> bool:
        """Propose into the newest *live* epoch we participate in.

        Returns False when every epoch we host an engine for is already
        sealed (we are leaving the cluster): proposing into a sealed
        instance only produces orphans that bounce straight back here —
        callers must instead redirect clients to the new configuration.
        """
        for epoch in sorted(self.chain, reverse=True):
            runtime = self.chain[epoch]
            engine = runtime.engine
            if engine is None or engine.stopped:
                continue
            if runtime.sealed:
                return False
            engine.propose(payload)
            return True
        return False

    # ------------------------------------------------------------------
    # Execution pipeline
    # ------------------------------------------------------------------

    def _advance_execution(self) -> None:
        while True:
            runtime = self.chain.get(self.exec_epoch)
            if runtime is None or not runtime.start_state_ready:
                break
            if self.state is None:
                self._initialise_state(runtime)
            while runtime.executed < len(runtime.effective):
                payload = runtime.effective[runtime.executed]
                self._exec_lag.record(
                    self.now - runtime.decided_at[runtime.executed]
                )
                runtime.executed += 1
                self._execute(payload, runtime.config.epoch)
                if runtime.executed == 1:
                    self._span(runtime.config.epoch, "first-commit")
            if runtime.fully_executed:
                self._finish_epoch(runtime)
                continue
            break
        self._maybe_start_engines()

    def _initialise_state(self, runtime: EpochRuntime) -> None:
        self.state = DedupStateMachine(self.app_factory())
        if runtime.start_state is not None:
            boundary = runtime.start_state
            self.state.restore(boundary["state"])
            self.virtual_index = boundary["vindex"]

    def _execute(self, payload: Any, epoch: EpochId) -> None:
        assert self.state is not None
        if isinstance(payload, Batch):
            # One slot, many commands: each gets its own virtual position.
            # Replies produced while the batch executes are coalesced per
            # destination and leave as one ReplyBatch frame per client —
            # the reply-path half of wire-level batching. Plain Commands
            # (the entire hot path) run in an inlined loop; anything else
            # in a mixed batch falls back to the general case.
            opened = self._reply_buffer is None
            if opened:
                self._reply_buffer = {}
            try:
                state_apply = self.state.apply
                commits = self.committed
                listener = self.commit_listener
                for inner in payload.payloads:
                    if type(inner) is not Command:
                        self._execute(inner, epoch)
                        continue
                    vindex = self.virtual_index
                    self.virtual_index = vindex + 1
                    value = state_apply(inner)
                    self._complete_command(inner.cid, value, epoch, vindex)
                    commits.append((inner, epoch, vindex))
                    self._count_commit(epoch)
                    if listener is not None:
                        listener(self.now, inner, epoch, vindex, value)
            finally:
                if opened:
                    buffered, self._reply_buffer = self._reply_buffer, None
                    for dest, replies in buffered.items():
                        if len(replies) == 1:
                            self.send(dest, replies[0])
                        else:
                            self.send(dest, ReplyBatch(tuple(replies)))
            return
        vindex = self.virtual_index
        self.virtual_index += 1
        if isinstance(payload, Command):
            value = self.state.apply(payload)
            self._complete_command(payload.cid, value, epoch, vindex)
        elif isinstance(payload, ReconfigCommand):
            value = f"epoch:{epoch + 1}"
            self._complete_command(payload.cid, value, epoch, vindex)
        else:
            value = None  # Noop filler
        self.committed.append((payload, epoch, vindex))
        self._count_commit(epoch)
        if self.commit_listener is not None:
            self.commit_listener(self.now, payload, epoch, vindex, value)

    def _complete_command(
        self, cid: CommandId, value: Any, epoch: EpochId, vindex: int
    ) -> None:
        self._replies[cid] = (value, epoch, vindex)
        pending = self._pending.pop(cid, None)
        if pending is not None:
            reply = ClientReply(cid, value, epoch, vindex)
            if self._reply_buffer is not None:
                self._reply_buffer.setdefault(pending.client, []).append(reply)
            else:
                self.send(pending.client, reply)

    def _finish_epoch(self, runtime: EpochRuntime) -> None:
        assert self.state is not None
        epoch = runtime.config.epoch
        boundary = {"state": self.state.snapshot(), "vindex": self.virtual_index}
        size = self.state.snapshot_bytes()
        self.boundary_snapshots[epoch + 1] = (boundary, size)
        self._trim_snapshot_cache()
        self.trace("epoch-executed", epoch=epoch, entries=runtime.executed)
        # Hand the boundary to the next epoch locally, if we host it.
        next_runtime = self.chain.get(epoch + 1)
        if next_runtime is not None and not next_runtime.start_state_ready:
            next_runtime.start_state = boundary
            next_runtime.start_state_ready = True
            self._span(epoch + 1, "transfer")
            if self._transfer is not None and self._transfer.epoch == epoch + 1:
                self._transfer.done = True
        self.exec_epoch = epoch + 1
        if self.storage is not None:
            # Boundary checkpoint: pins the new epoch's start state and
            # lets the WAL drop everything the finished epoch wrote.
            self._last_checkpoint_marker = (epoch + 1, self.virtual_index)
            self.storage.checkpoint(
                exec_epoch=epoch + 1,
                executed=0,
                virtual_index=self.virtual_index,
                app_state=boundary["state"],
                now=self.now,
            )
        if runtime.engine is not None:
            engine = runtime.engine
            self.set_timer(
                self.params.engine_gc_grace,
                lambda: self._gc_engine(epoch, engine),
                label="engine-gc",
            )

    def _gc_engine(self, epoch: EpochId, engine) -> None:
        if engine.stopped:
            return
        # Rescue anything still waiting in the dying engine's queue.
        leftovers = list(getattr(engine, "awaiting", {}).values())
        engine.stop()
        for payload in leftovers:
            self._repropose_orphan(payload)
        self.trace("engine-gc", epoch=epoch, rescued=len(leftovers))

    def _trim_snapshot_cache(self) -> None:
        limit = self.params.snapshot_cache_limit
        while len(self.boundary_snapshots) > limit:
            del self.boundary_snapshots[min(self.boundary_snapshots)]

    # ------------------------------------------------------------------
    # State transfer
    # ------------------------------------------------------------------

    def _begin_transfer(self, epoch: EpochId, sources: Membership) -> None:
        others = [n for n in sources.sorted_nodes() if n != self.node]
        if not others:
            raise ProtocolError(f"no snapshot sources for epoch {epoch}")
        self._transfer = TransferTask(epoch=epoch, sources=others)
        self.trace("transfer-begin", epoch=epoch, sources=len(others))
        self._transfer_tick()

    def _transfer_tick(self) -> None:
        task = self._transfer
        if task is None or task.done:
            self._transfer_timer_armed = False
            return
        runtime = self.chain.get(task.epoch)
        if runtime is not None and runtime.start_state_ready:
            task.done = True
            self._transfer_timer_armed = False
            return
        source = task.pick_source()
        if self.params.transfer_chunk_bytes is None:
            self.send(source, SnapshotRequest(task.epoch))
        else:
            self.send(
                source,
                SnapshotChunkRequest(
                    task.epoch, task.next_chunk, self.params.transfer_chunk_bytes
                ),
            )
        self._transfer_timer_armed = True
        self.set_timer(
            self.params.transfer_retry_interval, self._transfer_tick, label="transfer"
        )

    def _handle_snapshot_request(self, request: SnapshotRequest, sender: NodeId) -> None:
        cached = self.boundary_snapshots.get(request.epoch)
        if cached is None:
            if self.params.handoff == "dirty":
                dirty = self._build_dirty_snapshot(request.epoch)
                if dirty is not None:
                    self.dirty_served += 1
                    self._m_dirty_served.inc()
                    entry_bytes = sum(
                        int(getattr(payload, "size", 32))
                        for _, entries, _ in dirty.epochs
                        for payload in entries
                    )
                    self.send(
                        sender, dirty, size=dirty.boundary_bytes + entry_bytes + 128
                    )
                    self.trace(
                        "dirty-snapshot-served",
                        epoch=request.epoch,
                        base=dirty.base_epoch,
                        to=str(sender),
                    )
                    return
            self.send(sender, SnapshotUnavailable(request.epoch))
            return
        snapshot, size = cached
        # Deep copy models serialisation: the receiver must not alias our
        # live state.
        self.send(
            sender,
            SnapshotReply(request.epoch, deepcopy(snapshot), size),
            size=size + 128,
        )

    def _build_dirty_snapshot(self, epoch: EpochId) -> DirtySnapshotReply | None:
        """Dirty hand-off, transfer half: the best boundary we have *now*.

        Requires a true finished boundary at our execution frontier (a
        mid-epoch recovery checkpoint must never be served as one) and an
        entry source for every epoch between it and the requested one.
        The entries shipped are agreed decisions — possibly an incomplete
        prefix of each epoch's effective log, which is exactly the point:
        the joiner replays what exists and the transfer retry loop tops
        it up until some source can finish the job.
        """
        base = self.exec_epoch
        if base >= epoch:
            return None
        base_runtime = self.chain.get(base)
        if (
            base_runtime is None
            or not base_runtime.start_state_ready
            or not base_runtime.start_state_is_boundary
        ):
            return None
        epochs = []
        for e in range(base, epoch):
            runtime = self.chain.get(e)
            if runtime is None:
                return None
            epochs.append((runtime.config, tuple(runtime.effective), runtime.cut_slot))
        cached_base = self.boundary_snapshots.get(base)
        boundary_bytes = cached_base[1] if cached_base is not None else 64
        return DirtySnapshotReply(
            epoch=epoch,
            base_epoch=base,
            boundary=deepcopy(base_runtime.start_state),
            boundary_bytes=boundary_bytes,
            epochs=tuple(epochs),
        )

    def _handle_dirty_snapshot_reply(self, reply: DirtySnapshotReply) -> None:
        """Install a dirty boundary: base state now, tail by replay.

        The base boundary is only adopted by a genuinely cold replica
        (nothing executed, no state) — anyone else already has a state
        the base would clobber. The tail entries always flow through
        :meth:`_observe_entry`, which refuses epochs where our own engine
        is authoritative, skips orphans past a cut and deduplicates — so
        a second dirty reply (or one racing the real boundary) merely
        extends what the first one started. Seals replay naturally: a
        replayed ``ReconfigCommand`` seals its epoch through the ordinary
        ``_append_effective`` path, so the chain, cut slots and the next
        epoch's boundary all derive from agreed history.
        """
        target = self.chain.get(reply.epoch)
        if target is None or target.start_state_ready:
            return
        if reply.base_epoch >= reply.epoch or not reply.epochs:
            return
        base_config = reply.epochs[0][0]
        if base_config.epoch != reply.base_epoch:
            return
        cold = self.state is None and self.virtual_index == 0
        if cold:
            self._open_epoch(base_config, prev_members=None)
            base_runtime = self.chain[base_config.epoch]
            if not base_runtime.start_state_ready and base_runtime.executed == 0:
                # Move the execution frontier back to the base: safe only
                # because nothing has executed here yet, and required so
                # _advance_execution replays forward from the boundary.
                self.exec_epoch = reply.base_epoch
                base_runtime.start_state = reply.boundary
                base_runtime.start_state_ready = True
        self.dirty_applied += 1
        self._m_dirty_applied.inc()
        replayed = 0
        for config, entries, _cut in reply.epochs:
            for slot, payload in enumerate(entries):
                self._observe_entry(config, slot, payload)
                replayed += 1
        self.trace(
            "dirty-transfer",
            epoch=reply.epoch,
            base=reply.base_epoch,
            cold=cold,
            replayed=replayed,
        )
        self._advance_execution()

    def _handle_snapshot_reply(self, reply: SnapshotReply) -> None:
        runtime = self.chain.get(reply.epoch)
        if runtime is None or runtime.start_state_ready:
            return
        runtime.start_state = reply.snapshot
        runtime.start_state_ready = True
        self._span(reply.epoch, "transfer")
        if self._transfer is not None and self._transfer.epoch == reply.epoch:
            self._transfer.done = True
        self.trace("transfer-done", epoch=reply.epoch, bytes=reply.snapshot_bytes)
        self._adopt_boundary_if_ahead(reply.epoch)
        self._advance_execution()

    def _adopt_boundary_if_ahead(self, epoch: EpochId) -> None:
        """Jump the execution frontier to a transferred boundary.

        A boundary snapshot for epoch ``k`` subsumes the history of every
        epoch before ``k``. Normally transfers land exactly at the
        execution frontier, but a replica that skipped an epoch as a
        member (in ``C_{e+1}`` and ``C_{e+3}`` but not ``C_{e+2}``) can be
        stuck with an earlier epoch it will never be able to execute
        locally; adopting the later boundary is both safe (the state is
        agreed) and the only way forward.
        """
        if epoch <= self.exec_epoch:
            return
        # A transfer is only ever started when the previous epoch cannot be
        # completed locally, so a transfer landing ahead of the execution
        # frontier always means the frontier is permanently stuck: adopt.
        self.trace("boundary-jump", frm=self.exec_epoch, to=epoch)
        # The jumped-over epochs will never execute locally, so their
        # reconfiguration spans can never reach first-commit here: close
        # them as aborted instead of leaving them dangling open forever.
        for skipped in range(self.exec_epoch, epoch):
            if skipped == self._genesis_epoch:
                continue
            self.metrics.abandon_span(SPAN_RECONFIG, skipped, self.now)
        self.exec_epoch = epoch
        self.state = None  # re-initialise from the adopted boundary

    def _handle_chunk_request(self, request: SnapshotChunkRequest, sender: NodeId) -> None:
        cached = self.boundary_snapshots.get(request.epoch)
        if cached is None:
            self.send(sender, SnapshotUnavailable(request.epoch))
            return
        snapshot, size = cached
        total = max(1, -(-size // request.chunk_bytes))  # ceil division
        index = min(request.index, total - 1)
        final = index == total - 1
        chunk_size = size - request.chunk_bytes * index if final else request.chunk_bytes
        self.send(
            sender,
            SnapshotChunkReply(
                request.epoch,
                index,
                total,
                deepcopy(snapshot) if final else None,
                size,
            ),
            size=max(chunk_size, 1) + 128,
        )

    def _handle_chunk_reply(self, reply: SnapshotChunkReply, sender: NodeId) -> None:
        task = self._transfer
        runtime = self.chain.get(reply.epoch)
        if runtime is None or runtime.start_state_ready:
            return
        if task is None or task.epoch != reply.epoch or task.done:
            return
        if reply.index != task.next_chunk:
            return  # stale or duplicated chunk; the timer re-requests
        task.total_chunks = reply.total_chunks
        task.next_chunk += 1
        if reply.index == reply.total_chunks - 1:
            runtime.start_state = reply.snapshot
            runtime.start_state_ready = True
            self._span(reply.epoch, "transfer")
            task.done = True
            self.trace(
                "transfer-done",
                epoch=reply.epoch,
                bytes=reply.snapshot_bytes,
                chunks=reply.total_chunks,
            )
            self._adopt_boundary_if_ahead(reply.epoch)
            self._advance_execution()
        else:
            # Stream: pull the next chunk immediately from whichever source
            # just answered (the retry timer covers losses and crashes).
            self.send(
                sender,
                SnapshotChunkRequest(
                    task.epoch, task.next_chunk, self.params.transfer_chunk_bytes
                ),
            )

    # ------------------------------------------------------------------
    # Observer (warm standby) protocol
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        if self._observe_targets:
            self._observer_subscribe_tick()
        if self.storage is not None and self.params.checkpoint_interval > 0:
            self.set_timer(
                self.params.checkpoint_interval,
                self._checkpoint_tick,
                label="checkpoint",
            )

    def _checkpoint_tick(self) -> None:
        if self.crashed:
            return
        self._maybe_checkpoint()
        self.set_timer(
            self.params.checkpoint_interval, self._checkpoint_tick, label="checkpoint"
        )

    def _maybe_checkpoint(self) -> None:
        """Write a periodic checkpoint if execution advanced since the last.

        Mid-epoch checkpoints bound recovery replay between epoch
        boundaries; the (epoch, virtual index) marker makes an idle
        replica's ticks free.
        """
        if self.storage is None or self.state is None:
            return
        marker = (self.exec_epoch, self.virtual_index)
        if marker == self._last_checkpoint_marker:
            return
        runtime = self.chain.get(self.exec_epoch)
        self._last_checkpoint_marker = marker
        self.storage.checkpoint(
            exec_epoch=self.exec_epoch,
            executed=runtime.executed if runtime is not None else 0,
            virtual_index=self.virtual_index,
            app_state=self.state.snapshot(),
            now=self.now,
        )

    def _observer_subscribe_tick(self) -> None:
        """Subscribe (and periodically re-subscribe) to a live sponsor."""
        if self.crashed or not self._observe_targets:
            return
        # Once promoted to a member, stop behaving like an observer.
        if any(rt.engine is not None for rt in self.chain.values()):
            return
        silent_for = self.now - self._last_observed_at
        if not self._observer_bootstrapped or silent_for >= self.params.observer_resubscribe_interval:
            target = self._observe_targets[self._observe_index % len(self._observe_targets)]
            self._observe_index += 1
            self.send(target, ObserverSubscribe())
        self.set_timer(
            self.params.observer_resubscribe_interval,
            self._observer_subscribe_tick,
            label="observer-subscribe",
        )

    def _handle_observer_subscribe(self, sender: NodeId) -> None:
        runtime = self.chain.get(self.exec_epoch)
        if runtime is None or not runtime.start_state_ready:
            return  # not bootstrappable yet; the observer will retry
        if not runtime.start_state_is_boundary:
            # Recovered from a mid-epoch checkpoint: our start_state is
            # not the epoch boundary, so we cannot bootstrap an observer
            # honestly. We can again at the next epoch boundary; until
            # then the observer's re-subscribe tries another sponsor.
            return
        self._observers.add(sender)
        epochs = tuple(
            (
                self.chain[epoch].config,
                tuple(self.chain[epoch].effective),
                self.chain[epoch].cut_slot,
            )
            for epoch in sorted(self.chain)
            if epoch >= self.exec_epoch
        )
        boundary_bytes = self.state.snapshot_bytes() if self.state is not None else 64
        entry_bytes = sum(
            int(getattr(payload, "size", 32))
            for _, entries, _ in epochs
            for payload in entries
        )
        self.send(
            sender,
            ObserverBootstrap(
                start_epoch=self.exec_epoch,
                boundary=deepcopy(runtime.start_state),
                boundary_bytes=boundary_bytes,
                epochs=epochs,
            ),
            size=boundary_bytes + entry_bytes + 128,
        )
        self.trace("observer-bootstrap-sent", to=str(sender), epochs=len(epochs))

    def _handle_observer_bootstrap(self, msg: ObserverBootstrap) -> None:
        self._last_observed_at = self.now
        start_runtime = self.chain.get(msg.start_epoch)
        if start_runtime is None and self.chain:
            # A re-bootstrap landed at an epoch we no longer track from;
            # only accept bootstraps that extend what we have.
            if msg.start_epoch < min(self.chain):
                return
        for config, entries, _cut in msg.epochs:
            self._open_epoch(config, prev_members=None)
            runtime = self.chain[config.epoch]
            if config.epoch == msg.start_epoch and not runtime.start_state_ready:
                runtime.start_state = msg.boundary
                runtime.start_state_ready = True
                self._span(config.epoch, "transfer")
            for slot, payload in enumerate(entries):
                self._observe_entry(config, slot, payload)
        self._observer_bootstrapped = True
        self.trace("observer-bootstrapped", start=msg.start_epoch)
        self._advance_execution()

    def _observe_entry(self, config: Configuration, slot: int, payload: Any) -> None:
        runtime = self.chain.get(config.epoch)
        if runtime is None:
            self._open_epoch(config, prev_members=None)
            runtime = self.chain[config.epoch]
        if runtime.engine is not None:
            return  # we are a member here: the engine is authoritative
        if runtime.sealed and slot > runtime.cut_slot:
            return  # orphan; observers never re-propose
        if slot < len(runtime.effective):
            return  # duplicate
        if slot > len(runtime.effective):
            self._observed_stash.setdefault(config.epoch, {})[slot] = (config, payload)
            return
        self._append_effective(runtime, slot, payload)
        # Drain any stashed successors that are now in order.
        stash = self._observed_stash.get(config.epoch)
        while stash:
            next_slot = len(runtime.effective)
            entry = stash.pop(next_slot, None)
            if entry is None:
                break
            self._append_effective(runtime, next_slot, entry[1])
        self._advance_execution()

    def _handle_observer_update(self, msg: ObserverUpdate) -> None:
        self._last_observed_at = self.now
        self._observe_entry(msg.config, msg.slot, msg.payload)

    # ------------------------------------------------------------------
    # Client interaction
    # ------------------------------------------------------------------

    def _handle_client_request(self, request: ClientRequest) -> None:
        self._admit_command(request.command, request.reply_to)

    def _admit_command(self, command: Command, reply_to: NodeId) -> None:
        cached = self._replies.get(command.cid)
        if cached is not None:
            value, epoch, vindex = cached
            self.send(reply_to, ClientReply(command.cid, value, epoch, vindex))
            return
        if command.op in self.params.read_only_ops:
            mode = self.params.read_mode
            if mode == "lease" and self._serve_lease_read(command, reply_to):
                return
            if mode == "follower" and self._serve_follower_read(command, reply_to):
                return
        if self.is_retired:
            config = self.newest_config
            members = config.members if config is not None else Membership(frozenset())
            epoch = config.epoch if config is not None else -1
            self.send(reply_to, Redirect(command.cid, members, epoch))
            return
        self._pending[command.cid] = _PendingReply(reply_to, self.now)
        if not self._propose_newest(command):
            config = self.newest_config
            if config is not None:
                self.send(
                    reply_to,
                    Redirect(command.cid, config.members, config.epoch),
                )

    def _serve_lease_read(self, command: Command, reply_to: NodeId) -> bool:
        """Serve a read locally if it is provably linearizable to do so.

        Conditions (all must hold — each one is load-bearing):

        1. we lead the **newest** epoch we know and hold a valid read
           lease there — no other member can be committing writes;
        2. that epoch is **not sealed** — once sealed, writes move to the
           next instance, where someone else may already be ordering
           (the cross-epoch staleness hazard); and the seal is ordered by
           the leaseholder itself, so "not sealed here" is authoritative;
        3. our execution is fully caught up with everything we ordered —
           the local state contains every acknowledged write.

        Failing any condition falls back to the ordered (log) path.
        """
        runtime = self.chain.get(self.newest_epoch)
        if runtime is None or runtime.engine is None or not runtime.engine_started:
            return False
        if runtime.sealed:
            return False
        if not runtime.engine.has_read_lease(self.now):
            return False
        if self.exec_epoch != runtime.config.epoch:
            return False
        if not runtime.start_state_ready or runtime.executed != len(runtime.effective):
            return False
        if self.state is None:
            return False
        # Bypass the dedup layer on purpose: reads mutate nothing and must
        # not advance the client's dedup sequence (a later retry of an
        # *older* write would otherwise be misclassified as a duplicate).
        value = self.state.inner.apply(command)
        self.lease_reads += 1
        self._m_lease_reads.inc()
        self.send(
            reply_to,
            ClientReply(command.cid, value, runtime.config.epoch, -1),
        )
        return True

    def _serve_follower_read(self, command: Command, reply_to: NodeId) -> bool:
        """Serve a read locally under an explicit staleness bound.

        Unlike the lease path this is NOT linearizable: any caught-up
        member of the newest epoch answers from local state when it heard
        from the leader within ``params.staleness_bound`` seconds
        (leaders are always fresh). The reply reflects every write this
        member has learned of — a write committed at the leader whose
        ``Decide`` has not arrived here yet is exactly the staleness the
        bound caps, at roughly ``staleness_bound + heartbeat_interval``.

        The epoch-cut guards are shared with the lease path: a sealed
        epoch or lagging execution refuses the read, so local reads never
        observe state from an epoch that has handed off, and a drained
        shard range fails ownership inside the state machine like any
        other apply.
        """
        runtime = self.chain.get(self.newest_epoch)
        if runtime is None or runtime.engine is None or not runtime.engine_started:
            return False
        if runtime.sealed:
            return False
        if runtime.engine.read_freshness_age(self.now) > self.params.staleness_bound:
            return False
        if self.exec_epoch != runtime.config.epoch:
            return False
        if not runtime.start_state_ready or runtime.executed != len(runtime.effective):
            return False
        if self.state is None:
            return False
        # Same dedup bypass as the lease path (reads mutate nothing and
        # must not advance the client's dedup sequence).
        value = self.state.inner.apply(command)
        self.follower_reads += 1
        self._m_follower_reads.inc()
        self.send(
            reply_to,
            ClientReply(command.cid, value, runtime.config.epoch, -1),
        )
        return True

    def request_reconfiguration(self, command: ReconfigCommand) -> bool:
        """Entry point for admin-driven reconfiguration (see service API)."""
        if command.cid in self._sealed_cids or command.cid in self._replies:
            return True
        return self._propose_newest(command)

    def _handle_reconfig_request(self, request: ReconfigRequest) -> None:
        """Wire entry point for admin reconfiguration (live clusters).

        Mirrors :meth:`_handle_client_request`: the requester is registered
        as a pending client so the ordinary ``_complete_command`` path
        acknowledges it when the reconfiguration executes.
        """
        command = request.command
        cached = self._replies.get(command.cid)
        if cached is not None:
            value, epoch, vindex = cached
            self.send(request.reply_to, ClientReply(command.cid, value, epoch, vindex))
            return
        self._pending[command.cid] = _PendingReply(request.reply_to, self.now)
        if not self.request_reconfiguration(command):
            self._pending.pop(command.cid, None)
            config = self.newest_config
            if config is not None:
                self.send(
                    request.reply_to,
                    Redirect(command.cid, config.members, config.epoch),
                )

    # ------------------------------------------------------------------
    # Message dispatch & lifecycle
    # ------------------------------------------------------------------

    def on_message(self, payload: Any, sender: NodeId) -> None:
        if isinstance(payload, InstanceMessage):
            self._route_instance_message(payload, sender)
        elif isinstance(payload, ClientRequest):
            self._handle_client_request(payload)
        elif isinstance(payload, RequestBatch):
            # Unpack a coalesced frame; each command takes the ordinary
            # per-command path (dedup, lease reads, redirects, pending).
            reply_to = payload.reply_to
            for command in payload.commands:
                self._admit_command(command, reply_to)
        elif isinstance(payload, ReconfigRequest):
            self._handle_reconfig_request(payload)
        elif isinstance(payload, EpochAnnounce):
            self._open_epoch(payload.config, prev_members=payload.prev_members)
        elif isinstance(payload, SnapshotRequest):
            self._handle_snapshot_request(payload, sender)
        elif isinstance(payload, SnapshotReply):
            self._handle_snapshot_reply(payload)
        elif isinstance(payload, DirtySnapshotReply):
            self._handle_dirty_snapshot_reply(payload)
        elif isinstance(payload, SnapshotChunkRequest):
            self._handle_chunk_request(payload, sender)
        elif isinstance(payload, SnapshotChunkReply):
            self._handle_chunk_reply(payload, sender)
        elif isinstance(payload, SnapshotUnavailable):
            pass  # the transfer timer will retry another source
        elif isinstance(payload, ObserverSubscribe):
            self._handle_observer_subscribe(sender)
        elif isinstance(payload, ObserverBootstrap):
            self._handle_observer_bootstrap(payload)
        elif isinstance(payload, ObserverUpdate):
            self._handle_observer_update(payload)

    def _route_instance_message(self, message: InstanceMessage, sender: NodeId) -> None:
        if not message.instance.startswith("e"):
            return
        try:
            epoch = int(message.instance[1:])
        except ValueError:
            return
        runtime = self.chain.get(epoch)
        if runtime is None or runtime.engine is None:
            return  # epoch unknown here (yet); peers retry
        if runtime.engine.stopped or not runtime.engine_started:
            return
        runtime.engine.on_message(message.inner, sender)

    def on_crash(self) -> None:
        for runtime in self.chain.values():
            if runtime.engine is not None:
                runtime.engine.stop()
        if self.storage is not None:
            # Simulated crashes leave the store on disk for the replica's
            # next incarnation; closing keeps the dead process from
            # holding (or, in tests, reusing) the write handle.
            self.storage.close()
