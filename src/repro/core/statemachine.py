"""Application state machine interface and exactly-once wrapper.

The replication layer executes the virtual log against a deterministic
:class:`StateMachine`. Snapshots are plain Python values (deep-copied when
captured) so they can travel through the simulated network as state
transfer payloads; ``snapshot_bytes`` gives the transfer-cost model its
size.

:class:`DedupStateMachine` wraps any state machine with per-client
duplicate suppression. Commands can legitimately reach the log twice —
clients retry over crashes, and the composition re-proposes orphans into
the next epoch — so exactly-once *execution* is enforced here, at apply
time: a command whose ``(client, seq)`` was already applied returns its
cached reply and leaves the state untouched. The dedup table is part of
the snapshot, which is what keeps exactly-once working across epoch
boundaries and joining replicas.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.types import ClientId, Command


class StateMachine(abc.ABC):
    """Deterministic application logic replicated by the service."""

    @abc.abstractmethod
    def apply(self, command: Command) -> Any:
        """Execute ``command``, mutate state, and return the reply value."""

    @abc.abstractmethod
    def snapshot(self) -> Any:
        """Capture the full state as a self-contained value."""

    @abc.abstractmethod
    def restore(self, snapshot: Any) -> None:
        """Replace the state with a previously captured snapshot."""

    @abc.abstractmethod
    def snapshot_bytes(self) -> int:
        """Approximate serialized size of the current state, in bytes."""


class DedupStateMachine(StateMachine):
    """Exactly-once execution wrapper around an inner state machine.

    Assumes each client issues sequence numbers in increasing order with at
    most one outstanding command (the closed-loop client in
    :mod:`repro.core.client` guarantees this). Replies are cached per
    client for the *latest* sequence number only, which bounds the table at
    one entry per client.
    """

    def __init__(self, inner: StateMachine):
        self.inner = inner
        # client -> (last applied seq, cached reply)
        self._applied: dict[ClientId, tuple[int, Any]] = {}
        self.duplicates_suppressed = 0

    def apply(self, command: Command) -> Any:
        client = command.cid.client
        seq = command.cid.seq
        last = self._applied.get(client)
        if last is not None:
            last_seq, last_reply = last
            if seq == last_seq:
                self.duplicates_suppressed += 1
                return last_reply
            if seq < last_seq:
                # Stale duplicate from long ago; its reply is gone, but the
                # client must have moved on, so nobody is waiting for it.
                self.duplicates_suppressed += 1
                return None
        try:
            reply = self.inner.apply(command)
        except Exception as exc:  # noqa: BLE001
            # A malformed command (unknown op, wrong arg arity) must not
            # wedge the log: it is already *decided*, so every replica will
            # execute it. Raising here would poison the execution pointer
            # at this slot on every replica — one bad client request could
            # halt the whole live service. Applying to identical state
            # raises identically everywhere, so turning the error into the
            # reply value keeps replicas deterministic.
            reply = f"error: {type(exc).__name__}: {exc}"
        self._applied[client] = (seq, reply)
        return reply

    def snapshot(self) -> Any:
        return {"inner": self.inner.snapshot(), "applied": dict(self._applied)}

    def restore(self, snapshot: Any) -> None:
        self.inner.restore(snapshot["inner"])
        self._applied = dict(snapshot["applied"])

    def snapshot_bytes(self) -> int:
        return self.inner.snapshot_bytes() + 32 * len(self._applied)

    def has_applied(self, client: ClientId, seq: int) -> bool:
        last = self._applied.get(client)
        return last is not None and seq <= last[0]

    def cached_reply(self, client: ClientId, seq: int) -> Any:
        last = self._applied.get(client)
        if last is not None and last[0] == seq:
            return last[1]
        return None
