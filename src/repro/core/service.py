"""Convenience facade: build and drive a reconfigurable replicated service.

:class:`ReplicatedService` wires replicas, spawns joiners, issues
reconfigurations, and creates clients — the API the examples, tests and
benchmark harness all share.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.consensus.interface import EngineFactory
from repro.consensus.multipaxos import MultiPaxosEngine, PaxosParams
from repro.core.client import Client, ClientParams, OperationSource, OpRecord
from repro.core.command import ReconfigCommand
from repro.core.reconfig import (
    CommitListener,
    OrderListener,
    ReconfigParams,
    ReconfigurableReplica,
)
from repro.core.runtime import Runtime
from repro.core.statemachine import StateMachine
from repro.errors import ConfigurationError
from repro.metrics.registry import metrics_of
from repro.types import (
    ClientId,
    CommandId,
    Configuration,
    EpochId,
    Membership,
    NodeId,
)


def spawn_replica(
    sim: Runtime,
    node: str,
    app_factory: Callable[[], StateMachine],
    params: ReconfigParams,
    commit_listener: CommitListener | None = None,
    order_listener: OrderListener | None = None,
) -> ReconfigurableReplica:
    """Create a *joining* replica: it waits for an ``EpochAnnounce``.

    Spawn the process before (or at) the moment a reconfiguration adds it,
    so the announce finds a live endpoint.
    """
    return ReconfigurableReplica(
        sim,
        NodeId(node),
        app_factory,
        params,
        initial_config=None,
        commit_listener=commit_listener,
        order_listener=order_listener,
    )


class ReplicatedService:
    """A reconfigurable replicated state machine plus its admin plane."""

    ADMIN = ClientId("admin")

    def __init__(
        self,
        sim: Runtime,
        members: Iterable[str],
        app_factory: Callable[[], StateMachine],
        engine_factory: EngineFactory | None = None,
        pipeline_depth: int | None = None,
        params: ReconfigParams | None = None,
        commit_listener: CommitListener | None = None,
        order_listener: OrderListener | None = None,
        storage_factory: Callable[[str], Any] | None = None,
        batch_delay: float = 0.0,
        batch_max: int = 32,
        window: int = 0,
        handoff: str = "clean",
    ):
        self.sim = sim
        self.app_factory = app_factory
        if params is None:
            if engine_factory is None and (batch_delay > 0 or window > 0):
                # Commit-path knobs without hand-building an engine
                # factory: the common way tests and benches turn on
                # leader batching and a bounded proposer pipeline.
                engine_factory = MultiPaxosEngine.factory(
                    PaxosParams(
                        batch_delay=batch_delay,
                        batch_max=batch_max,
                        window=window,
                    )
                )
            factory = engine_factory or MultiPaxosEngine.factory()
            params = ReconfigParams(
                engine_factory=factory,
                pipeline_depth=pipeline_depth,
                handoff=handoff,
            )
        self.params = params
        self.commit_listener = commit_listener
        self.order_listener = order_listener
        #: node name -> ReplicaStore; lets deterministic sim tests run the
        #: replicas durably (each node needs its own directory).
        self.storage_factory = storage_factory
        initial = Configuration(0, Membership.from_iter(members))
        if len(initial.members) == 0:
            raise ConfigurationError("service needs at least one member")
        self.initial_config = initial
        self.replicas: dict[NodeId, ReconfigurableReplica] = {}
        for node in initial.members:
            self.replicas[node] = ReconfigurableReplica(
                sim,
                node,
                app_factory,
                params,
                initial_config=initial,
                commit_listener=commit_listener,
                order_listener=order_listener,
                storage=storage_factory(str(node)) if storage_factory else None,
            )
        self._admin_seq = 0
        self._clients: list[Client] = []

    # -- membership operations ---------------------------------------------------

    def add_replica(self, node: str) -> ReconfigurableReplica:
        """Spawn a joining replica process (does not reconfigure by itself)."""
        replica = spawn_replica(
            self.sim,
            node,
            self.app_factory,
            self.params,
            self.commit_listener,
            self.order_listener,
        )
        self.replicas[replica.node] = replica
        return replica

    def add_observer(self, node: str) -> ReconfigurableReplica:
        """Spawn a warm standby that tracks the virtual log without voting.

        The observer bootstraps from the current members and stays caught
        up; a later :meth:`reconfigure` that includes it promotes it with
        no bulk state transfer (its boundary state is already local).
        """
        targets = [NodeId(str(n)) for n in self._current_members()]
        replica = ReconfigurableReplica(
            self.sim,
            NodeId(node),
            self.app_factory,
            self.params,
            initial_config=None,
            commit_listener=self.commit_listener,
            order_listener=self.order_listener,
            observe_from=targets,
        )
        self.replicas[replica.node] = replica
        return replica

    def reconfigure(self, new_members: Iterable[str]) -> CommandId:
        """Submit a reconfiguration to the service; returns its command id.

        The request is handed to every live replica of the newest known
        configuration — redundancy the engines deduplicate — so a single
        crashed contact cannot swallow it.
        """
        membership = Membership.from_iter(new_members)
        if len(membership) == 0:
            raise ConfigurationError("cannot reconfigure to an empty membership")
        for node in membership:
            if node not in self.replicas:
                self.add_replica(str(node))
        self._admin_seq += 1
        cid = CommandId(self.ADMIN, self._admin_seq)
        command = ReconfigCommand(cid, membership)
        targets = self._current_members()
        for node in targets:
            replica = self.replicas.get(node)
            if replica is not None and not replica.crashed:
                replica.request_reconfiguration(command)
        metrics_of(self.sim).counter("service.reconfigure_requests").inc()
        self.sim.trace.emit(
            self.sim.now, "service", "reconfigure", cid=str(cid), to=str(membership)
        )
        return cid

    def reconfigure_at(self, time: float, new_members: Iterable[str]) -> None:
        members = list(new_members)
        self.sim.at(time, lambda: self.reconfigure(members), label="reconfigure")

    def _current_members(self) -> list[NodeId]:
        epoch = self.newest_epoch()
        for replica in self.replicas.values():
            runtime = replica.epoch_runtime(epoch)
            if runtime is not None:
                return runtime.config.members.sorted_nodes()
        return self.initial_config.members.sorted_nodes()

    # -- observation ----------------------------------------------------------------

    def newest_epoch(self) -> EpochId:
        return max(
            (r.newest_epoch for r in self.replicas.values() if not r.crashed),
            default=-1,
        )

    def epoch_settled(self, epoch: EpochId) -> bool:
        """True when some live member of ``epoch`` has executed its start."""
        for replica in self.replicas.values():
            if replica.crashed:
                continue
            runtime = replica.epoch_runtime(epoch)
            if (
                runtime is not None
                and replica.node in runtime.config.members
                and runtime.start_state_ready
            ):
                return True
        return False

    def live_members(self, epoch: EpochId | None = None) -> list[ReconfigurableReplica]:
        epoch = self.newest_epoch() if epoch is None else epoch
        out = []
        for replica in self.replicas.values():
            if replica.crashed:
                continue
            runtime = replica.epoch_runtime(epoch)
            if runtime is not None and replica.node in runtime.config.members:
                out.append(replica)
        return out

    # -- clients -----------------------------------------------------------------------

    def make_client(
        self,
        name: str,
        operations: OperationSource,
        params: ClientParams | None = None,
        on_complete: Callable[[OpRecord], None] | None = None,
    ) -> Client:
        client = Client(
            self.sim,
            ClientId(name),
            self.initial_config.members,
            operations,
            params=params,
            on_complete=on_complete,
        )
        self._clients.append(client)
        return client

    @property
    def clients(self) -> list[Client]:
        return list(self._clients)
