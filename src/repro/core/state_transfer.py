"""Boundary-state transfer between configurations.

When a replica joins the service at epoch ``e`` (it is in ``C_e`` but was
not in ``C_{e-1}``) it needs the application state at the epoch boundary —
the state after executing every epoch before ``e``. Members of the
previous configuration compute and cache that boundary snapshot when they
finish executing epoch ``e-1``; the joiner polls them round-robin until one
answers.

Snapshot replies are sized by the application's ``snapshot_bytes``, so the
network's bandwidth model makes large-state transfers take proportionally
longer — the effect experiment T2 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.types import Configuration, EpochId, NodeId


@dataclass(frozen=True, slots=True)
class SnapshotRequest:
    """Ask for the boundary snapshot at the start of ``epoch``."""

    epoch: EpochId


@dataclass(frozen=True, slots=True)
class SnapshotReply:
    """Boundary snapshot for ``epoch`` (state after all prior epochs)."""

    epoch: EpochId
    snapshot: Any
    snapshot_bytes: int


@dataclass(frozen=True, slots=True)
class SnapshotUnavailable:
    """The asked replica does not (yet) have that boundary snapshot."""

    epoch: EpochId


@dataclass(frozen=True, slots=True)
class DirtySnapshotReply:
    """Dirty-cut hand-off: a boundary the source can serve *right now*.

    Sent (only under ``ReconfigParams.handoff == "dirty"``) by a source
    that was asked for the boundary of ``epoch`` before it finished
    executing the epochs leading up to it. Instead of
    :class:`SnapshotUnavailable`, the source ships the newest finished
    boundary it does have (``base_epoch``, possibly several epochs back)
    plus the effective-log tail it has learned since: ``epochs`` lists
    ``(config, effective_entries_so_far, cut_slot_or_None)`` for every
    epoch in ``[base_epoch, epoch)``, in order. The receiver installs the
    base boundary and replays the tail through the observer-entry
    machinery — every entry is an agreed decision, so the replayed state
    is a prefix of the agreed history and later replies (or the real
    boundary) simply extend it.
    """

    epoch: EpochId
    base_epoch: EpochId
    boundary: Any
    boundary_bytes: int
    epochs: tuple[tuple[Configuration, tuple, Any], ...]


@dataclass(frozen=True, slots=True)
class SnapshotChunkRequest:
    """Ask for one chunk of the boundary snapshot (chunked transfer mode).

    Chunking models wire-level flow control: the snapshot travels as a
    train of fixed-size messages, so a lost message or a crashed source
    costs one chunk, not the whole transfer. Boundary snapshots are
    deterministic — identical at every member of the previous epoch — so
    chunks fetched from *different* sources assemble into the same state
    and a mid-transfer failover simply resumes at the next chunk index.
    """

    epoch: EpochId
    index: int
    chunk_bytes: int


@dataclass(frozen=True, slots=True)
class SnapshotChunkReply:
    """One chunk. Only the final chunk carries the assembled snapshot."""

    epoch: EpochId
    index: int
    total_chunks: int
    #: present on the last chunk only (simulation stands in for real
    #: byte-level reassembly; the wire cost is modelled per chunk).
    snapshot: Any
    snapshot_bytes: int


@dataclass(slots=True)
class TransferTask:
    """One in-progress fetch of a boundary snapshot at a joining replica."""

    epoch: EpochId
    sources: list[NodeId]
    next_source: int = 0
    attempts: int = 0
    done: bool = False
    #: chunked mode progress (next chunk index we still need).
    next_chunk: int = 0
    total_chunks: int | None = None

    def pick_source(self) -> NodeId:
        source = self.sources[self.next_source % len(self.sources)]
        self.next_source += 1
        self.attempts += 1
        return source
