"""The execution-environment seam between protocol logic and its host.

Every protocol object in this library — replicas, engines, clients — is
written against a small structural surface: a clock (``now``), one-shot
callbacks (``schedule`` / ``at``), a message port (``network.send`` /
``network.register``), a forkable RNG and a trace sink. Historically that
surface was provided only by :class:`repro.sim.runner.Simulator`; the
:class:`Runtime` protocol below names it explicitly so the *same* replica
implementation can run on two backends:

* the discrete-event simulator (:mod:`repro.sim`) — virtual time, a single
  event queue, deterministic delivery, used by every experiment and test;
* the live networked runtime (:mod:`repro.net`) — wall-clock time over an
  asyncio event loop, real length-prefixed TCP frames between processes.

The protocols are intentionally structural (:pep:`544`): ``Simulator``
satisfies them without importing this module, and anything that drives a
:class:`repro.sim.node.Process` only needs these members, nothing more.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.types import NodeId, Time


@runtime_checkable
class ScheduledCall(Protocol):
    """Handle to one scheduled callback (cancelable, inspectable).

    ``repro.sim.events.Event`` and ``repro.net.runtime.LiveCall`` both
    satisfy this; :class:`repro.sim.events.Timer` wraps either.
    """

    time: Time
    cancelled: bool

    def cancel(self) -> None: ...


@runtime_checkable
class MessagePort(Protocol):
    """The sending/registration surface shared by sim and live networks.

    ``size=None`` asks the port to estimate the payload's wire size itself
    (the simulated network uses the shared codec estimator; the live
    transport measures the encoded frame).
    """

    def send(
        self, sender: NodeId, dest: NodeId, payload: Any, size: int | None = None
    ) -> None: ...

    def register(self, node: NodeId, deliver: Callable[..., None]) -> None: ...

    def unregister(self, node: NodeId) -> None: ...

    def knows(self, node: NodeId) -> bool: ...


@runtime_checkable
class TraceSink(Protocol):
    """Structured event log (``repro.sim.trace.TraceLog`` satisfies this)."""

    def emit(self, time: Time, source: str, category: str, **detail: Any) -> None: ...


@runtime_checkable
class Rng(Protocol):
    """Forkable random stream (``repro.sim.rng.SeededRng`` satisfies this)."""

    def fork(self, name: str) -> "Rng": ...

    def uniform(self, low: float, high: float) -> float: ...

    def random(self) -> float: ...


@runtime_checkable
class Runtime(Protocol):
    """What a :class:`repro.sim.node.Process` requires of its host.

    Implementations:

    * :class:`repro.sim.runner.Simulator` — virtual clock, event queue.
    * :class:`repro.net.runtime.LiveRuntime` — wall clock, asyncio loop,
      TCP transport.
    """

    rng: Rng
    network: MessagePort
    trace: TraceSink

    @property
    def now(self) -> Time: ...

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> ScheduledCall: ...

    def schedule_event(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> ScheduledCall: ...

    def at(
        self, time: Time, action: Callable[[], None], label: str = ""
    ) -> ScheduledCall: ...

    def register_process(self, process: Any) -> None: ...

    def remove_process(self, node: NodeId) -> None: ...
