"""Stop-the-world reconfiguration baseline.

Mechanically this is the paper's composition with the speculation gate set
to depth 1: a member may not *start* the new epoch's engine until the
boundary state of that epoch is locally available (for surviving members,
after executing the old epoch; for joiners, after the snapshot transfer
completes). Ordering therefore halts for the duration of the hand-off —
the classic "wedge the old instance, copy the state, start the new one"
procedure.

Using the same code path for the baseline is deliberate: the *only*
difference between this and the paper's protocol is whether ordering may
overlap state hand-off, so any performance difference measured in the
benchmarks is attributable to speculation and nothing else.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.consensus.interface import EngineFactory
from repro.consensus.multipaxos import MultiPaxosEngine
from repro.core.reconfig import CommitListener, ReconfigParams
from repro.core.service import ReplicatedService
from repro.core.statemachine import StateMachine
from repro.sim.runner import Simulator


def stop_the_world_params(
    engine_factory: EngineFactory | None = None,
) -> ReconfigParams:
    """ReconfigParams for the stop-the-world hand-off (pipeline depth 1)."""
    return ReconfigParams(
        engine_factory=engine_factory or MultiPaxosEngine.factory(),
        pipeline_depth=1,
    )


class StopTheWorldService(ReplicatedService):
    """A :class:`ReplicatedService` with speculative hand-off disabled."""

    def __init__(
        self,
        sim: Simulator,
        members: Iterable[str],
        app_factory: Callable[[], StateMachine],
        engine_factory: EngineFactory | None = None,
        commit_listener: CommitListener | None = None,
        order_listener=None,
    ):
        super().__init__(
            sim,
            members,
            app_factory,
            params=stop_the_world_params(engine_factory),
            commit_listener=commit_listener,
            order_listener=order_listener,
        )
