"""Service facade for the Raft baseline, mirroring ReplicatedService.

The one structural difference from the paper's composition surfaces here:
Raft changes membership one server at a time, so an arbitrary jump (say,
migrating ``{n1,n2,n3}`` to ``{n4,n5,n6}``) is decomposed into a sequence
of add/remove steps, each waiting for the previous one to be applied. The
composition does the same jump in a single reconfiguration — that
difference is part of what the benchmarks measure.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.baselines.raft import RaftParams, RaftReplica
from repro.core.client import Client, ClientParams, OperationSource, OpRecord
from repro.core.command import ReconfigCommand
from repro.core.statemachine import StateMachine
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.runner import Simulator
from repro.types import ClientId, CommandId, Membership, NodeId, Time


class RaftService:
    """A Raft cluster plus the admin plane that drives membership changes."""

    ADMIN = ClientId("admin")

    def __init__(
        self,
        sim: Simulator,
        members: Iterable[str],
        app_factory: Callable[[], StateMachine],
        params: RaftParams | None = None,
        commit_listener=None,
    ):
        self.sim = sim
        self.params = params if params is not None else RaftParams()
        self.app_factory = app_factory
        self.commit_listener = commit_listener
        membership = Membership.from_iter(members)
        if len(membership) == 0:
            raise ConfigurationError("raft cluster needs at least one member")
        self.initial_members = membership
        self.replicas: dict[NodeId, RaftReplica] = {}
        for node in membership:
            self.replicas[node] = RaftReplica(
                sim,
                node,
                app_factory,
                params=self.params,
                initial_config=membership,
                commit_listener=commit_listener,
            )
        self._admin_seq = 0
        self._clients: list[Client] = []
        self._targets: list[Membership] = []
        self._driving = False
        self._current_step: tuple[CommandId, Membership] | None = None

    # -- membership ----------------------------------------------------------

    def add_replica(self, node: str) -> RaftReplica:
        """Spawn a fresh (empty) server; it joins once a config adds it."""
        replica = RaftReplica(
            self.sim,
            NodeId(node),
            self.app_factory,
            params=self.params,
            initial_config=None,
            commit_listener=self.commit_listener,
        )
        self.replicas[replica.node] = replica
        return replica

    def _current_config(self) -> Membership:
        leader = self.leader()
        if leader is not None:
            return leader.config
        for replica in self.replicas.values():
            if not replica.crashed and len(replica.config) > 0:
                return replica.config
        return self.initial_members

    def reconfigure(self, new_members: Iterable[str]) -> None:
        """Drive the membership to ``new_members`` via single-server steps.

        Targets are queued and served strictly one at a time; each single
        step is recomputed against the *live* configuration immediately
        before submission, so overlapping reconfigure calls (storms) and
        leader changes mid-sequence cannot desynchronise the decomposition.
        """
        target = Membership.from_iter(new_members)
        if len(target) == 0:
            raise ConfigurationError("cannot reconfigure to an empty membership")
        for node in target:
            if node not in self.replicas:
                self.add_replica(str(node))
        self._targets.append(target)
        if not self._driving:
            self._driving = True
            self._drive_tick()

    def reconfigure_at(self, time: Time, new_members: Iterable[str]) -> None:
        members = list(new_members)
        self.sim.at(time, lambda: self.reconfigure(members), label="raft-reconfigure")

    def _next_step(self, target: Membership) -> Membership | None:
        """One single-server step from the live config toward ``target``."""
        current = set(self._current_config().nodes)
        goal = set(target.nodes)
        additions = sorted(goal - current)
        if additions:
            return Membership(frozenset(current | {additions[0]}))
        removals = sorted(current - goal)
        if removals:
            return Membership(frozenset(current - {removals[0]}))
        return None  # already there

    def _drive_tick(self) -> None:
        if not self._targets:
            self._driving = False
            return
        target = self._targets[0]

        step = self._current_step
        if step is not None:
            cid, membership = step
            applied = any(
                not r.crashed and cid in r._replies for r in self.replicas.values()
            ) or self._current_config() == membership
            if applied:
                self._current_step = None
            else:
                leader = self.leader()
                if leader is not None:
                    try:
                        leader.request_reconfiguration(ReconfigCommand(cid, membership))
                    except ProtocolError:
                        # Config drifted under us (competing target applied
                        # first); abandon this step and recompute.
                        self._current_step = None
                self._schedule_drive()
                return

        next_membership = self._next_step(target)
        if next_membership is None:
            self._targets.pop(0)
            self._schedule_drive()
            return
        self._admin_seq += 1
        cid = CommandId(self.ADMIN, self._admin_seq)
        self._current_step = (cid, next_membership)
        leader = self.leader()
        if leader is not None:
            try:
                leader.request_reconfiguration(ReconfigCommand(cid, next_membership))
            except ProtocolError:
                self._current_step = None
        self._schedule_drive()

    def _schedule_drive(self) -> None:
        self.sim.schedule(0.05, self._drive_tick, label="raft-reconfig-step")

    # -- observation ---------------------------------------------------------------

    def leader(self) -> RaftReplica | None:
        leaders = [
            r
            for r in self.replicas.values()
            if not r.crashed and r.role == "leader" and r.node in r.config
        ]
        if not leaders:
            return None
        return max(leaders, key=lambda r: r.current_term)

    def applied_membership(self) -> Membership:
        leader = self.leader()
        if leader is not None:
            return leader.applied_config
        return self._current_config()

    # -- clients ----------------------------------------------------------------------

    def make_client(
        self,
        name: str,
        operations: OperationSource,
        params: ClientParams | None = None,
        on_complete: Callable[[OpRecord], None] | None = None,
    ) -> Client:
        client = Client(
            self.sim,
            ClientId(name),
            self.initial_members,
            operations,
            params=params,
            on_complete=on_complete,
        )
        self._clients.append(client)
        return client

    @property
    def clients(self) -> list[Client]:
        return list(self._clients)
