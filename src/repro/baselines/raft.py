"""A Raft-style monolithic reconfigurable SMR (the OSS-dominant design).

This is the comparator the novelty note calls out: instead of composing
static instances, bake reconfiguration *into* the consensus protocol.
The implementation follows the Raft paper closely:

* terms, randomized election timeouts, majority voting with the
  up-to-date-log restriction;
* leader-driven log replication with the prev-index/prev-term consistency
  check and conflict-index backup;
* commit on majority match within the current term, with a no-op barrier
  entry appended on election;
* **single-server membership changes**: a configuration entry takes effect
  the moment it is appended (the Raft dissertation rule); arbitrary
  membership jumps must be decomposed into a sequence of single changes by
  the service facade — an honest representation of etcd-style systems and
  one of the measured differences from the paper's composition, which
  jumps to any membership in one step;
* log compaction and **InstallSnapshot** for catching up fresh servers, so
  Raft's joiner cost scales with application state size exactly like the
  composition's state transfer does (fair comparison in experiment T2).

Persistent state (term, vote, log, snapshot) lives in the process's
``stable`` dict and is restored by ``on_restart``, so Raft supports the
crash-recovery experiments natively.
"""

from __future__ import annotations

from copy import deepcopy
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.client import ClientReply, ClientRequest, Redirect
from repro.core.command import ReconfigCommand
from repro.core.statemachine import DedupStateMachine, StateMachine
from repro.errors import ProtocolError
from repro.sim.events import Timer
from repro.sim.node import Process
from repro.sim.runner import Simulator
from repro.types import Command, CommandId, Membership, NodeId, Time


# ---------------------------------------------------------------------------
# Wire messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RaftEntry:
    """One log entry: a term and a payload (command/config/noop barrier)."""

    term: int
    payload: Any


@dataclass(frozen=True, slots=True)
class RequestVote:
    term: int
    candidate: NodeId
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True, slots=True)
class VoteReply:
    term: int
    granted: bool


@dataclass(frozen=True, slots=True)
class AppendEntries:
    term: int
    leader: NodeId
    prev_log_index: int
    prev_log_term: int
    entries: tuple[RaftEntry, ...]
    leader_commit: int


@dataclass(frozen=True, slots=True)
class AppendReply:
    term: int
    success: bool
    match_index: int
    conflict_index: int


@dataclass(frozen=True, slots=True)
class InstallSnapshot:
    term: int
    leader: NodeId
    last_index: int
    last_term: int
    config: Membership
    snapshot: Any
    snapshot_bytes: int


@dataclass(frozen=True, slots=True)
class InstallSnapshotReply:
    term: int
    match_index: int


@dataclass(slots=True)
class RaftParams:
    """Raft timing/compaction parameters (simulated seconds)."""

    election_timeout_min: float = 0.15
    election_timeout_max: float = 0.30
    heartbeat_interval: float = 0.025
    max_entries_per_append: int = 64
    #: compact the log once this many entries are applied past its base.
    compaction_threshold: int = 512
    protocol_overhead_bytes: int = 96
    #: lowest-id member campaigns immediately at t=0 for fast cold start.
    fast_bootstrap: bool = True


def _payload_size(payload: Any) -> int:
    return int(getattr(payload, "size", 32))


@dataclass(slots=True)
class _Noop:
    """Leader barrier entry appended at election (commits older terms)."""

    size: int = 16


class RaftReplica(Process):
    """One Raft server with membership change and snapshot catch-up."""

    def __init__(
        self,
        sim: Simulator,
        node: NodeId,
        app_factory: Callable[[], StateMachine],
        params: RaftParams | None = None,
        initial_config: Membership | None = None,
        commit_listener: Callable[[Time, Any, int, int, Any], None] | None = None,
    ):
        super().__init__(sim, node)
        self.params = params if params is not None else RaftParams()
        self.app_factory = app_factory
        self.commit_listener = commit_listener
        self._rng = sim.rng.fork(f"raft/{node}")

        # Persistent state (mirrored into self.stable on every mutation).
        self.current_term = 0
        self.voted_for: NodeId | None = None
        self.log: list[RaftEntry] = []
        self.log_base = 1  # global index of log[0]
        self.snap_index = 0
        self.snap_term = 0
        self.snap_config: Membership | None = initial_config
        self.snap_data: Any = None

        # Volatile state.
        self.commit_index = 0
        self.last_applied = 0
        self.role = "follower"
        self.leader_hint: NodeId | None = None
        self.state = DedupStateMachine(app_factory())
        self.config: Membership = initial_config or Membership(frozenset())
        self.applied_config: Membership = self.config

        # Leader state.
        self.next_index: dict[NodeId, int] = {}
        self.match_index: dict[NodeId, int] = {}
        self._votes: set[NodeId] = set()
        self._cid_index: dict[CommandId, int] = {}

        # Client bookkeeping.
        self._pending: dict[CommandId, NodeId] = {}
        self._replies: dict[CommandId, tuple[Any, int, int]] = {}
        self.committed: list[tuple[Any, int, int]] = []

        self._election_timer: Timer | None = None
        self._hb_timer: Timer | None = None
        self._last_leader_contact = float("-inf")
        self._persist()

    # ------------------------------------------------------------------
    # Log helpers (global indices start at 1; entries below log_base are
    # compacted into the snapshot)
    # ------------------------------------------------------------------

    @property
    def last_log_index(self) -> int:
        return self.log_base + len(self.log) - 1

    def term_at(self, index: int) -> int | None:
        if index == self.snap_index:
            return self.snap_term
        if index == 0:
            return 0
        if index >= self.log_base and index <= self.last_log_index:
            return self.log[index - self.log_base].term
        return None

    def entry_at(self, index: int) -> RaftEntry:
        return self.log[index - self.log_base]

    def _persist(self) -> None:
        self.stable["term"] = self.current_term
        self.stable["voted_for"] = self.voted_for
        self.stable["log"] = list(self.log)
        self.stable["log_base"] = self.log_base
        self.stable["snap"] = (
            self.snap_index,
            self.snap_term,
            self.snap_config,
            self.snap_data,
        )

    def _recompute_config(self) -> None:
        """Membership = latest config entry in the log, else the snapshot's."""
        for entry in reversed(self.log):
            if isinstance(entry.payload, ReconfigCommand):
                self.config = entry.payload.new_members
                return
        self.config = self.snap_config or Membership(frozenset())

    # ------------------------------------------------------------------
    # Lifecycle & timers
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self._arm_election_timer()
        if (
            self.params.fast_bootstrap
            and len(self.config) > 0
            and self.node == self.config.sorted_nodes()[0]
        ):
            self.set_timer(
                self._rng.uniform(0.0, 0.01), self._start_election, label="bootstrap"
            )

    def on_restart(self) -> None:
        self.current_term = self.stable.get("term", 0)
        self.voted_for = self.stable.get("voted_for")
        self.log = list(self.stable.get("log", []))
        self.log_base = self.stable.get("log_base", 1)
        snap = self.stable.get("snap", (0, 0, None, None))
        self.snap_index, self.snap_term, self.snap_config, self.snap_data = snap
        self.role = "follower"
        self.leader_hint = None
        self.commit_index = self.snap_index
        self.last_applied = self.snap_index
        self.state = DedupStateMachine(self.app_factory())
        if self.snap_data is not None:
            self.state.restore(self.snap_data)
        self._recompute_config()
        self.applied_config = self.config
        self._pending.clear()
        self._arm_election_timer()

    def _arm_election_timer(self) -> None:
        if self._election_timer is not None:
            self._election_timer.cancel()
        if self.node not in self.config:
            return  # not a voter: never campaign
        delay = self._rng.uniform(
            self.params.election_timeout_min, self.params.election_timeout_max
        )
        self._election_timer = self.set_timer(
            delay, self._on_election_timeout, label="raft-election"
        )

    def _on_election_timeout(self) -> None:
        if self.role != "leader":
            self._start_election()
        self._arm_election_timer()

    # ------------------------------------------------------------------
    # Elections
    # ------------------------------------------------------------------

    def _start_election(self) -> None:
        if self.node not in self.config or self.role == "leader":
            return
        self.role = "candidate"
        self.current_term += 1
        self.voted_for = self.node
        self._votes = {self.node}
        self._persist()
        self.trace("raft-campaign", term=self.current_term)
        request = RequestVote(
            self.current_term, self.node, self.last_log_index,
            self.term_at(self.last_log_index) or 0,
        )
        for peer in self.config:
            if peer != self.node:
                self.send(peer, request, size=self.params.protocol_overhead_bytes)
        if len(self._votes) >= self.config.quorum_size:
            self._become_leader()

    def _handle_request_vote(self, msg: RequestVote, sender: NodeId) -> None:
        # Vote stickiness (Raft dissertation §4.2.3): a server that has
        # heard from a live leader within the minimum election timeout —
        # or *is* the live leader — refuses to vote and does not adopt the
        # candidate's term. Without this, servers removed from the
        # configuration — which never learn of their removal — disrupt the
        # cluster with endless higher-term campaigns.
        recently_led = (
            self.role == "leader"
            or self.now - self._last_leader_contact < self.params.election_timeout_min
        )
        if recently_led and msg.candidate != self.leader_hint:
            self.send(
                sender,
                VoteReply(self.current_term, False),
                size=self.params.protocol_overhead_bytes,
            )
            return
        if msg.term > self.current_term:
            self._adopt_term(msg.term)
        granted = False
        if msg.term == self.current_term and self.voted_for in (None, msg.candidate):
            my_last_term = self.term_at(self.last_log_index) or 0
            up_to_date = (msg.last_log_term, msg.last_log_index) >= (
                my_last_term,
                self.last_log_index,
            )
            if up_to_date:
                granted = True
                self.voted_for = msg.candidate
                self._persist()
                self._arm_election_timer()
        self.send(
            sender,
            VoteReply(self.current_term, granted),
            size=self.params.protocol_overhead_bytes,
        )

    def _handle_vote_reply(self, msg: VoteReply, sender: NodeId) -> None:
        if msg.term > self.current_term:
            self._adopt_term(msg.term)
            return
        if self.role != "candidate" or msg.term != self.current_term or not msg.granted:
            return
        self._votes.add(sender)
        if len(self._votes) >= self.config.quorum_size:
            self._become_leader()

    def _become_leader(self) -> None:
        self.role = "leader"
        self.leader_hint = self.node
        self.trace("raft-leader", term=self.current_term)
        next_index = self.last_log_index + 1
        self.next_index = {peer: next_index for peer in self.config}
        self.match_index = {peer: 0 for peer in self.config}
        self.match_index[self.node] = self.last_log_index
        # Rebuild the dedup map from the surviving log.
        self._cid_index = {}
        for i, entry in enumerate(self.log):
            cid = getattr(entry.payload, "cid", None)
            if cid is not None:
                self._cid_index[cid] = self.log_base + i
        # No-op barrier: commits all prior-term entries once replicated.
        self._append_local(_Noop())
        self._broadcast_append()
        self._arm_heartbeat()

    def _adopt_term(self, term: int) -> None:
        self.current_term = term
        self.voted_for = None
        was_leader = self.role == "leader"
        self.role = "follower"
        if self.leader_hint == self.node:
            self.leader_hint = None  # never advertise ourselves once deposed
        self._persist()
        if was_leader and self._hb_timer is not None:
            self._hb_timer.cancel()
        self._arm_election_timer()

    # ------------------------------------------------------------------
    # Replication (leader side)
    # ------------------------------------------------------------------

    def _arm_heartbeat(self) -> None:
        if self._hb_timer is not None:
            self._hb_timer.cancel()
        self._hb_timer = self.set_timer(
            self.params.heartbeat_interval, self._heartbeat_tick, label="raft-hb"
        )

    def _heartbeat_tick(self) -> None:
        if self.role != "leader":
            return
        self._broadcast_append()
        self._arm_heartbeat()

    def _append_local(self, payload: Any) -> int:
        entry = RaftEntry(self.current_term, payload)
        self.log.append(entry)
        index = self.last_log_index
        self.match_index[self.node] = index
        cid = getattr(payload, "cid", None)
        if cid is not None:
            self._cid_index[cid] = index
        if isinstance(payload, ReconfigCommand):
            self._recompute_config()
            self._on_config_changed_as_leader()
        self._persist()
        return index

    def _on_config_changed_as_leader(self) -> None:
        for peer in self.config:
            if peer not in self.next_index:
                self.next_index[peer] = self.last_log_index + 1
                self.match_index[peer] = 0

    def _broadcast_append(self) -> None:
        for peer in self.config:
            if peer != self.node:
                self._send_append(peer)

    def _send_append(self, peer: NodeId) -> None:
        next_index = self.next_index.get(peer, self.last_log_index + 1)
        if next_index <= self.snap_index:
            self._send_snapshot(peer)
            return
        prev_index = next_index - 1
        prev_term = self.term_at(prev_index)
        if prev_term is None:
            self._send_snapshot(peer)
            return
        end = min(self.last_log_index, next_index + self.params.max_entries_per_append - 1)
        entries = tuple(self.entry_at(i) for i in range(next_index, end + 1))
        size = self.params.protocol_overhead_bytes + sum(
            _payload_size(e.payload) for e in entries
        )
        self.send(
            peer,
            AppendEntries(
                self.current_term, self.node, prev_index, prev_term, entries,
                self.commit_index,
            ),
            size=size,
        )

    def _send_snapshot(self, peer: NodeId) -> None:
        if self.snap_data is None:
            # Nothing compacted yet: capture the applied prefix on demand.
            self._compact(force=True)
            if self.snap_data is None:
                return  # nothing applied yet; plain appends will do
        size = self.state.snapshot_bytes()
        self.send(
            peer,
            InstallSnapshot(
                self.current_term, self.node, self.snap_index, self.snap_term,
                self.snap_config or self.config, deepcopy(self.snap_data), size,
            ),
            size=size + self.params.protocol_overhead_bytes,
        )

    def _handle_append_reply(self, msg: AppendReply, sender: NodeId) -> None:
        if msg.term > self.current_term:
            self._adopt_term(msg.term)
            return
        if self.role != "leader" or msg.term != self.current_term:
            return
        if msg.success:
            self.match_index[sender] = max(self.match_index.get(sender, 0), msg.match_index)
            self.next_index[sender] = self.match_index[sender] + 1
            self._advance_commit()
            if self.next_index[sender] <= self.last_log_index:
                self._send_append(sender)  # keep streaming a lagging peer
        else:
            self.next_index[sender] = max(1, min(
                msg.conflict_index, self.next_index.get(sender, 2) - 1
            ))
            self._send_append(sender)

    def _handle_snapshot_reply(self, msg: InstallSnapshotReply, sender: NodeId) -> None:
        if msg.term > self.current_term:
            self._adopt_term(msg.term)
            return
        if self.role != "leader":
            return
        self.match_index[sender] = max(self.match_index.get(sender, 0), msg.match_index)
        self.next_index[sender] = self.match_index[sender] + 1
        self._send_append(sender)

    def _advance_commit(self) -> None:
        for candidate in range(self.last_log_index, self.commit_index, -1):
            if self.term_at(candidate) != self.current_term:
                break  # only current-term entries commit by counting
            votes = sum(
                1
                for peer in self.config
                if self.match_index.get(peer, 0) >= candidate
            )
            if votes >= self.config.quorum_size:
                self.commit_index = candidate
                self._apply_committed()
                break

    # ------------------------------------------------------------------
    # Replication (follower side)
    # ------------------------------------------------------------------

    def _handle_append_entries(self, msg: AppendEntries, sender: NodeId) -> None:
        if msg.term < self.current_term:
            self.send(
                sender,
                AppendReply(self.current_term, False, 0, self.last_log_index + 1),
                size=self.params.protocol_overhead_bytes,
            )
            return
        if msg.term > self.current_term or self.role != "follower":
            self._adopt_term(msg.term)
        self.leader_hint = msg.leader
        self._last_leader_contact = self.now
        self._arm_election_timer()

        if msg.prev_log_index > self.last_log_index:
            self.send(
                sender,
                AppendReply(self.current_term, False, 0, self.last_log_index + 1),
                size=self.params.protocol_overhead_bytes,
            )
            return
        local_prev_term = self.term_at(msg.prev_log_index)
        if local_prev_term is None:
            # prev is inside our compacted region: everything up to
            # snap_index is known good; ask the leader to resume there.
            self.send(
                sender,
                AppendReply(self.current_term, False, 0, self.snap_index + 1),
                size=self.params.protocol_overhead_bytes,
            )
            return
        if local_prev_term != msg.prev_log_term:
            # Back up to the start of the conflicting term.
            conflict = msg.prev_log_index
            while (
                conflict - 1 >= self.log_base
                and self.term_at(conflict - 1) == local_prev_term
            ):
                conflict -= 1
            del self.log[msg.prev_log_index - self.log_base:]
            self._recompute_config()
            self._persist()
            self.send(
                sender,
                AppendReply(self.current_term, False, 0, conflict),
                size=self.params.protocol_overhead_bytes,
            )
            return

        changed = False
        for offset, entry in enumerate(msg.entries):
            index = msg.prev_log_index + 1 + offset
            if index <= self.snap_index:
                continue  # already covered by our snapshot
            if index <= self.last_log_index:
                if self.entry_at(index).term != entry.term:
                    del self.log[index - self.log_base:]
                    self.log.append(entry)
                    changed = True
            else:
                self.log.append(entry)
                changed = True
        if changed:
            self._recompute_config()
            self._persist()
            self._arm_election_timer()

        match = msg.prev_log_index + len(msg.entries)
        if msg.leader_commit > self.commit_index:
            self.commit_index = min(msg.leader_commit, self.last_log_index)
            self._apply_committed()
        self.send(
            sender,
            AppendReply(self.current_term, True, match, 0),
            size=self.params.protocol_overhead_bytes,
        )

    def _handle_install_snapshot(self, msg: InstallSnapshot, sender: NodeId) -> None:
        if msg.term < self.current_term:
            self.send(
                sender,
                InstallSnapshotReply(self.current_term, 0),
                size=self.params.protocol_overhead_bytes,
            )
            return
        if msg.term > self.current_term or self.role != "follower":
            self._adopt_term(msg.term)
        self.leader_hint = msg.leader
        self._last_leader_contact = self.now
        self._arm_election_timer()
        if msg.last_index > self.snap_index:
            self.snap_index = msg.last_index
            self.snap_term = msg.last_term
            self.snap_config = msg.config
            self.snap_data = msg.snapshot
            # Keep any log suffix that extends past the snapshot.
            if self.last_log_index > msg.last_index and self.term_at(msg.last_index) == msg.last_term:
                self.log = self.log[msg.last_index + 1 - self.log_base:]
            else:
                self.log = []
            self.log_base = msg.last_index + 1
            self.state = DedupStateMachine(self.app_factory())
            self.state.restore(msg.snapshot)
            self.commit_index = max(self.commit_index, msg.last_index)
            self.last_applied = msg.last_index
            self._recompute_config()
            self._persist()
            self.trace("raft-snapshot-installed", upto=msg.last_index)
        self.send(
            sender,
            InstallSnapshotReply(self.current_term, self.snap_index),
            size=self.params.protocol_overhead_bytes,
        )

    # ------------------------------------------------------------------
    # Apply & compaction
    # ------------------------------------------------------------------

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            if self.last_applied < self.log_base:
                continue  # covered by an installed snapshot
            entry = self.entry_at(self.last_applied)
            payload = entry.payload
            value: Any = None
            if isinstance(payload, Command):
                value = self.state.apply(payload)
                self._complete(payload.cid, value)
            elif isinstance(payload, ReconfigCommand):
                self.applied_config = payload.new_members
                value = f"config:{payload.new_members}"
                self._complete(payload.cid, value)
                if self.role == "leader" and self.node not in payload.new_members:
                    # The removed-leader rule: finish committing the change,
                    # then step aside.
                    self.role = "follower"
                    self.leader_hint = None
                    if self._hb_timer is not None:
                        self._hb_timer.cancel()
            self.committed.append((payload, entry.term, self.last_applied))
            if self.commit_listener is not None:
                self.commit_listener(
                    self.now, payload, entry.term, self.last_applied, value
                )
        self._maybe_compact()

    def _complete(self, cid: CommandId, value: Any) -> None:
        self._replies[cid] = (value, self.current_term, self.last_applied)
        client = self._pending.pop(cid, None)
        if client is not None:
            self.send(
                client,
                ClientReply(cid, value, self.current_term, self.last_applied),
                size=128,
            )

    def _maybe_compact(self) -> None:
        if self.last_applied - (self.log_base - 1) >= self.params.compaction_threshold:
            self._compact()

    def _compact(self, force: bool = False) -> None:
        if self.last_applied <= self.snap_index:
            return
        if not force and self.last_applied - (self.log_base - 1) < 2:
            return
        term = self.term_at(self.last_applied)
        if term is None:
            return
        self.snap_data = self.state.snapshot()
        self.snap_term = term
        self.snap_config = self.applied_config
        cut = self.last_applied + 1 - self.log_base
        self.log = self.log[cut:]
        self.snap_index = self.last_applied
        self.log_base = self.last_applied + 1
        self._persist()
        self.trace("raft-compact", upto=self.snap_index)

    # ------------------------------------------------------------------
    # Clients & reconfiguration
    # ------------------------------------------------------------------

    def _handle_client_request(self, request: ClientRequest) -> None:
        command = request.command
        cached = self._replies.get(command.cid)
        if cached is not None:
            value, term, index = cached
            self.send(request.reply_to, ClientReply(command.cid, value, term, index), size=128)
            return
        if self.role != "leader":
            members = (
                Membership(frozenset({self.leader_hint}))
                if self.leader_hint is not None
                else self.config
            )
            self.send(
                request.reply_to,
                Redirect(command.cid, members, self.current_term),
                size=128,
            )
            return
        self._pending[command.cid] = request.reply_to
        existing = self._cid_index.get(command.cid)
        if existing is None:
            self._append_local(command)
        self._broadcast_append()
        if len(self.config) == 1:
            self.commit_index = self.last_log_index
            self._apply_committed()

    def request_reconfiguration(self, command: ReconfigCommand) -> bool:
        """Submit a membership change (must be a single-server change)."""
        if self.role != "leader":
            return False
        if command.cid in self._cid_index or command.cid in self._replies:
            return True
        delta = len(
            self.config.nodes.symmetric_difference(command.new_members.nodes)
        )
        if delta > 1:
            raise ProtocolError(
                "Raft membership changes must add or remove a single server; "
                "decompose larger changes (see RaftService.reconfigure)"
            )
        self._append_local(command)
        self._broadcast_append()
        if len(self.config) == 1 and self.node in self.config:
            self.commit_index = self.last_log_index
            self._apply_committed()
        return True

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def on_message(self, payload: Any, sender: NodeId) -> None:
        if isinstance(payload, AppendEntries):
            self._handle_append_entries(payload, sender)
        elif isinstance(payload, AppendReply):
            self._handle_append_reply(payload, sender)
        elif isinstance(payload, RequestVote):
            self._handle_request_vote(payload, sender)
        elif isinstance(payload, VoteReply):
            self._handle_vote_reply(payload, sender)
        elif isinstance(payload, InstallSnapshot):
            self._handle_install_snapshot(payload, sender)
        elif isinstance(payload, InstallSnapshotReply):
            self._handle_snapshot_reply(payload, sender)
        elif isinstance(payload, ClientRequest):
            self._handle_client_request(payload)
