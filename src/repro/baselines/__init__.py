"""Baselines the paper's composition is measured against.

* :mod:`repro.baselines.stoptheworld` — the same composition with
  speculation disabled: a new instance may not order anything until the
  previous epoch's state has been fully transferred and executed locally.
  This is what a naive "wedge, copy, restart" reconfiguration does.
* :mod:`repro.baselines.raft` — a monolithic, natively-reconfigurable SMR
  in the Raft style (terms, randomized elections, log replication,
  single-server membership changes, snapshot-based catch-up). This is the
  design that dominates open-source systems and the natural "why not just
  build reconfiguration in?" comparator.
"""

from repro.baselines.raft import RaftParams, RaftReplica
from repro.baselines.raft_service import RaftService
from repro.baselines.stoptheworld import stop_the_world_params, StopTheWorldService

__all__ = [
    "RaftParams",
    "RaftReplica",
    "RaftService",
    "StopTheWorldService",
    "stop_the_world_params",
]
