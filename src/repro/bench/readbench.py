"""T15 read-path benchmark: ordered vs lease vs follower reads, live.

Every cell launches a real 3-replica :class:`LocalCluster` with durable
storage (fsync ON — the production configuration) and drives a 95/5
read/write mix through a pipelined client. The headline pair holds the
server at its *default* commit configuration (no batching — batching is
an opt-in latency tradeoff) and varies only the read path:

* **ordered** — ``--read-mode log``: every ``get`` is a full consensus
  round: a Paxos slot, a WAL append, and its share of an fsync on a
  quorum before the reply (the pre-lease baseline);
* **lease** — ``--read-mode lease``: the leaseholding leader answers
  reads from local state — no slot, no WAL, no peer traffic
  (linearizable; see DESIGN's read-path safety argument).

Two informational arms complete the picture:

* **batched** — the same pair under the T14 batched commit path at a
  1024-deep window. Batching amortizes ordered reads into shared slots,
  closing most of the throughput gap — by buying it with batch-delay
  and queueing latency (compare the p50 columns). Lease reads need
  neither the concurrency nor the delay.
* **follower fan-out** — ``--read-mode follower``: every caught-up
  member answers reads locally within a staleness bound (bounded
  staleness, NOT linearizable), one pinned client per replica. On this
  1-CPU container clients and replicas time-share one core, so the cell
  measures overhead, not scale-out; re-run on a many-core box for the
  scale claim (same caveat as BENCH_shard.json).

After each cell the replicas' ``#metrics`` endpoints are polled so the
report shows *where* reads were served: ``smr.lease_reads`` /
``smr.follower_reads`` against the ordered ``paxos.decided`` slots. A
lease cell that silently fell back to the log path (fraction below 0.5)
fails the run rather than reporting a meaningless ratio.

Results land in ``BENCH_read.json``. Exit code is the gate: full runs
require lease reads >= 5x the same-config ordered baseline at the 95/5
mix; smoke runs (CI) require >= 3x.

Run via ``repro bench read [--smoke]``.
"""

from __future__ import annotations

import json
import os
import platform
import random
import threading
import time
from typing import Any

from repro.metrics import Table, percentile, summarize_throughput

#: read fraction of the workload mix (the ROADMAP's read-heavy regime).
READ_RATIO = 0.95
#: distinct keys touched by the mix (preloaded before measurement).
KEYS = 256
#: commit-path settings for the *batched* informational cells (the
#: BENCH_commit winners). The headline cells run the serve defaults:
#: no batching, unbounded engine window.
BATCH_DELAY_MS = 2.0
BATCH_MAX = 256
ENGINE_WINDOW = 16
#: follower cells refuse local reads after this much leader silence (ms).
STALENESS_MS = 500.0
#: lease cells run a 400ms lease under a 600ms suspicion floor: on one
#: busy core the event loop can sit on heartbeat echoes for ~100ms, and
#: a lease short enough to lapse in that gap silently degrades the cell
#: to the log path (the local_read_fraction gate below catches that).
#: Longer suspicion = slower failover; the chaos suite covers failover
#: at the tight default timing, this bench covers steady-state reads.
LEASE_MS = 400.0
SUSPECT_MS = 600.0


def _cells(smoke: bool, window_override: int | None) -> list[dict[str, Any]]:
    """The sweep grid. Labels are stable: gates reference them by name."""

    def cell(label: str, *, read_mode: str, batch: bool, fanout: bool,
             window: int, ops: int, smoke_ops: int) -> dict[str, Any]:
        return {
            "label": label, "read_mode": read_mode, "batch": batch,
            "fanout": fanout,
            "window": window_override if window_override else window,
            "ops": smoke_ops if smoke else ops,
        }

    grid = [
        # The headline pair: serve-default commit path, identical config,
        # only the read path differs.
        cell("ordered-95r", read_mode="log", batch=False, fanout=False,
             window=32, ops=1500, smoke_ops=300),
        cell("lease-95r", read_mode="lease", batch=False, fanout=False,
             window=32, ops=8000, smoke_ops=1200),
        # Informational: the T14 batched commit path at a deep window.
        cell("ordered-batched-95r", read_mode="log", batch=True,
             fanout=False, window=1024, ops=8000, smoke_ops=0),
        cell("lease-batched-95r", read_mode="lease", batch=True,
             fanout=False, window=1024, ops=12000, smoke_ops=0),
        # Informational: follower reads fanned out across all members.
        cell("follower-95r-fanout", read_mode="follower", batch=False,
             fanout=True, window=32, ops=6000, smoke_ops=0),
    ]
    return [c for c in grid if c["ops"] > 0]


def _mixed_ops(
    count: int, seed: int, offset: int = 0
) -> list[tuple[str, tuple[Any, ...], int]]:
    """A seeded 95/5 get/set mix over the preloaded keyspace."""
    rng = random.Random(seed)
    ops: list[tuple[str, tuple[Any, ...], int]] = []
    for i in range(count):
        key = f"key-{rng.randrange(KEYS)}"
        if rng.random() < READ_RATIO:
            ops.append(("get", (key,), 32))
        else:
            ops.append(("set", (key, offset + i), 64))
    return ops


def _run_cell(
    cell: dict[str, Any], *, seed: int, wire: str | None, rounds: int = 1
) -> dict[str, Any]:
    """One configuration, best of ``rounds`` fresh-cluster runs."""
    best: dict[str, Any] | None = None
    for attempt in range(max(1, rounds)):
        row = _run_cell_once(cell, seed=seed + attempt, wire=wire)
        if best is None or row["ops_per_s"] > best["ops_per_s"]:
            best = row
    assert best is not None
    return best


def _run_cell_once(
    cell: dict[str, Any], *, seed: int, wire: str | None
) -> dict[str, Any]:
    """One configuration: launch, preload, measure, poll metrics."""
    from repro.net.client import LiveClient
    from repro.net.cluster import LocalCluster
    from repro.net.observe import poll_cluster

    ops = cell["ops"]
    with LocalCluster(
        replicas=3, seed=seed, wire=wire,
        durable=True, fsync=True,
        batch_delay_ms=BATCH_DELAY_MS if cell["batch"] else 0.0,
        batch_max=BATCH_MAX,
        window=ENGINE_WINDOW if cell["batch"] else 0,
        uvloop="auto",
        read_mode=cell["read_mode"], lease_ms=LEASE_MS,
        suspect_ms=SUSPECT_MS, staleness_ms=STALENESS_MS,
    ) as cluster:
        cluster.start()
        with LiveClient(
            "bench-warm", cluster.addresses, view=cluster.initial,
            request_timeout=2.0, wire_format=wire,
        ) as warm:
            # Preload the keyspace (also settles the election and, in
            # lease mode, lets the first heartbeat echoes land).
            warm.submit_pipelined(
                [("set", (f"key-{i}", 0), 64) for i in range(KEYS)],
                window=256, deadline=60.0,
            )
            warm.submit_pipelined(
                [("get", (f"key-{i % KEYS}",), 32) for i in range(64)],
                window=64, deadline=30.0,
            )
        if cell["fanout"]:
            elapsed, latencies = _fanout_run(cluster, cell, seed, wire)
        else:
            with LiveClient(
                "bench", cluster.addresses, view=cluster.initial,
                request_timeout=2.0, wire_format=wire,
            ) as client:
                workload = _mixed_ops(ops, seed)
                start = time.perf_counter()
                latencies = client.submit_pipelined(
                    workload, window=cell["window"], deadline=180.0
                )
                elapsed = time.perf_counter() - start
        books = {n: cluster.addresses[n] for n in cluster.initial}
        fetched, _ = poll_cluster(books, wire_format=wire)

    counters = {"smr.lease_reads": 0, "smr.follower_reads": 0,
                "paxos.decided": 0, "wal.fsyncs": 0}
    for snap in fetched.values():
        for name in counters:
            counters[name] += int(snap.snapshot.counters.get(name, 0))

    reads = round(ops * READ_RATIO)
    local_reads = counters["smr.lease_reads"] + counters["smr.follower_reads"]
    ms = [lat * 1000.0 for lat in latencies]
    throughput = summarize_throughput(ops, elapsed)
    return {
        **{k: cell[k]
           for k in ("label", "read_mode", "batch", "fanout", "window", "ops")},
        "elapsed_s": round(elapsed, 4),
        "ops_per_s": round(throughput.ops_per_s, 1),
        "read_p50_ms": round(percentile(ms, 50), 3),
        "read_p99_ms": round(percentile(ms, 99), 3),
        "lease_reads": counters["smr.lease_reads"],
        "follower_reads": counters["smr.follower_reads"],
        "paxos_slots": counters["paxos.decided"],
        "wal_fsyncs": counters["wal.fsyncs"],
        # Fraction of issued reads the fast path actually served; the
        # preload/warmup also counts a few, so clamp at 1.0.
        "local_read_fraction": round(min(1.0, local_reads / reads), 3)
        if reads else 0.0,
    }


def _fanout_run(
    cluster: Any, cell: dict[str, Any], seed: int, wire: str | None
) -> tuple[float, list[float]]:
    """Follower scale-out arm: one pinned client per replica, in threads.

    Each client submits its own slice of the 95/5 mix against exactly one
    replica (single-node view, so redirects cannot re-aim it): reads are
    served locally wherever the replica is fresh; writes forward to the
    leader through the ordinary proposal route. Aggregate throughput is
    total ops over the slowest thread's wall clock.
    """
    from repro.net.client import LiveClient

    nodes = list(cluster.initial)
    per_node = cell["ops"] // len(nodes)
    latencies: list[list[float]] = [[] for _ in nodes]
    errors: list[BaseException] = []

    def drive(i: int, node: str) -> None:
        try:
            with LiveClient(
                f"bench-{node}", cluster.addresses, view=[node],
                request_timeout=2.0, wire_format=wire,
            ) as client:
                workload = _mixed_ops(per_node, seed + i, offset=i * per_node)
                latencies[i] = client.submit_pipelined(
                    workload, window=cell["window"], deadline=180.0
                )
        except BaseException as exc:  # noqa: BLE001 - reported by the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(i, node), daemon=True)
        for i, node in enumerate(nodes)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    cell["ops"] = per_node * len(nodes)  # integer-division truth
    return elapsed, [lat for per in latencies for lat in per]


def _render(results: dict[str, dict[str, Any]]) -> None:
    table = Table(
        "T15 live 3-replica read path at a 95/5 mix (fsync on)",
        ["cell", "ops", "ops/s", "p50 ms", "p99 ms",
         "local reads", "slots", "local frac"],
    )
    for row in results.values():
        table.add_row(
            row["label"], row["ops"], f"{row['ops_per_s']:.0f}",
            f"{row['read_p50_ms']:.2f}", f"{row['read_p99_ms']:.2f}",
            row["lease_reads"] + row["follower_reads"],
            row["paxos_slots"], f"{row['local_read_fraction']:.2f}",
        )
    print(table.render())
    print()


def _ratios(results: dict[str, dict[str, Any]]) -> dict[str, float]:
    """Headline ratios; 0.0 where a side of the comparison did not run."""

    def ops(label: str) -> float:
        row = results.get(label)
        return row["ops_per_s"] if row else 0.0

    ordered = ops("ordered-95r")
    lease = ops("lease-95r")
    ordered_batched = ops("ordered-batched-95r")
    lease_batched = ops("lease-batched-95r")
    follower = ops("follower-95r-fanout")
    lease_row = results.get("lease-95r")
    return {
        "lease_vs_ordered": round(lease / ordered, 3) if ordered else 0.0,
        "lease_vs_ordered_batched": (
            round(lease_batched / ordered_batched, 3) if ordered_batched
            else 0.0
        ),
        "follower_vs_ordered": round(follower / ordered, 3) if ordered else 0.0,
        "ordered_ops_s": round(ordered, 1),
        "lease_ops_s": round(lease, 1),
        "lease_read_fraction": (
            lease_row["local_read_fraction"] if lease_row else 0.0
        ),
    }


def run_read_bench(
    smoke: bool = False,
    out: str = "BENCH_read.json",
    seed: int = 42,
    wire: str | None = None,
    window: int | None = None,
) -> int:
    """Run the read-path sweep; returns a gate exit code."""
    mode = "smoke" if smoke else "full"
    cpus = os.cpu_count() or 1
    print(f"T15 read-path benchmark ({mode}, seed={seed}, cpus={cpus})")
    results: dict[str, dict[str, Any]] = {}
    rounds = 2  # best-of-2: 1-CPU scheduling noise must not own the gate
    for cell in _cells(smoke, window):
        print(f"  cell {cell['label']}: {cell['ops']} ops at "
              f"{READ_RATIO:.0%} reads, window {cell['window']}, "
              f"best of {rounds} ...", flush=True)
        results[cell["label"]] = _run_cell(
            cell, seed=seed, wire=wire, rounds=rounds
        )
    _render(results)
    ratios = _ratios(results)

    report = {
        "bench": "T15-read",
        "mode": mode,
        "seed": seed,
        "cpus": cpus,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "wire": wire or "binary",
        "read_ratio": READ_RATIO,
        "keys": KEYS,
        "staleness_ms": STALENESS_MS,
        "batch_delay_ms": BATCH_DELAY_MS,
        "batch_max": BATCH_MAX,
        "engine_window": ENGINE_WINDOW,
        "cells": results,
        "ratios": ratios,
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    print(f"lease over ordered {ratios['lease_vs_ordered']:.2f}x "
          f"({ratios['lease_ops_s']:.0f} vs {ratios['ordered_ops_s']:.0f} "
          f"ops/s at the serve-default commit path; lease served "
          f"{ratios['lease_read_fraction']:.0%} of reads locally); "
          f"batched arms {ratios['lease_vs_ordered_batched']:.2f}x, "
          f"follower fan-out {ratios['follower_vs_ordered']:.2f}x")
    if cpus < 4 and "follower-95r-fanout" in results:
        print(f"note: {cpus} cpu(s) — the follower fan-out cell "
              "time-shares one core and measures overhead, not "
              "scale-out; re-run on a many-core box for the scale claim")

    failures: list[str] = []
    if ratios["lease_read_fraction"] < 0.5:
        failures.append(
            f"lease cell served only {ratios['lease_read_fraction']:.0%} "
            "of reads via the lease (floor 50%) — the ratio below "
            "would be measuring the log path, not the lease"
        )
    floor = 3.0 if smoke else 5.0
    if ratios["lease_vs_ordered"] < floor:
        failures.append(
            f"lease reads are only {ratios['lease_vs_ordered']:.2f}x the "
            f"ordered baseline at the {READ_RATIO:.0%} read mix "
            f"(floor {floor:g}x for a {mode} run)"
        )
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0
