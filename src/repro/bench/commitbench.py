"""T14 commit-path benchmark: batching x fsync x window, live and durable.

Every cell launches a real 3-replica :class:`LocalCluster` with durable
storage and drives it with a pipelined client, varying the three
commit-path levers this campaign added:

* **batching** — leader-side command batching (``--batch-delay 2ms``,
  ``--batch-max 256``) plus a bounded proposer pipeline window, vs the
  one-command-one-instance baseline;
* **fsync** — WAL appends forced to media (group-committed: one fsync
  per inbound dispatch window) vs flush-to-kernel only;
* **window** — the client pipelining window (how much concurrency the
  workload offers; batching can only amortize what arrives together).

After each cell the replicas' ``#metrics`` endpoints are polled, so the
report shows *why* a cell is fast: WAL fsyncs per committed op (group
commit amortization) and Paxos slots per op (batch amortization).

Results land in ``BENCH_commit.json`` — the committed trajectory every
later commit-path change is gated against. Exit code is the regression
gate: full runs enforce the acceptance bar (best batched fsync-on cell
at >= 4x the BENCH_wire.json 2,625 ops/s baseline; fsync within 2x of
no-fsync), smoke runs fail only when *both* the batched/unbatched ratio
and the absolute batched fsync-on throughput fall below 0.9x the
committed baseline (single-signal dips are noise, not regressions).

Run via ``repro bench commit [--smoke]``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any

from repro.metrics import Table, percentile, summarize_throughput

#: the live commit throughput recorded in BENCH_wire.json (binary codec,
#: window 32, no batching, no durability) — the floor this campaign is
#: measured against.
WIRE_BASELINE_OPS_S = 2625.0

#: batch flush-latency bound used by every batched cell, in ms.
BATCH_DELAY_MS = 2.0
#: leader batch size cap. The sweep winner: at 1024-deep client windows
#: the leader drains ~200-command batches, so a 32-cap would fragment
#: them into many slots for no benefit.
BATCH_MAX = 256
#: proposer pipeline window used by every batched cell.
ENGINE_WINDOW = 16


def _cells(smoke: bool, window_override: int | None) -> list[dict[str, Any]]:
    """The sweep grid. Labels are stable: the smoke gate and later PRs
    reference them by name."""

    def cell(label: str, *, batch: bool, fsync: bool, window: int,
             ops: int, smoke_ops: int) -> dict[str, Any]:
        return {
            "label": label, "batch": batch, "fsync": fsync,
            "window": window_override if window_override else window,
            "ops": smoke_ops if smoke else ops,
        }

    grid = [
        cell("unbatched-fsync", batch=False, fsync=True, window=32,
             ops=1200, smoke_ops=200),
        cell("batched-fsync-w256", batch=True, fsync=True, window=256,
             ops=6000, smoke_ops=0),
        cell("batched-fsync-w1024", batch=True, fsync=True, window=1024,
             ops=12000, smoke_ops=600),
        cell("batched-nofsync-w1024", batch=True, fsync=False, window=1024,
             ops=12000, smoke_ops=0),
        cell("unbatched-nofsync", batch=False, fsync=False, window=32,
             ops=1200, smoke_ops=0),
    ]
    return [c for c in grid if c["ops"] > 0]


def _run_cell(
    cell: dict[str, Any], *, seed: int, wire: str | None, rounds: int = 1
) -> dict[str, Any]:
    """One configuration, best of ``rounds`` fresh-cluster runs.

    Throughput cells on a 1-CPU box are exposed to scheduling and fsync
    noise an entire run long; the max over independent rounds estimates
    the configuration's capability rather than the noisiest window.
    """
    best: dict[str, Any] | None = None
    for attempt in range(max(1, rounds)):
        row = _run_cell_once(cell, seed=seed + attempt, wire=wire)
        if best is None or row["ops_per_s"] > best["ops_per_s"]:
            best = row
    assert best is not None
    return best


def _run_cell_once(
    cell: dict[str, Any], *, seed: int, wire: str | None
) -> dict[str, Any]:
    """One configuration: launch, warm up, measure, poll metrics."""
    from repro.net.client import LiveClient
    from repro.net.cluster import LocalCluster
    from repro.net.observe import poll_cluster

    ops = cell["ops"]
    warmup = max(20, ops // 20)
    with LocalCluster(
        replicas=3, seed=seed, wire=wire,
        durable=True, fsync=cell["fsync"],
        batch_delay_ms=BATCH_DELAY_MS if cell["batch"] else 0.0,
        batch_max=BATCH_MAX,
        window=ENGINE_WINDOW if cell["batch"] else 0,
        uvloop="auto",
    ) as cluster:
        cluster.start()
        with LiveClient(
            "bench", cluster.addresses, view=cluster.initial,
            request_timeout=2.0, wire_format=wire,
        ) as client:
            client.submit_pipelined(
                [("set", (f"warm-{i}", i), 64) for i in range(warmup)],
                window=cell["window"], deadline=60.0,
            )
            workload = [("set", (f"key-{i % 256}", i), 64) for i in range(ops)]
            start = time.perf_counter()
            latencies = client.submit_pipelined(
                workload, window=cell["window"], deadline=180.0
            )
            elapsed = time.perf_counter() - start
        books = {n: cluster.addresses[n] for n in cluster.initial}
        fetched, _ = poll_cluster(books, wire_format=wire)

    counters = {"wal.fsyncs": 0, "wal.appends": 0, "paxos.decided": 0}
    batch_means: list[float] = []
    group_means: list[float] = []
    for snap in fetched.values():
        for name in counters:
            counters[name] += int(snap.snapshot.counters.get(name, 0))
        hists = snap.snapshot.histograms
        for hist_name, sink in (("paxos.batch_size", batch_means),
                                ("wal.group_commit_size", group_means)):
            summary = hists.get(hist_name)
            if summary and summary["count"]:
                sink.append(summary["mean"])

    ms = [lat * 1000.0 for lat in latencies]
    throughput = summarize_throughput(ops, elapsed)
    return {
        **{k: cell[k] for k in ("label", "batch", "fsync", "window", "ops")},
        "elapsed_s": round(elapsed, 4),
        "ops_per_s": round(throughput.ops_per_s, 1),
        "p50_ms": round(percentile(ms, 50), 3),
        "p99_ms": round(percentile(ms, 99), 3),
        "wal_fsyncs": counters["wal.fsyncs"],
        "wal_appends": counters["wal.appends"],
        "paxos_slots": counters["paxos.decided"],
        "fsyncs_per_op": round(counters["wal.fsyncs"] / ops, 3),
        "slots_per_op": round(counters["paxos.decided"] / ops, 3),
        "mean_batch": round(max(batch_means, default=0.0), 2),
        "mean_group_commit": round(max(group_means, default=0.0), 2),
    }


def _render(results: dict[str, dict[str, Any]]) -> None:
    table = Table(
        "T14 live 3-replica durable commit path (batching x fsync x window)",
        ["cell", "ops", "ops/s", "p50 ms", "p99 ms",
         "fsync/op", "slots/op", "batch", "grp-commit"],
    )
    for row in results.values():
        table.add_row(
            row["label"], row["ops"], f"{row['ops_per_s']:.0f}",
            f"{row['p50_ms']:.2f}", f"{row['p99_ms']:.2f}",
            f"{row['fsyncs_per_op']:.2f}", f"{row['slots_per_op']:.2f}",
            f"{row['mean_batch']:.1f}", f"{row['mean_group_commit']:.1f}",
        )
    print(table.render())
    print()


def _ratios(results: dict[str, dict[str, Any]]) -> dict[str, float]:
    """Headline ratios; 0.0 where a side of the comparison did not run."""

    def ops(label: str) -> float:
        row = results.get(label)
        return row["ops_per_s"] if row else 0.0

    best_fsync_on = max(
        (r["ops_per_s"] for r in results.values() if r["batch"] and r["fsync"]),
        default=0.0,
    )
    unbatched = ops("unbatched-fsync")
    nofsync = ops("batched-nofsync-w1024")
    batched_deep = ops("batched-fsync-w1024")
    return {
        "batching": round(best_fsync_on / unbatched, 3) if unbatched else 0.0,
        "fsync_cost": round(nofsync / batched_deep, 3) if batched_deep else 0.0,
        "vs_wire_baseline": round(best_fsync_on / WIRE_BASELINE_OPS_S, 3),
        "best_fsync_on_ops_s": round(best_fsync_on, 1),
    }


def _load_baseline(path: str) -> tuple[float, float] | None:
    """The committed baseline's (batching ratio, best fsync-on ops/s)."""
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
        return (
            float(report["ratios"]["batching"]),
            float(report["ratios"]["best_fsync_on_ops_s"]),
        )
    except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
        return None


def run_commit_bench(
    smoke: bool = False,
    out: str = "BENCH_commit.json",
    seed: int = 42,
    baseline: str = "BENCH_commit.json",
    wire: str | None = None,
    window: int | None = None,
) -> int:
    """Run the commit-path sweep; returns a regression-gate exit code."""
    mode = "smoke" if smoke else "full"
    cpus = os.cpu_count() or 1
    print(f"T14 commit-path benchmark ({mode}, seed={seed}, cpus={cpus})")
    results: dict[str, dict[str, Any]] = {}
    # Best-of-2 everywhere: cells on a 1-CPU box see fsync-latency and
    # scheduling regimes that vary run to run, and a gate hostage to one
    # bad round helps nobody. Smoke cells are small, so the second round
    # is cheap.
    rounds = 2
    for cell in _cells(smoke, window):
        print(f"  cell {cell['label']}: {cell['ops']} ops, "
              f"window {cell['window']}, best of {rounds} ...", flush=True)
        results[cell["label"]] = _run_cell(
            cell, seed=seed, wire=wire, rounds=rounds
        )
    _render(results)
    ratios = _ratios(results)

    report = {
        "bench": "T14-commit",
        "mode": mode,
        "seed": seed,
        "cpus": cpus,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "wire": wire or "binary",
        "wire_baseline_ops_s": WIRE_BASELINE_OPS_S,
        "batch_delay_ms": BATCH_DELAY_MS,
        "batch_max": BATCH_MAX,
        "engine_window": ENGINE_WINDOW,
        "cells": results,
        "ratios": ratios,
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    print(f"batching {ratios['batching']:.2f}x, "
          f"no-fsync over fsync {ratios['fsync_cost']:.2f}x, "
          f"best fsync-on cell {ratios['best_fsync_on_ops_s']:.0f} ops/s "
          f"({ratios['vs_wire_baseline']:.2f}x the wire baseline)")

    failures: list[str] = []
    if smoke:
        committed = _load_baseline(baseline)
        if committed is None:
            print(f"note: no committed baseline at {baseline}; "
                  "smoke ratio gate skipped")
        else:
            # A real regression degrades both the batching ratio and the
            # absolute batched fsync-on throughput; requiring both below
            # 0.9x keeps the gate immune to single-cell noise (a fast
            # unbatched denominator run shrinks the ratio while batched
            # throughput *improves* — that must not fail CI).
            base_ratio, base_ops = committed
            ratio_low = ratios["batching"] < 0.9 * base_ratio
            ops_low = ratios["best_fsync_on_ops_s"] < 0.9 * base_ops
            if ratio_low and ops_low:
                failures.append(
                    f"batching ratio {ratios['batching']:.2f}x and batched "
                    f"fsync-on throughput {ratios['best_fsync_on_ops_s']:.0f} "
                    f"ops/s both fell below 0.9x the committed baseline "
                    f"({base_ratio:.2f}x, {base_ops:.0f} ops/s)"
                )
            elif ratio_low or ops_low:
                print("note: one smoke signal below 0.9x baseline "
                      f"(ratio {ratios['batching']:.2f}x vs {base_ratio:.2f}x, "
                      f"ops {ratios['best_fsync_on_ops_s']:.0f} vs "
                      f"{base_ops:.0f}); passing — both must degrade to fail")
    else:
        if ratios["vs_wire_baseline"] < 4.0:
            failures.append(
                f"best batched fsync-on cell is only "
                f"{ratios['vs_wire_baseline']:.2f}x the "
                f"{WIRE_BASELINE_OPS_S:.0f} ops/s wire baseline (floor 4x)"
            )
        if ratios["fsync_cost"] > 2.0:
            failures.append(
                f"fsync costs {ratios['fsync_cost']:.2f}x "
                "(no-fsync over fsync; ceiling 2x)"
            )
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0
