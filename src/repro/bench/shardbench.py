"""T13 shard benchmark: aggregate throughput vs group count, plus safety.

Two measurements, written together to ``BENCH_shard.json``:

* **scale sweep** — for each group count N, a :class:`ShardedCluster` of
  N real 3-replica groups behind one shard map, driven by a single
  :class:`ShardClient` pipelining a fixed workload (the client partitions
  ops by group and drives every group from its own thread, so the groups
  commit in parallel). Reports aggregate committed ops/s, p50/p99 client
  latency, and the key spread.
* **split under load** — the T13 scenario: a drain-and-cutover split
  while concurrent clients keep writing, with the merged history checked
  by the Wing & Gong oracle. The benchmark records the verdict; a
  non-linearizable run fails the gate unconditionally.

Honesty note on scaling: N groups of 3 replicas is ``3N + 1`` Python
processes plus the driving client. Near-linear scaling needs at least one
core per replica; on the 1-CPU containers this repo is usually built in,
every group timeslices the same core and aggregate throughput stays
roughly flat (the sweep then measures sharding *overhead*, which has its
own floor gate). The report records ``cpus`` and the speedup gate arms
itself only when ``cpus >= 2 * max(group_counts)``.

Run via ``repro bench shard [--smoke] [--groups 1,2,4]``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any

from repro.metrics import Table, percentile, summarize_throughput

#: Speedup gates only arm with enough cores to actually run groups in
#: parallel; below this the sweep degrades into an overhead measurement.
MIN_CPUS_PER_GROUP = 2


def bench_scale(
    seed: int,
    smoke: bool,
    wire: str | None,
    group_counts: tuple[int, ...],
) -> dict[str, Any]:
    """Aggregate pipelined throughput through N groups, for each N."""
    from repro.shard.cluster import ShardedCluster

    ops = 240 if smoke else 1200
    warmup = 16 if smoke else 64
    window = 32
    results: dict[str, Any] = {"ops": ops, "window": window, "by_groups": {}}
    for count in group_counts:
        with ShardedCluster(
            count, replicas_per_group=3, seed=seed, wire=wire
        ) as cluster:
            cluster.start()
            with cluster.client(f"bench-{count}") as client:
                client.submit_pipelined(
                    [("set", (f"warm-{i}", i), 64) for i in range(warmup)],
                    window=window,
                )
                workload = [
                    ("set", (f"key-{i % 256}", i), 64) for i in range(ops)
                ]
                start = time.perf_counter()
                latencies = client.submit_pipelined(workload, window=window)
                elapsed = time.perf_counter() - start
                spread = client.shard_map.spread(
                    [f"key-{i}" for i in range(256)]
                )
        ms = [lat * 1000.0 for lat in latencies]
        throughput = summarize_throughput(ops, elapsed)
        results["by_groups"][str(count)] = {
            "groups": count,
            "replicas": 3 * count,
            "elapsed_s": round(elapsed, 4),
            "ops_per_s": round(throughput.ops_per_s, 1),
            "p50_ms": round(percentile(ms, 50), 3),
            "p99_ms": round(percentile(ms, 99), 3),
            "spread": dict(sorted(spread.items())),
        }
    base = results["by_groups"][str(group_counts[0])]["ops_per_s"]
    for count in group_counts:
        row = results["by_groups"][str(count)]
        row["speedup"] = round(row["ops_per_s"] / base, 3) if base else 0.0
    return results


def bench_split(seed: int, smoke: bool, wire: str | None) -> dict[str, Any]:
    """Split-under-load linearizability cell (the T13 scenario)."""
    from repro.shard.scenario import run_split_scenario

    report = run_split_scenario(
        groups=2 if smoke else 3,
        replicas_per_group=3,
        clients=2 if smoke else 3,
        keys=12 if smoke else 24,
        seed=seed,
        wire=wire,
        settle=0.6,
    )
    for line in report.lines():
        print(f"  {line}")
    return {
        "groups": report.groups,
        "clients": report.clients,
        "elapsed_s": round(report.elapsed, 2),
        "version_before": report.version_before,
        "version_after": report.version_after,
        "moved": list(report.moved) if report.moved else None,
        "ops_total": report.ops_total,
        "ops_pending": report.ops_pending,
        "linearizable": bool(report.linearizable and report.linearizable.ok),
        "checked_ops": report.linearizable.checked_ops
        if report.linearizable
        else 0,
        "errors": list(report.errors),
        "ok": report.ok,
    }


def _render(scale: dict[str, Any], split: dict[str, Any] | None) -> None:
    table = Table(
        "T13 shard scale sweep (pipelined client, 3 replicas/group)",
        ["groups", "procs", "ops", "ops/s", "speedup", "p50 ms", "p99 ms"],
    )
    for row in scale["by_groups"].values():
        table.add_row(
            row["groups"], row["replicas"], scale["ops"],
            f"{row['ops_per_s']:.0f}", f"{row['speedup']:.2f}x",
            f"{row['p50_ms']:.2f}", f"{row['p99_ms']:.2f}",
        )
    print(table.render())
    print()
    if split is None:
        return
    verdict = "LINEARIZABLE" if split["linearizable"] else "VIOLATION"
    print(
        f"split under load: map v{split['version_before']} -> "
        f"v{split['version_after']}, "
        f"{split['ops_total'] - split['ops_pending']} ops checked, {verdict}"
    )
    print()


def run_shard_bench(
    smoke: bool = False,
    out: str = "BENCH_shard.json",
    seed: int = 42,
    wire: str | None = None,
    group_counts: tuple[int, ...] | None = None,
) -> int:
    """Run the shard benchmark; returns a regression-gate exit code.

    Unconditional gates: every cell commits its full workload, the split
    stays linearizable, and sharding overhead stays bounded — aggregate
    throughput must hold a floor fraction of the single-group rate at the
    largest group count the machine can host without extreme
    oversubscription (``N <= 2 * cpus``; beyond that the cell measures
    the scheduler, so it is recorded but not gated). The *speedup* gate —
    aggregate >= half the group count — only arms when the machine has at
    least ``MIN_CPUS_PER_GROUP`` cores per group.
    """
    if group_counts is None:
        group_counts = (1, 3) if smoke else (1, 2, 4, 8)
    group_counts = tuple(sorted(set(group_counts)))
    cpus = os.cpu_count() or 1
    mode = "smoke" if smoke else "full"
    print(f"T13 shard benchmark ({mode}, seed={seed}, cpus={cpus}, "
          f"groups={','.join(map(str, group_counts))})")
    scale = bench_scale(seed, smoke, wire, group_counts)
    split = bench_split(seed, smoke, wire)
    _render(scale, split)

    top = max(group_counts)
    speedup_armed = cpus >= MIN_CPUS_PER_GROUP * top
    hostable = [n for n in group_counts if n <= 2 * cpus]
    gate_count = max(hostable) if hostable else min(group_counts)
    report = {
        "bench": "T13-shard",
        "mode": mode,
        "seed": seed,
        "cpus": cpus,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "group_counts": list(group_counts),
        "speedup_gate_armed": speedup_armed,
        "overhead_gate_groups": gate_count,
        "scale": scale,
        "split": split,
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")

    overhead_floor = 0.5 if smoke else 0.8
    failures: list[str] = []
    gate_row = scale["by_groups"][str(gate_count)]
    top_row = scale["by_groups"][str(top)]
    if gate_row["speedup"] < overhead_floor:
        failures.append(
            f"{gate_count} groups run at {gate_row['speedup']:.2f}x the "
            f"single-group rate (floor {overhead_floor}x): sharding "
            f"overhead regression"
        )
    if gate_count < top:
        print(f"overhead gate applied at {gate_count} groups; counts above "
              f"2*cpus={2 * cpus} are recorded but not gated")
    if speedup_armed and top_row["speedup"] < 0.5 * top:
        failures.append(
            f"{top} groups only {top_row['speedup']:.2f}x with {cpus} cpus "
            f"(floor {0.5 * top:.1f}x)"
        )
    elif not speedup_armed:
        print(f"speedup gate not armed: {cpus} cpu(s) for {top} groups "
              f"(need >= {MIN_CPUS_PER_GROUP * top})")
    if not split["linearizable"]:
        failures.append("split under load was NOT linearizable")
    if split["errors"]:
        failures.append(f"split scenario errors: {split['errors']}")
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0
