"""Raw static-SMR service: the building block with no composition on top.

Used by experiment T1 to price the composition layer: the same Multi-Paxos
engine, the same client protocol, but no epochs, no cut detection, no
announce/transfer machinery — and, of course, no way to reconfigure. Any
throughput difference between this and the (unreconfigured) composition is
the composition's overhead.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.consensus.interface import EngineFactory, InstanceMessage, Transport
from repro.consensus.multipaxos import MultiPaxosEngine
from repro.core.client import (
    Client,
    ClientParams,
    ClientReply,
    ClientRequest,
    OperationSource,
    OpRecord,
)
from repro.core.statemachine import DedupStateMachine, StateMachine
from repro.errors import ConfigurationError
from repro.sim.node import Process
from repro.sim.runner import Simulator
from repro.types import ClientId, Command, CommandId, Decision, Membership, NodeId


class RawPaxosReplica(Process):
    """A static SMR member that also answers clients. No reconfiguration."""

    INSTANCE_ID = "static"

    def __init__(
        self,
        sim: Simulator,
        node: NodeId,
        membership: Membership,
        app_factory: Callable[[], StateMachine],
        engine_factory: EngineFactory,
    ):
        super().__init__(sim, node)
        self.state = DedupStateMachine(app_factory())
        self._pending: dict[CommandId, NodeId] = {}
        self._replies: dict[CommandId, Any] = {}
        self.applied = 0
        transport = Transport(self, self.INSTANCE_ID)
        self.engine = engine_factory(transport, membership, self._on_decide)

    def on_start(self) -> None:
        self.engine.start()

    def _on_decide(self, decision: Decision) -> None:
        from repro.consensus.interface import Batch

        payloads = (
            decision.payload.payloads
            if isinstance(decision.payload, Batch)
            else (decision.payload,)
        )
        for payload in payloads:
            if not isinstance(payload, Command):
                continue
            value = self.state.apply(payload)
            self.applied += 1
            self._replies[payload.cid] = value
            client = self._pending.pop(payload.cid, None)
            if client is not None:
                self.send(
                    client, ClientReply(payload.cid, value, 0, self.applied), size=128
                )

    def on_message(self, payload: Any, sender: NodeId) -> None:
        if isinstance(payload, InstanceMessage):
            if payload.instance == self.INSTANCE_ID and not self.engine.stopped:
                self.engine.on_message(payload.inner, sender)
        elif isinstance(payload, ClientRequest):
            command = payload.command
            if command.cid in self._replies:
                self.send(
                    payload.reply_to,
                    ClientReply(command.cid, self._replies[command.cid], 0, self.applied),
                    size=128,
                )
                return
            self._pending[command.cid] = payload.reply_to
            self.engine.propose(command)

    def on_crash(self) -> None:
        self.engine.stop()


class RawPaxosService:
    """Facade matching the client-facing surface of ReplicatedService."""

    def __init__(
        self,
        sim: Simulator,
        members: Iterable[str],
        app_factory: Callable[[], StateMachine],
        engine_factory: EngineFactory | None = None,
    ):
        self.sim = sim
        membership = Membership.from_iter(members)
        if len(membership) == 0:
            raise ConfigurationError("static service needs at least one member")
        self.membership = membership
        factory = engine_factory or MultiPaxosEngine.factory()
        self.replicas = {
            node: RawPaxosReplica(sim, node, membership, app_factory, factory)
            for node in membership
        }
        self._clients: list[Client] = []

    def make_client(
        self,
        name: str,
        operations: OperationSource,
        params: ClientParams | None = None,
        on_complete: Callable[[OpRecord], None] | None = None,
    ) -> Client:
        client = Client(
            self.sim,
            ClientId(name),
            self.membership,
            operations,
            params=params,
            on_complete=on_complete,
        )
        self._clients.append(client)
        return client

    @property
    def clients(self) -> list[Client]:
        return list(self._clients)
