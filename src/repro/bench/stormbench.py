"""T16/T17 storm benchmark: hand-off modes and control-plane failover.

Every cell runs one seeded storm scenario once per ``--handoff`` mode.
The data-plane cells (:mod:`repro.net.storm`: overlapping RECONFIGUREs,
rolling full-cluster replacement, joins racing SIGKILL crashes) drive a
live 3-replica cluster; the sharded cells (:mod:`repro.shard.storm`:
``shard`` races a per-group membership storm against a concurrent range
move, ``director`` SIGKILLs the replicated director's driving replica
between the retire and install steps of a move) drive a full sharded
cluster with a 3-replica metadir group. Each run records the two storm
headline numbers:

* **unavailability window** — the largest gap between consecutive
  acknowledged client operations during the storm (the paper's liveness
  claim, measured from the client's chair);
* **hand-off latency** — cluster-level reconfiguration span width
  (earliest ``decided`` to earliest ``first-commit`` in the new epoch),
  from the MetricsRegistry reconfiguration spans every replica already
  exports.

Each cell is best-of-``repeats`` fresh-cluster runs (min unavailability,
min hand-off latency): on a 1-CPU container a SIGKILL respawn can eat a
scheduling quantum at random, and the *achievable* window is what the
modes are being compared on. Every constituent run must still pass the
Wing–Gong oracle — a fast-but-wrong run fails the whole bench.

Gates (exit code):

* every run of every cell is ``ok`` — linearizable, every admin
  operation acknowledged, and (sharded cells) the director's map
  version chain linear and gapless;
* on ``GATE_SCENARIOS`` (``joincrash``), dirty-cut unavailability must
  not exceed clean-cut by more than one failover episode
  (``GATE_TOLERANCE_S``) — the gate catches a *broken* dirty cut
  (stalled hand-offs, never-recovering transfers), not run-to-run
  scheduler noise; the measured comparison lives in the full-grid
  ``BENCH_storm.json`` and EXPERIMENTS T16. The ``director`` smoke
  cell is excluded from the delta gate: its window is dominated by the
  control-plane failover (hold + takeover), identical in both
  data-plane hand-off modes.

Results land in ``BENCH_storm.json``; ``--timeline-dir`` additionally
writes each cell's fault-aligned timeline (CI uploads both).

Run via ``repro bench storm [--smoke]``.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Any

from repro.metrics import Table

#: the full grid sweeps every scenario (data-plane storms plus the
#: sharded cells); smoke samples the join-vs-crash race — the cell whose
#: SIGKILL-at-the-seal window is the one the dirty hand-off exists
#: for — and the director-failover cell, the control-plane headline.
SMOKE_SCENARIOS = ("joincrash", "director")
#: the clean-vs-dirty unavailability delta gate only applies here: the
#: director cell's window is dominated by the control-plane failover
#: (hold + takeover), which is identical under both data-plane hand-off
#: modes, so a delta there measures scheduler noise, not the hand-off.
GATE_SCENARIOS = ("joincrash",)
HANDOFFS = ("clean", "dirty")
#: unavailability-gate tolerance, seconds: one client retry episode.
#: Both hand-off modes share the same noise spikes — a leader
#: re-election or a retry after a redirect to a just-killed node costs
#: up to one ``request_timeout`` (0.5s) whichever mode is active, and
#: whether a given run pays one is scheduler luck (measured spread on
#: the joincrash cell spans 0.02s..0.51s for *both* modes across
#: sessions). Best-of-repeats absorbs most of it; the tolerance absorbs
#: the rest, so the gate trips on a dirty cut that is *structurally*
#: worse — a stalled hand-off or unserved transfer parks the window at
#: seconds, far past one retry — not on which mode drew the unlucky run.
GATE_TOLERANCE_S = 0.5


def _run_cell(
    scenario: str,
    handoff: str,
    *,
    seed: int,
    wire: str | None,
    repeats: int,
    timeline_dir: str | None,
) -> dict[str, Any]:
    """Best-of-``repeats`` fresh-cluster runs of one (scenario, handoff)."""
    from repro.net.storm import run_storm_scenario

    runs: list[dict[str, Any]] = []
    best = None
    for attempt in range(max(1, repeats)):
        report = run_storm_scenario(
            scenario, seed=seed, handoff=handoff, wire=wire
        )
        dirty_overlaps = sum(
            node.get("smr.dirty_overlaps", 0) for node in report.counters.values()
        )
        run = {
            "ok": report.ok,
            "linearizable": report.linearizable.ok,
            "checked_ops": report.linearizable.checked_ops,
            "reconfigs_acked": sum(1 for s in report.reconfigs if s["ok"]),
            "reconfigs_planned": len(report.plan.steps),
            "unavailability_s": report.unavailability["max_gap_s"],
            "completed_ops": report.unavailability["completed"],
            "failed_or_pending": report.unavailability["failed_or_pending"],
            "handoff_latency_mean_s": report.handoff_latency["mean_s"],
            "handoff_latency_max_s": report.handoff_latency["max_s"],
            "dirty_overlaps": dirty_overlaps,
            "elapsed_s": round(report.chaos.elapsed, 2),
        }
        runs.append(run)
        if best is None or (
            run["ok"]
            and (not best["ok"]
                 or run["unavailability_s"] < best["unavailability_s"])
        ):
            best = run
        if timeline_dir is not None:
            path = Path(timeline_dir)
            path.mkdir(parents=True, exist_ok=True)
            report.write_timeline(
                path / f"storm-{scenario}-{handoff}-{attempt}.json"
            )
        for line in report.lines():
            print(f"    {line}")
    assert best is not None
    return {
        "scenario": scenario,
        "handoff": handoff,
        "seed": seed,
        "repeats": len(runs),
        "all_ok": all(run["ok"] for run in runs),
        # the cell headline: best achieved across repeats.
        "unavailability_s": min(run["unavailability_s"] for run in runs),
        "handoff_latency_mean_s": best["handoff_latency_mean_s"],
        "handoff_latency_max_s": min(
            (run["handoff_latency_max_s"] for run in runs
             if run["handoff_latency_max_s"] is not None),
            default=None,
        ),
        "dirty_overlaps": sum(run["dirty_overlaps"] for run in runs),
        "runs": runs,
    }


def _render(cells: list[dict[str, Any]]) -> None:
    table = Table(
        "T16 reconfiguration storms: clean vs dirty hand-off",
        ["cell", "runs", "ok", "unavail s", "hand-off mean s",
         "hand-off max s", "dirty overlaps"],
    )
    for cell in cells:
        hl_mean = cell["handoff_latency_mean_s"]
        hl_max = cell["handoff_latency_max_s"]
        table.add_row(
            f"{cell['scenario']}/{cell['handoff']}",
            cell["repeats"],
            "yes" if cell["all_ok"] else "NO",
            f"{cell['unavailability_s']:.3f}",
            f"{hl_mean:.3f}" if hl_mean is not None else "-",
            f"{hl_max:.3f}" if hl_max is not None else "-",
            cell["dirty_overlaps"],
        )
    print(table.render())
    print()


def run_storm_bench(
    smoke: bool = False,
    out: str = "BENCH_storm.json",
    seed: int = 42,
    wire: str | None = None,
    repeats: int | None = None,
    timeline_dir: str | None = None,
) -> int:
    """Run the storm sweep; returns a gate exit code."""
    from repro.net.storm import SHARD_STORM_SCENARIOS, STORM_SCENARIOS

    mode = "smoke" if smoke else "full"
    cpus = os.cpu_count() or 1
    scenarios = (
        SMOKE_SCENARIOS if smoke else STORM_SCENARIOS + SHARD_STORM_SCENARIOS
    )
    if repeats is None:
        repeats = 3
    print(f"T16 storm benchmark ({mode}, seed={seed}, cpus={cpus})")
    cells: list[dict[str, Any]] = []
    for scenario in scenarios:
        for handoff in HANDOFFS:
            print(f"  cell {scenario}/{handoff}: best of {repeats} ...",
                  flush=True)
            cells.append(_run_cell(
                scenario, handoff, seed=seed, wire=wire, repeats=repeats,
                timeline_dir=timeline_dir,
            ))
    _render(cells)

    by_key = {(c["scenario"], c["handoff"]): c for c in cells}
    comparisons: dict[str, dict[str, Any]] = {}
    for scenario in scenarios:
        clean = by_key.get((scenario, "clean"))
        dirty = by_key.get((scenario, "dirty"))
        if clean is None or dirty is None:
            continue
        comparisons[scenario] = {
            "clean_unavailability_s": clean["unavailability_s"],
            "dirty_unavailability_s": dirty["unavailability_s"],
            "delta_s": round(
                dirty["unavailability_s"] - clean["unavailability_s"], 4
            ),
            "clean_handoff_mean_s": clean["handoff_latency_mean_s"],
            "dirty_handoff_mean_s": dirty["handoff_latency_mean_s"],
            "dirty_overlaps": dirty["dirty_overlaps"],
        }

    report = {
        "bench": "T16-storm",
        "mode": mode,
        "seed": seed,
        "cpus": cpus,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "wire": wire or "binary",
        "repeats": repeats,
        "gate_tolerance_s": GATE_TOLERANCE_S,
        "cells": {f"{c['scenario']}/{c['handoff']}": c for c in cells},
        "comparisons": comparisons,
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    for scenario, cmp in comparisons.items():
        print(
            f"{scenario}: unavailability clean "
            f"{cmp['clean_unavailability_s']:.3f}s vs dirty "
            f"{cmp['dirty_unavailability_s']:.3f}s "
            f"(delta {cmp['delta_s']:+.3f}s, "
            f"{cmp['dirty_overlaps']} tail commands overlapped)"
        )

    failures: list[str] = []
    for cell in cells:
        if not cell["all_ok"]:
            failures.append(
                f"cell {cell['scenario']}/{cell['handoff']} had a run that "
                "was not ok (non-linearizable history or unacknowledged "
                "RECONFIGURE)"
            )
    for scenario in GATE_SCENARIOS:
        cmp = comparisons.get(scenario)
        if cmp is None:
            continue
        if cmp["delta_s"] > GATE_TOLERANCE_S:
            failures.append(
                f"dirty-cut unavailability on {scenario} exceeds clean-cut "
                f"by {cmp['delta_s']:.3f}s (tolerance {GATE_TOLERANCE_S}s): "
                f"dirty {cmp['dirty_unavailability_s']:.3f}s vs clean "
                f"{cmp['clean_unavailability_s']:.3f}s"
            )
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0
