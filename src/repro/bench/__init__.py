"""Benchmark harness: experiment definitions behind every table/figure.

Each experiment in DESIGN.md has one function in
:mod:`repro.bench.experiments` that runs the workload sweep and returns
renderable :class:`repro.metrics.report.Table` / ``Series`` objects. The
``benchmarks/`` directory wraps these in pytest-benchmark targets; the
examples reuse the same harness for smaller interactive runs.
"""

from repro.bench.harness import RunResult, run_experiment
from repro.bench.rawstatic import RawPaxosService

__all__ = ["RawPaxosService", "RunResult", "run_experiment"]
