"""The shared experiment runner.

:func:`run_experiment` builds a simulator, one of the comparable services
(the paper's speculative composition, the stop-the-world baseline, Raft,
or the raw static block), a measured client pool, an optional
reconfiguration schedule and failure schedule — runs it, and hands back a
:class:`RunResult` with every signal the tables and figures need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.kvstore import KvStateMachine
from repro.baselines.raft_service import RaftService
from repro.bench.rawstatic import RawPaxosService
from repro.consensus.interface import EngineFactory
from repro.consensus.multipaxos import MultiPaxosEngine
from repro.consensus.sequencer import SequencerEngine
from repro.core.client import ClientParams
from repro.core.reconfig import ReconfigParams
from repro.core.service import ReplicatedService
from repro.errors import ConfigurationError
from repro.metrics.collectors import CommitCollector, CompletionCollector
from repro.sim.failures import FailureInjector, FailureSchedule
from repro.sim.network import LatencyModel
from repro.sim.runner import Simulator
from repro.workload.clients import ClientPool
from repro.workload.generators import KvOperationMix
from repro.workload.schedules import ReconfigStep

#: protocol kinds run_experiment understands.
KINDS = ("speculative", "stw", "raft", "raw-static")


def _engine_factory(engine: str, engine_params=None) -> EngineFactory:
    if engine == "paxos":
        return MultiPaxosEngine.factory(engine_params)
    if engine == "sequencer":
        return SequencerEngine.factory(engine_params)
    raise ConfigurationError(f"unknown engine {engine!r}")


@dataclass(slots=True)
class RunResult:
    """Everything measured in one experiment run."""

    kind: str
    sim: Simulator
    service: Any
    pool: ClientPool
    commits: CommitCollector
    #: ordering events: when positions become final (== commits for Raft,
    #: where ordering and commitment coincide; ahead of commits for the
    #: speculative composition during hand-off).
    orders: CommitCollector
    started_at: float
    ended_at: float
    schedule: list[ReconfigStep] = field(default_factory=list)

    @property
    def collector(self) -> CompletionCollector:
        return self.pool.collector

    @property
    def duration(self) -> float:
        return self.ended_at - self.started_at

    def throughput(self) -> float:
        return self.collector.throughput(self.started_at, self.ended_at)

    def unavailability(self) -> float:
        return self.collector.unavailability(self.started_at, self.ended_at)

    def messages_per_op(self) -> float:
        ops = max(1, self.collector.count)
        return self.sim.network.stats.messages_sent / ops

    def bytes_per_op(self) -> float:
        ops = max(1, self.collector.count)
        return self.sim.network.stats.bytes_sent / ops


def build_service(
    kind: str,
    sim: Simulator,
    members: list[str],
    app_factory: Callable[[], Any],
    engine: str = "paxos",
    pipeline_depth: int | None = None,
    commit_listener=None,
    order_listener=None,
    engine_params=None,
    read_mode: str = "log",
):
    """Construct the service named by ``kind`` (see :data:`KINDS`)."""
    if kind in ("speculative", "stw"):
        depth = 1 if kind == "stw" else pipeline_depth
        return ReplicatedService(
            sim,
            members,
            app_factory,
            params=ReconfigParams(
                engine_factory=_engine_factory(engine, engine_params),
                pipeline_depth=depth,
                read_mode=read_mode,
            ),
            commit_listener=commit_listener,
            order_listener=order_listener,
        )
    if kind == "raft":
        return RaftService(sim, members, app_factory, commit_listener=commit_listener)
    if kind == "raw-static":
        return RawPaxosService(
            sim, members, app_factory, _engine_factory(engine, engine_params)
        )
    raise ConfigurationError(f"unknown service kind {kind!r}")


def run_experiment(
    kind: str,
    *,
    seed: int = 42,
    members: tuple[str, ...] = ("n1", "n2", "n3"),
    clients: int = 4,
    ops_per_client: int | None = None,
    run_for: float = 5.0,
    warmup: float = 0.3,
    read_ratio: float = 0.5,
    cas_ratio: float = 0.0,
    keyspace: int = 64,
    value_size: int = 64,
    preload: int = 0,
    schedule: list[ReconfigStep] | None = None,
    failures: FailureSchedule | None = None,
    engine: str = "paxos",
    pipeline_depth: int | None = None,
    request_timeout: float = 0.5,
    latency: LatencyModel | None = None,
    bin_width: float = 0.1,
    trace: bool = False,
    engine_params=None,
    read_mode: str = "log",
    processing_delay: float = 0.0,
) -> RunResult:
    """Run one workload under one protocol; see DESIGN.md experiment index.

    ``run_for`` bounds the measured window after ``warmup``; clients with a
    finite ``ops_per_client`` may stop earlier. The simulation is allowed a
    drain tail beyond the window so in-flight work settles.
    """
    if kind not in KINDS:
        raise ConfigurationError(f"kind must be one of {KINDS}")
    sim = Simulator(seed=seed, latency=latency, trace_enabled=trace)

    def app_factory() -> KvStateMachine:
        app = KvStateMachine(value_bytes=value_size)
        if preload:
            app.preload(preload)
        return app

    commits = CommitCollector(bin_width=bin_width)
    orders = CommitCollector(bin_width=bin_width)

    def order_listener(time, payload, epoch, slot):
        orders.listener(time, payload, epoch, slot, None)

    service = build_service(
        kind,
        sim,
        list(members),
        app_factory,
        engine=engine,
        pipeline_depth=pipeline_depth,
        commit_listener=None if kind == "raw-static" else commits.listener,
        order_listener=None if kind in ("raw-static", "raft") else order_listener,
        engine_params=engine_params,
        read_mode=read_mode,
    )
    if kind == "raft":
        orders = commits  # Raft orders and commits in the same instant

    if processing_delay > 0.0:
        for replica in getattr(service, "replicas", {}).values():
            replica.processing_delay = processing_delay

    mix = KvOperationMix(
        sim.rng.fork("mix"),
        keyspace=keyspace,
        read_ratio=read_ratio,
        cas_ratio=cas_ratio,
        value_size=value_size,
    )
    pool = ClientPool(
        service,
        mix,
        count=clients,
        ops_per_client=ops_per_client,
        params=ClientParams(start_delay=warmup, request_timeout=request_timeout),
        bin_width=bin_width,
    )

    if schedule:
        for step in schedule:
            service.reconfigure_at(step.time, list(step.members))
    if failures is not None:
        FailureInjector(sim, failures).arm()

    started_at = warmup
    ended_at = warmup + run_for
    if ops_per_client is not None:
        sim.run_until(lambda: pool.all_finished, timeout=ended_at + 30.0)
        ended_at = min(ended_at, sim.now)
    else:
        sim.run(until=ended_at + 1.0)

    # Stop unbounded clients so nothing keeps issuing beyond the window.
    for client in pool.clients:
        client.finished = True

    return RunResult(
        kind=kind,
        sim=sim,
        service=service,
        pool=pool,
        commits=commits,
        orders=orders,
        started_at=started_at,
        ended_at=ended_at,
        schedule=list(schedule or []),
    )
