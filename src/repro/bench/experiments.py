"""Experiment definitions: one function per table/figure in DESIGN.md.

Every function runs its sweep and returns an :class:`ExperimentOutput`
holding renderable tables/series plus the raw numbers (which the test
suite asserts shape-properties against: who wins, by roughly what factor).

The brief announcement carries no quantitative evaluation, so these
experiments *are* the evaluation a full paper would have run — they
exercise each claim: negligible steady-state overhead (T1), ordering that
never stops during reconfiguration (F1), state-size-independent ordering
latency (T2), liveness under reconfiguration storms (F2/F4), failover via
reconfiguration (T3), bounded tail latency (F3), message cost (T4), and
block-agnosticism (T5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import RunResult, run_experiment
from repro.metrics.report import Series, Table
from repro.metrics.stats import summarize_latencies
from repro.sim.failures import FailureSchedule
from repro.sim.network import LatencyModel
from repro.workload.schedules import (
    ReconfigStep,
    full_replacement,
    migration_storm,
    storm,
)

#: bandwidth used where state transfer must be visible (25 MB/s models a
#: throttled inter-rack/backup link; protocol messages are unaffected).
TRANSFER_LATENCY = LatencyModel(bandwidth=25_000_000.0)

PROTOCOLS = ("speculative", "stw", "raft")
PROTOCOL_LABELS = {
    "speculative": "reconfig-smr (speculative, this paper)",
    "stw": "stop-the-world hand-off",
    "raft": "raft (native reconfiguration)",
    "raw-static": "raw static multi-paxos (no reconfig support)",
}


@dataclass(slots=True)
class ExperimentOutput:
    """Renderables plus raw numbers for one experiment."""

    name: str
    tables: list[Table] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def print(self) -> None:  # pragma: no cover - console output
        for table in self.tables:
            table.print()
        for series in self.series:
            series.print()


# ---------------------------------------------------------------------------
# T1 — steady-state overhead of the composition
# ---------------------------------------------------------------------------


def exp_t1_overhead(
    sizes: tuple[int, ...] = (3, 5, 7), run_for: float = 3.0, seed: int = 42
) -> ExperimentOutput:
    """Throughput/latency with NO reconfigurations, cluster size sweep."""
    table = Table(
        "T1: steady-state overhead (no reconfigurations)",
        ["protocol", "n", "throughput (op/s)", "p50 (ms)", "p99 (ms)", "msgs/op"],
    )
    data: dict = {}
    for n in sizes:
        members = tuple(f"n{i + 1}" for i in range(n))
        for kind in ("raw-static", "speculative", "stw", "raft"):
            result = run_experiment(
                kind, seed=seed, members=members, clients=4, run_for=run_for
            )
            latency = result.collector.latency_summary()
            throughput = result.throughput()
            table.add_row(
                PROTOCOL_LABELS[kind],
                n,
                f"{throughput:.0f}",
                f"{latency.p50_ms:.2f}",
                f"{latency.p99_ms:.2f}",
                f"{result.messages_per_op():.1f}",
            )
            data[(kind, n)] = {
                "throughput": throughput,
                "p50_ms": latency.p50_ms,
                "p99_ms": latency.p99_ms,
                "msgs_per_op": result.messages_per_op(),
            }
    return ExperimentOutput("T1", tables=[table], data=data)


# ---------------------------------------------------------------------------
# F1 — throughput timeline through one reconfiguration
# ---------------------------------------------------------------------------


def exp_f1_timeline(
    preload: int = 60_000,
    reconfig_at: float = 2.0,
    run_for: float = 5.0,
    seed: int = 42,
) -> ExperimentOutput:
    """Migrate 2 of 3 members at once; watch committed throughput.

    The new quorum depends on joining nodes, so the hand-off sits on the
    critical path: stop-the-world stalls for the transfer, the speculative
    pipeline keeps ordering. Raft performs the equivalent migration as a
    sequence of single-server changes.
    """
    out = ExperimentOutput("F1")
    members = ("n1", "n2", "n3")
    schedule = [ReconfigStep(reconfig_at, ("n1", "n4", "n5"))]
    for kind in PROTOCOLS:
        result = run_experiment(
            kind,
            seed=seed,
            members=members,
            clients=6,
            run_for=run_for,
            preload=preload,
            schedule=schedule,
            latency=TRANSFER_LATENCY,
            bin_width=0.1,
        )
        series = Series(
            f"F1: committed throughput over time — {PROTOCOL_LABELS[kind]}",
            "t (s)",
            "ops/s",
        )
        for t, rate in result.collector.timeline.series(result.started_at, result.ended_at):
            note = "reconfig ->" if abs(t - reconfig_at) < result.collector.timeline.bin_width / 2 else ""
            series.add(t, rate, note)
        out.series.append(series)
        window_end = min(reconfig_at + 2.0, result.ended_at)
        out.data[kind] = {
            "gap_after_reconfig": result.collector.unavailability(reconfig_at, window_end),
            "throughput": result.throughput(),
            "during": result.collector.throughput(reconfig_at, window_end),
        }
    table = Table(
        "F1 summary: service interruption around the migration",
        ["protocol", "longest reply gap after reconfig (ms)", "ops/s during hand-off"],
    )
    for kind in PROTOCOLS:
        table.add_row(
            PROTOCOL_LABELS[kind],
            f"{out.data[kind]['gap_after_reconfig'] * 1000:.0f}",
            f"{out.data[kind]['during']:.0f}",
        )
    out.tables.append(table)
    return out


# ---------------------------------------------------------------------------
# T2 — reconfiguration latency vs application state size
# ---------------------------------------------------------------------------


def exp_t2_statesize(
    preloads: tuple[int, ...] = (1_000, 30_000, 120_000),
    reconfig_at: float = 1.5,
    seed: int = 42,
) -> ExperimentOutput:
    """Replace the whole quorum; how long until the new epoch serves?

    Measured from the reconfiguration request to the first client reply
    produced by the new configuration. The speculative pipeline overlaps
    ordering with the transfer; stop-the-world pays the full transfer
    before ordering starts, so its latency grows with state size.
    """
    table = Table(
        "T2: hand-off latency vs state size (full quorum replacement)",
        [
            "protocol",
            "state entries",
            "snapshot (MB)",
            "ordering resumes in new epoch (ms)",
            "first reply from new epoch (ms)",
            "reply gap (ms)",
        ],
    )
    out = ExperimentOutput("T2", tables=[table])
    members = ("n1", "n2", "n3")
    for preload in preloads:
        schedule = full_replacement(list(members), at=reconfig_at, first_fresh=4)
        for kind in ("speculative", "stw"):
            result = run_experiment(
                kind,
                seed=seed,
                members=members,
                clients=4,
                run_for=reconfig_at + 4.0,
                preload=preload,
                value_size=64,
                schedule=schedule,
                latency=TRANSFER_LATENCY,
            )
            order_resume = _epoch_latency(result.orders, 1, reconfig_at, result.ended_at)
            first_reply = _epoch_latency(result.commits, 1, reconfig_at, result.ended_at)
            gap = result.collector.unavailability(
                reconfig_at, min(reconfig_at + 3.0, result.ended_at)
            )
            snapshot_mb = (16 + 88 * preload) / 1e6
            table.add_row(
                PROTOCOL_LABELS[kind],
                preload,
                f"{snapshot_mb:.2f}",
                f"{order_resume * 1000:.0f}",
                f"{first_reply * 1000:.0f}",
                f"{gap * 1000:.0f}",
            )
            out.data[(kind, preload)] = {
                "order_resume": order_resume,
                "first_reply": first_reply,
                "gap": gap,
            }
    return out


def _epoch_latency(collector, epoch: int, since: float, fallback: float) -> float:
    first = collector.first_commit_in_epoch(epoch)
    if first is None:
        return fallback - since
    return first - since


# ---------------------------------------------------------------------------
# F2 — reconfiguration storms
# ---------------------------------------------------------------------------


def exp_f2_storm(
    intervals: tuple[float, ...] = (1.0, 0.5, 0.25, 0.1),
    rounds: int = 6,
    preload: int = 40_000,
    seed: int = 42,
) -> ExperimentOutput:
    """Migration storms at increasing rate: who stays live?

    Each round keeps one member and replaces the other two, so every new
    quorum depends on joiners whose state is still in flight — the
    hand-off sits squarely on the critical path, round after round.
    """
    out = ExperimentOutput("F2")
    chart = {kind: Series(
        f"F2: throughput under reconfig storms — {PROTOCOL_LABELS[kind]}",
        "interval (s)",
        "ops/s",
    ) for kind in PROTOCOLS}
    table = Table(
        "F2 summary: migration storms (2 of 3 replaced every interval)",
        ["protocol", "interval (s)", "ops/s", "longest reply gap (ms)", "epochs/steps"],
    )
    for interval in intervals:
        start = 1.0
        run_for = start + rounds * interval + 3.0
        for kind in PROTOCOLS:
            schedule = [
                ReconfigStep(step.time, step.members)
                for step in migration_storm(
                    ["n1", "n2", "n3"], start=start, interval=interval,
                    count=rounds, first_fresh=4,
                )
            ]
            result = run_experiment(
                kind,
                seed=seed,
                members=("n1", "n2", "n3"),
                clients=4,
                run_for=run_for,
                preload=preload,
                schedule=schedule,
                latency=TRANSFER_LATENCY,
            )
            throughput = result.throughput()
            gap = result.unavailability()
            chart[kind].add(interval, throughput)
            progress = _reconfig_progress(result)
            table.add_row(
                PROTOCOL_LABELS[kind],
                interval,
                f"{throughput:.0f}",
                f"{gap * 1000:.0f}",
                progress,
            )
            out.data[(kind, interval)] = {"throughput": throughput, "gap": gap}
    out.series.extend(chart.values())
    out.tables.append(table)
    return out


def _reconfig_progress(result: RunResult) -> str:
    service = result.service
    if hasattr(service, "newest_epoch"):
        return f"epoch {service.newest_epoch()}"
    if hasattr(service, "applied_membership"):
        return f"members {service.applied_membership()}"
    return "-"


# ---------------------------------------------------------------------------
# T3 — crash + replacement availability
# ---------------------------------------------------------------------------


def exp_t3_failover(seed: int = 42, preload: int = 20_000) -> ExperimentOutput:
    """Crash a member, reconfigure a replacement in; measure the outage."""
    table = Table(
        "T3: crash + replacement via reconfiguration",
        ["protocol", "crashed", "reply gap (ms)", "ops/s overall", "recovered members"],
    )
    out = ExperimentOutput("T3", tables=[table])
    crash_at, reconfig_at, run_for = 1.5, 1.7, 5.0
    for crashed, label in (("n3", "follower"), ("n1", "likely leader")):
        survivors = [n for n in ("n1", "n2", "n3") if n != crashed]
        target = tuple(survivors + ["n4"])
        for kind in PROTOCOLS:
            failures = FailureSchedule().crash(crash_at, crashed)
            schedule = [ReconfigStep(reconfig_at, target)]
            result = run_experiment(
                kind,
                seed=seed,
                members=("n1", "n2", "n3"),
                clients=4,
                run_for=run_for,
                preload=preload,
                schedule=schedule,
                failures=failures,
                latency=TRANSFER_LATENCY,
                request_timeout=0.3,
            )
            gap = result.collector.unavailability(
                crash_at, min(crash_at + 3.0, result.ended_at)
            )
            table.add_row(
                PROTOCOL_LABELS[kind],
                f"{crashed} ({label})",
                f"{gap * 1000:.0f}",
                f"{result.throughput():.0f}",
                _reconfig_progress(result),
            )
            out.data[(kind, label)] = {"gap": gap, "throughput": result.throughput()}
    return out


# ---------------------------------------------------------------------------
# F3 — client latency percentiles under periodic reconfiguration
# ---------------------------------------------------------------------------


def exp_f3_latency(
    period: float = 1.0, rounds: int = 5, preload: int = 40_000, seed: int = 42
) -> ExperimentOutput:
    """Latency distribution while the membership rolls every ``period``."""
    table = Table(
        f"F3: client latency with a rolling replacement every {period}s",
        ["protocol", "ops", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)", "max (ms)"],
    )
    out = ExperimentOutput("F3", tables=[table])
    run_for = 1.0 + rounds * period + 2.0
    for kind in PROTOCOLS:
        schedule = [
            ReconfigStep(step.time, step.members)
            for step in storm(["n1", "n2", "n3"], 1.0, period, rounds, first_fresh=4)
        ]
        result = run_experiment(
            kind,
            seed=seed,
            members=("n1", "n2", "n3"),
            clients=4,
            run_for=run_for,
            preload=preload,
            schedule=schedule,
            latency=TRANSFER_LATENCY,
        )
        summary = result.collector.latency_summary()
        table.add_row(
            PROTOCOL_LABELS[kind],
            summary.count,
            f"{summary.mean_ms:.2f}",
            f"{summary.p50_ms:.2f}",
            f"{summary.p95_ms:.2f}",
            f"{summary.p99_ms:.2f}",
            f"{summary.max_ms:.0f}",
        )
        out.data[kind] = summary
        per_bin = Series(
            f"F3: p99 latency per 250ms — {PROTOCOL_LABELS[kind]}", "t (s)", "p99 (ms)"
        )
        bin_width = 0.25
        t = result.started_at
        while t < result.ended_at:
            window = result.collector.latencies_between(t, t + bin_width)
            if window:
                per_bin.add(t, summarize_latencies(window).p99_ms)
            t += bin_width
        out.series.append(per_bin)
    return out


# ---------------------------------------------------------------------------
# T4 — message & byte cost
# ---------------------------------------------------------------------------


def exp_t4_msgcost(seed: int = 42, ops: int = 1200) -> ExperimentOutput:
    """Messages and bytes per op, steady state and with reconfigurations."""
    table = Table(
        "T4: message cost",
        [
            "protocol",
            "msgs/op (steady)",
            "bytes/op (steady)",
            "msgs/op (3 reconfigs)",
            "extra msgs per reconfig",
        ],
    )
    out = ExperimentOutput("T4", tables=[table])
    for kind in PROTOCOLS:
        steady = run_experiment(
            kind, seed=seed, clients=4, ops_per_client=ops // 4, run_for=30.0
        )
        # Three rolling replacements timed to land while the finite
        # workload is still in flight (≈0.3–1.5 s at these rates).
        schedule = [
            ReconfigStep(step.time, step.members)
            for step in storm(["n1", "n2", "n3"], 0.5, 0.3, 3, first_fresh=4)
        ]
        with_reconfig = run_experiment(
            kind,
            seed=seed,
            clients=4,
            ops_per_client=ops // 4,
            run_for=30.0,
            schedule=schedule,
        )
        # Per-reconfiguration cost measured on an *idle* service over a
        # fixed window, so duration-proportional chatter (heartbeats,
        # probes) cancels out of the difference exactly.
        idle = run_experiment(kind, seed=seed, clients=0, run_for=3.0)
        idle_reconfig = run_experiment(
            kind, seed=seed, clients=0, run_for=3.0, schedule=schedule
        )
        extra = (
            idle_reconfig.sim.network.stats.messages_sent
            - idle.sim.network.stats.messages_sent
        ) / 3.0
        table.add_row(
            PROTOCOL_LABELS[kind],
            f"{steady.messages_per_op():.1f}",
            f"{steady.bytes_per_op():.0f}",
            f"{with_reconfig.messages_per_op():.1f}",
            f"{extra:.0f}",
        )
        out.data[kind] = {
            "steady_msgs_per_op": steady.messages_per_op(),
            "steady_bytes_per_op": steady.bytes_per_op(),
            "reconfig_msgs_per_op": with_reconfig.messages_per_op(),
            "extra_per_reconfig": extra,
        }
    return out


# ---------------------------------------------------------------------------
# F4 — ablation: speculation pipeline depth
# ---------------------------------------------------------------------------


def exp_f4_ablation(
    depths: tuple[int | None, ...] = (1, 2, 3, None),
    interval: float = 0.25,
    rounds: int = 6,
    preload: int = 40_000,
    seed: int = 42,
) -> ExperimentOutput:
    """Sweep the pipeline-depth gate under a migration storm (1 = STW)."""
    series = Series(
        "F4: storm throughput vs speculation pipeline depth",
        "depth (0 = unbounded)",
        "ops/s",
    )
    table = Table(
        f"F4: pipeline-depth ablation (2-of-3 migration every {interval}s)",
        ["pipeline depth", "ops/s", "longest reply gap (ms)", "final epoch"],
    )
    out = ExperimentOutput("F4", tables=[table], series=[series])
    run_for = 1.0 + rounds * interval + 3.0
    for depth in depths:
        schedule = [
            ReconfigStep(step.time, step.members)
            for step in migration_storm(
                ["n1", "n2", "n3"], 1.0, interval, rounds, first_fresh=4
            )
        ]
        result = run_experiment(
            "speculative",
            seed=seed,
            clients=4,
            run_for=run_for,
            preload=preload,
            schedule=schedule,
            latency=TRANSFER_LATENCY,
            pipeline_depth=depth,
        )
        throughput = result.throughput()
        gap = result.unavailability()
        label = "unbounded" if depth is None else str(depth)
        series.add(0 if depth is None else depth, throughput, label)
        table.add_row(
            label, f"{throughput:.0f}", f"{gap * 1000:.0f}", _reconfig_progress(result)
        )
        out.data[depth] = {"throughput": throughput, "gap": gap}
    return out


# ---------------------------------------------------------------------------
# T5 — block-agnosticism
# ---------------------------------------------------------------------------


def exp_t5_blocks(seed: int = 42, preload: int = 10_000) -> ExperimentOutput:
    """Same reconfiguration workload over two different building blocks."""
    table = Table(
        "T5: the composition over interchangeable static blocks",
        ["building block", "ops/s", "p99 (ms)", "msgs/op", "final epoch"],
    )
    out = ExperimentOutput("T5", tables=[table])
    schedule = [
        ReconfigStep(step.time, step.members)
        for step in storm(["n1", "n2", "n3"], 1.0, 0.8, 3, first_fresh=4)
    ]
    for engine, label in (("paxos", "multi-paxos (fault tolerant)"),
                          ("sequencer", "single sequencer (not fault tolerant)")):
        result = run_experiment(
            "speculative",
            seed=seed,
            clients=4,
            run_for=1.0 + 3 * 0.8 + 2.0,
            preload=preload,
            schedule=schedule,
            engine=engine,
        )
        summary = result.collector.latency_summary()
        table.add_row(
            label,
            f"{result.throughput():.0f}",
            f"{summary.p99_ms:.2f}",
            f"{result.messages_per_op():.1f}",
            _reconfig_progress(result),
        )
        out.data[engine] = {
            "throughput": result.throughput(),
            "p99_ms": summary.p99_ms,
            "msgs_per_op": result.messages_per_op(),
        }
    return out


# ---------------------------------------------------------------------------
# F5 — warm standby (observer) vs cold join
# ---------------------------------------------------------------------------


def exp_f5_warmjoin(
    preloads: tuple[int, ...] = (10_000, 40_000, 120_000), seed: int = 42
) -> ExperimentOutput:
    """Promotion of a pre-warmed observer vs a cold joiner.

    An observer streams the virtual log before being added; at promotion
    its boundary state is already local, so the join latency is flat in
    state size, while a cold joiner pays the full snapshot transfer.
    """
    from repro.apps.kvstore import KvStateMachine
    from repro.core.client import ClientParams
    from repro.core.service import ReplicatedService
    from repro.sim.runner import Simulator
    from repro.types import node_id

    table = Table(
        "F5: join readiness latency — warm standby vs cold joiner",
        ["join mode", "state entries", "join ready after (ms)"],
    )
    series = Series("F5: join latency vs state size", "entries", "ms")
    out = ExperimentOutput("F5", tables=[table], series=[series])

    def run(preload: int, warm: bool) -> float:
        sim = Simulator(seed=seed, latency=TRANSFER_LATENCY)

        def app():
            kv = KvStateMachine()
            kv.preload(preload)
            return kv

        service = ReplicatedService(sim, ["n1", "n2", "n3"], app)
        budget = [10_000]

        def ops():
            if budget[0] <= 0:
                return None
            budget[0] -= 1
            return ("set", (f"k{budget[0] % 16}", budget[0]), 64)

        service.make_client("c0", ops, ClientParams(start_delay=0.2))
        if warm:
            service.add_observer("w1")
        sim.run(until=1.5)
        service.reconfigure(["n1", "n2", "w1"])
        joiner = service.replicas[node_id("w1")]
        ready = sim.run_until(
            lambda: joiner.epoch_runtime(1) is not None
            and joiner.epoch_runtime(1).start_state_ready,
            timeout=30.0,
        )
        return (sim.now - 1.5) if ready else 30.0

    for preload in preloads:
        for warm, label in ((True, "warm (observer)"), (False, "cold (snapshot)")):
            latency = run(preload, warm)
            table.add_row(label, preload, f"{latency * 1000:.0f}")
            series.add(preload, latency * 1000, label)
            out.data[(label, preload)] = latency
    return out


# ---------------------------------------------------------------------------
# T6 — failure-detector sensitivity ablation
# ---------------------------------------------------------------------------


def exp_t6_detector(
    timeouts: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4), seed: int = 42
) -> ExperimentOutput:
    """Sweep the heartbeat suspicion timeout: failover speed vs stability.

    The suspect timeout is the classic availability/stability dial of any
    leader-based SMR: short timeouts fail over fast but risk spurious
    elections; long timeouts are calm but slow to react. This ablation
    crashes the leader mid-run and measures the client-visible outage for
    each setting, plus steady-state throughput (to expose any instability
    cost of aggressive settings).
    """
    from repro.consensus.multipaxos import PaxosParams
    from repro.sim.failures import FailureSchedule

    table = Table(
        "T6: suspect-timeout ablation (leader crash at t=1.5s)",
        ["suspect timeout (ms)", "reply gap (ms)", "ops/s", "spurious campaigns"],
    )
    series = Series("T6: failover outage vs suspect timeout", "timeout (ms)", "gap (ms)")
    out = ExperimentOutput("T6", tables=[table], series=[series])
    crash_at = 1.5
    for timeout in timeouts:
        params = PaxosParams(
            suspect_timeout_min=timeout,
            suspect_timeout_max=timeout * 2,
            # keep the lease legal under aggressive suspicion settings
            lease_duration=min(0.08, timeout * 0.5),
        )
        result = run_experiment(
            "speculative",
            seed=seed,
            clients=4,
            run_for=4.0,
            failures=FailureSchedule().crash(crash_at, "n1"),
            request_timeout=max(0.3, timeout),
            engine_params=params,
            trace=True,
        )
        gap = result.collector.unavailability(
            crash_at, min(crash_at + 2.0, result.ended_at)
        )
        campaigns = result.sim.trace.count("campaign")
        table.add_row(
            f"{timeout * 1000:.0f}",
            f"{gap * 1000:.0f}",
            f"{result.throughput():.0f}",
            max(0, campaigns - 2),  # initial election costs ~1-2 campaigns
        )
        series.add(timeout * 1000, gap * 1000)
        out.data[timeout] = {"gap": gap, "throughput": result.throughput()}
    return out


# ---------------------------------------------------------------------------
# T7 — leader-lease local reads
# ---------------------------------------------------------------------------


def exp_t7_leases(
    read_ratios: tuple[float, ...] = (0.5, 0.9, 0.99), seed: int = 42
) -> ExperimentOutput:
    """Lease (local) reads vs fully ordered reads across read ratios.

    A leaseholding leader serves reads from local state without a log
    round, cutting messages and latency on read-heavy workloads; the
    composition's cross-epoch guard (no lease reads in a sealed epoch)
    keeps this linearizable through reconfigurations — which the run
    includes, to keep the measurement honest.
    """
    table = Table(
        "T7: ordered reads vs leader-lease local reads (with one reconfig)",
        ["read ratio", "mode", "ops/s", "p50 (ms)", "msgs/op", "lease reads"],
    )
    out = ExperimentOutput("T7", tables=[table])
    for ratio in read_ratios:
        for mode in ("log", "lease"):
            result = run_experiment(
                "speculative",
                seed=seed,
                clients=4,
                run_for=3.0,
                read_ratio=ratio,
                read_mode=mode,
                schedule=[ReconfigStep(1.5, ("n1", "n2", "n4"))],
            )
            summary = result.collector.latency_summary()
            lease_reads = sum(
                getattr(replica, "lease_reads", 0)
                for replica in result.service.replicas.values()
            )
            table.add_row(
                f"{ratio:.0%}",
                mode,
                f"{result.throughput():.0f}",
                f"{summary.p50_ms:.2f}",
                f"{result.messages_per_op():.1f}",
                lease_reads,
            )
            out.data[(ratio, mode)] = {
                "throughput": result.throughput(),
                "p50_ms": summary.p50_ms,
                "msgs_per_op": result.messages_per_op(),
                "lease_reads": lease_reads,
            }
    return out


# ---------------------------------------------------------------------------
# T8 — leader-side batching ablation
# ---------------------------------------------------------------------------


def exp_t8_batching(
    delays_ms: tuple[float, ...] = (0.0, 1.0, 2.0, 5.0),
    clients: int = 16,
    seed: int = 42,
) -> ExperimentOutput:
    """Batch-delay sweep: message amortisation vs added latency.

    Leader-side batching shares one Phase-2 round trip across every
    command arriving within the window. In simulation (where CPU is free)
    the win shows as message cost; the price is the window added to
    closed-loop latency — the classic knob real deployments tune.
    """
    from repro.consensus.multipaxos import PaxosParams

    table = Table(
        f"T8: leader-side batching ({clients} closed-loop clients)",
        ["batch delay (ms)", "ops/s", "p50 (ms)", "msgs/op", "bytes/op"],
    )
    series = Series("T8: message cost vs batch delay", "delay (ms)", "msgs/op")
    out = ExperimentOutput("T8", tables=[table], series=[series])
    for delay_ms in delays_ms:
        params = PaxosParams(batch_delay=delay_ms / 1000.0)
        result = run_experiment(
            "speculative",
            seed=seed,
            clients=clients,
            run_for=2.5,
            engine_params=params,
            schedule=[ReconfigStep(1.2, ("n1", "n2", "n4"))],
        )
        summary = result.collector.latency_summary()
        table.add_row(
            f"{delay_ms:.1f}",
            f"{result.throughput():.0f}",
            f"{summary.p50_ms:.2f}",
            f"{result.messages_per_op():.1f}",
            f"{result.bytes_per_op():.0f}",
        )
        series.add(delay_ms, result.messages_per_op())
        out.data[delay_ms] = {
            "throughput": result.throughput(),
            "p50_ms": summary.p50_ms,
            "msgs_per_op": result.messages_per_op(),
        }

    # Second regime: CPU-bound replicas (150 µs of service time per
    # message). Here queueing dominates and batching turns from a
    # msgs-vs-latency trade into a straight win on both axes.
    cpu_table = Table(
        "T8b: the same sweep with CPU-bound replicas (150 µs/message)",
        ["batch delay (ms)", "ops/s", "p50 (ms)", "msgs/op"],
    )
    out.tables.append(cpu_table)
    for delay_ms in delays_ms:
        params = PaxosParams(batch_delay=delay_ms / 1000.0)
        result = run_experiment(
            "speculative",
            seed=seed,
            clients=24,
            run_for=2.0,
            engine_params=params,
            processing_delay=0.00015,
        )
        summary = result.collector.latency_summary()
        cpu_table.add_row(
            f"{delay_ms:.1f}",
            f"{result.throughput():.0f}",
            f"{summary.p50_ms:.2f}",
            f"{result.messages_per_op():.1f}",
        )
        out.data[("cpu", delay_ms)] = {
            "throughput": result.throughput(),
            "p50_ms": summary.p50_ms,
            "msgs_per_op": result.messages_per_op(),
        }
    return out


ALL_EXPERIMENTS = {
    "F5": exp_f5_warmjoin,
    "T6": exp_t6_detector,
    "T7": exp_t7_leases,
    "T8": exp_t8_batching,
    "T1": exp_t1_overhead,
    "F1": exp_f1_timeline,
    "T2": exp_t2_statesize,
    "F2": exp_f2_storm,
    "T3": exp_t3_failover,
    "F3": exp_f3_latency,
    "T4": exp_t4_msgcost,
    "F4": exp_f4_ablation,
    "T5": exp_t5_blocks,
}
