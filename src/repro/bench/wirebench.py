"""T9 wire benchmark: binary codec vs JSON, micro and end-to-end.

Two measurements, both run for each wire format on the same invocation so
the comparison is apples-to-apples:

* **codec micro-benchmark** — encode and decode ops/s over a fixed mix of
  protocol payloads shaped like real commit-path traffic (client request,
  accept/accepted/decide with single-command batches, heartbeats, an
  8-command batch), plus the encoded size of one mix;
* **live macro-benchmark** — a 3-replica :class:`LocalCluster` of real
  processes, driven by a pipelined client; reports committed ops/s and
  p50/p99 client latency.

Results are printed as tables and written to ``BENCH_wire.json`` so later
PRs have a perf trajectory to compare against. The exit code is a
regression gate: non-zero when the binary codec loses its lead (see
``--smoke`` thresholds in :func:`run_wire_bench`).

Run via ``repro bench wire [--smoke] [--skip-live]``.
"""

from __future__ import annotations

import json
import platform
import random
import time
from typing import Any, Callable

from repro.consensus.ballot import Ballot
from repro.consensus.interface import Batch
from repro.consensus.messages import Accept, Accepted, Decide, Heartbeat, HeartbeatAck
from repro.core.client import ClientReply, ClientRequest
from repro.metrics import Table, percentile, summarize_throughput
from repro.net import codec
from repro.types import ClientId, Command, CommandId, NodeId


def payload_mix(seed: int) -> list[tuple[str, Any]]:
    """One commit round of protocol traffic plus periodic/batched extras.

    The mix mirrors what actually crosses the wire per committed command
    in a 3-replica cluster: request in, phase-2 accept out to two
    followers, their accepteds back, the decide fan-out, the reply — and,
    at lower frequency, heartbeats and a batched accept under load.
    """
    rng = random.Random(seed)
    ballot = Ballot(rng.randint(1, 9), NodeId("n1"))

    def cmd(seq: int) -> Command:
        return Command(
            CommandId(ClientId("cli"), seq),
            "set",
            (f"key-{rng.randint(0, 999)}", rng.randint(0, 1 << 30)),
        )

    one = Batch((cmd(1),))
    return [
        ("ClientRequest", ClientRequest(cmd(1), NodeId("cli"))),
        ("Accept", Accept(ballot, 7, one)),
        ("Accepted", Accepted(ballot, 7)),
        ("Accepted", Accepted(ballot, 7)),
        ("Decide", Decide(7, one)),
        ("ClientReply", ClientReply(CommandId(ClientId("cli"), 1), "ok", 1, 7)),
        ("Heartbeat", Heartbeat(ballot, 7, 12.5)),
        ("HeartbeatAck", HeartbeatAck(ballot, 12.5)),
        ("Accept(batch8)", Accept(ballot, 8, Batch(tuple(cmd(i) for i in range(8))))),
    ]


def _best_rate(task: Callable[[], int], reps: int) -> float:
    """Best-of-``reps`` items/second for ``task`` (returns items done)."""
    best = float("inf")
    items = 1
    for _ in range(reps):
        start = time.perf_counter()
        items = task()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return items / best


def bench_codec(seed: int, smoke: bool) -> dict[str, Any]:
    """Encode/decode ops/s per wire format over the payload mix."""
    mix = [p for _, p in payload_mix(seed)]
    loops = 40 if smoke else 400
    reps = 3 if smoke else 7
    results: dict[str, Any] = {}
    for fmt in codec.WIRE_FORMATS:
        blobs = [codec.encode_payload(p, fmt) for p in mix]
        for payload, blob in zip(mix, blobs):
            if codec.decode_payload(blob) != payload:
                raise RuntimeError(f"{fmt} round-trip mismatch for {payload!r}")

        def encode_task() -> int:
            for _ in range(loops):
                for payload in mix:
                    codec.encode_payload(payload, fmt)
            return loops * len(mix)

        def decode_task() -> int:
            for _ in range(loops):
                for blob in blobs:
                    codec.decode_payload(blob)
            return loops * len(mix)

        results[fmt] = {
            "encode_ops_s": round(_best_rate(encode_task, reps), 1),
            "decode_ops_s": round(_best_rate(decode_task, reps), 1),
            "mix_bytes": sum(len(b) for b in blobs),
            "frame_overhead": codec.frame_overhead(fmt),
        }
    results["ratios"] = {
        "encode": round(
            results["binary"]["encode_ops_s"] / results["json"]["encode_ops_s"], 3
        ),
        "decode": round(
            results["binary"]["decode_ops_s"] / results["json"]["decode_ops_s"], 3
        ),
        "bytes": round(
            results["json"]["mix_bytes"] / results["binary"]["mix_bytes"], 3
        ),
    }
    return results


def bench_live(seed: int, smoke: bool, window: int = 32) -> dict[str, Any]:
    """Commit throughput + latency through a real 3-replica cluster."""
    from repro.net.client import LiveClient
    from repro.net.cluster import LocalCluster

    ops = 300 if smoke else 2000
    warmup = 20 if smoke else 100
    results: dict[str, Any] = {}
    for fmt in codec.WIRE_FORMATS:
        with LocalCluster(replicas=3, seed=seed, wire=fmt) as cluster:
            cluster.start()
            with LiveClient(
                "bench", cluster.addresses, view=cluster.initial,
                request_timeout=2.0, wire_format=fmt,
            ) as client:
                client.submit_pipelined(
                    [("set", (f"warm-{i}", i), 64) for i in range(warmup)],
                    window=window,
                )
                workload = [
                    ("set", (f"key-{i % 256}", i), 64) for i in range(ops)
                ]
                start = time.perf_counter()
                latencies = client.submit_pipelined(workload, window=window)
                elapsed = time.perf_counter() - start
        ms = [lat * 1000.0 for lat in latencies]
        throughput = summarize_throughput(ops, elapsed)
        results[fmt] = {
            "ops": ops,
            "window": window,
            "elapsed_s": round(elapsed, 4),
            "ops_per_s": round(throughput.ops_per_s, 1),
            "p50_ms": round(percentile(ms, 50), 3),
            "p99_ms": round(percentile(ms, 99), 3),
        }
    results["ratios"] = {
        "throughput": round(
            results["binary"]["ops_per_s"] / results["json"]["ops_per_s"], 3
        ),
    }
    return results


def _render(codec_results: dict[str, Any], live_results: dict[str, Any] | None) -> None:
    table = Table(
        "T9 codec micro-benchmark (payload mix)",
        ["format", "encode ops/s", "decode ops/s", "mix bytes", "overhead/frame"],
    )
    for fmt in codec.WIRE_FORMATS:
        row = codec_results[fmt]
        table.add_row(
            fmt, f"{row['encode_ops_s']:.0f}", f"{row['decode_ops_s']:.0f}",
            row["mix_bytes"], row["frame_overhead"],
        )
    ratios = codec_results["ratios"]
    table.add_row(
        "binary/json", f"{ratios['encode']:.2f}x", f"{ratios['decode']:.2f}x",
        f"{1 / ratios['bytes']:.2f}x", "",
    )
    print(table.render())
    print()
    if live_results is None:
        return
    live = Table(
        "T9 live 3-replica commit throughput (pipelined client)",
        ["format", "ops", "ops/s", "p50 ms", "p99 ms"],
    )
    for fmt in codec.WIRE_FORMATS:
        row = live_results[fmt]
        live.add_row(
            fmt, row["ops"], f"{row['ops_per_s']:.0f}",
            f"{row['p50_ms']:.2f}", f"{row['p99_ms']:.2f}",
        )
    live.add_row(
        "binary/json", "", f"{live_results['ratios']['throughput']:.2f}x", "", "",
    )
    print(live.render())
    print()


def run_wire_bench(
    smoke: bool = False,
    out: str = "BENCH_wire.json",
    seed: int = 42,
    skip_live: bool = False,
    window: int = 32,
) -> int:
    """Run the wire benchmark; returns a regression-gate exit code.

    Full runs gate on the acceptance bar (binary >= 2x encode/decode,
    faster live throughput); smoke runs use looser thresholds (1.4x codec,
    live within noise) so CI fails on regressions, not on machine jitter.
    """
    mode = "smoke" if smoke else "full"
    print(f"T9 wire benchmark ({mode}, seed={seed}, window={window})")
    codec_results = bench_codec(seed, smoke)
    live_results = None if skip_live else bench_live(seed, smoke, window=window)
    _render(codec_results, live_results)

    report = {
        "bench": "T9-wire",
        "mode": mode,
        "seed": seed,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "payload_mix": [name for name, _ in payload_mix(seed)],
        "codec": codec_results,
        "live": live_results,
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")

    codec_floor = 1.4 if smoke else 2.0
    live_floor = 0.85 if smoke else 1.0
    failures: list[str] = []
    ratios = codec_results["ratios"]
    if ratios["encode"] < codec_floor:
        failures.append(f"binary encode only {ratios['encode']:.2f}x json "
                        f"(floor {codec_floor}x)")
    if ratios["decode"] < codec_floor:
        failures.append(f"binary decode only {ratios['decode']:.2f}x json "
                        f"(floor {codec_floor}x)")
    if live_results is not None:
        live_ratio = live_results["ratios"]["throughput"]
        if live_ratio < live_floor:
            failures.append(f"binary live throughput only {live_ratio:.2f}x "
                            f"json (floor {live_floor}x)")
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0
