"""Ballot numbers for Paxos-family protocols.

A ballot is a pair ``(round, proposer)`` ordered lexicographically, so two
candidates can never collide on the same ballot: rounds break most ties and
the proposer id breaks the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.types import NodeId


@dataclass(frozen=True, slots=True, order=True)
class Ballot:
    """Totally ordered ballot (round, proposer id)."""

    round: int
    proposer: NodeId

    ZERO: ClassVar["Ballot"]

    def next_for(self, proposer: NodeId) -> "Ballot":
        """Smallest ballot owned by ``proposer`` strictly greater than self."""
        return Ballot(self.round + 1, proposer)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.round},{self.proposer})"


# The zero ballot precedes every real ballot (real rounds start at 1).
Ballot.ZERO = Ballot(0, NodeId(""))
