"""Single-decree Paxos (the Synod protocol).

This is the agreement kernel underlying the Multi-Paxos engine: one slot,
one chosen value, classic two-phase structure. It is written against an
abstract ``send`` function rather than the simulator so its safety can be
property-tested exhaustively over adversarial schedules (see
``tests/test_synod.py``), independent of timing.

Roles:

* :class:`SynodAcceptor` — the persistent voter. Its promise/accept state
  is the part Paxos requires to survive crashes.
* :class:`SynodProposer` — drives one ballot through Phase 1 and Phase 2
  and reports the chosen value.

The Multi-Paxos engine reimplements this logic inlined per slot (sharing
Phase 1 across all slots, the standard optimisation); keeping the
single-decree version separate documents the kernel and pins its safety
with direct tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.consensus.ballot import Ballot
from repro.errors import ProtocolError
from repro.types import NodeId


@dataclass(frozen=True, slots=True)
class SynodPrepare:
    ballot: Ballot


@dataclass(frozen=True, slots=True)
class SynodPromise:
    ballot: Ballot
    accepted_ballot: Ballot
    accepted_value: Any


@dataclass(frozen=True, slots=True)
class SynodAccept:
    ballot: Ballot
    value: Any


@dataclass(frozen=True, slots=True)
class SynodAccepted:
    ballot: Ballot


@dataclass(frozen=True, slots=True)
class SynodNack:
    ballot: Ballot
    promised: Ballot


class SynodAcceptor:
    """Acceptor for one decree.

    ``durability`` is any object with the
    :class:`repro.storage.InstanceDurability` surface (the single-decree
    case uses slot 0); it defaults to a no-op so in-memory property tests
    run unchanged. State recorded there is restored on construction,
    which is exactly the persistence Paxos demands of a voter.
    """

    def __init__(self, node: NodeId, durability: Any = None):
        self.node = node
        self.promised: Ballot = Ballot.ZERO
        self.accepted_ballot: Ballot = Ballot.ZERO
        self.accepted_value: Any = None
        if durability is None:
            from repro.storage import NULL_DURABILITY

            durability = NULL_DURABILITY
        self.durable = durability
        recovered = self.durable.recover()
        if recovered is not None:
            self.promised = recovered.promised
            if 0 in recovered.accepted:
                self.accepted_ballot, self.accepted_value = recovered.accepted[0]

    def on_prepare(self, msg: SynodPrepare) -> SynodPromise | SynodNack:
        if msg.ballot > self.promised:
            self.promised = msg.ballot
            self.durable.record_promise(msg.ballot)
            return SynodPromise(msg.ballot, self.accepted_ballot, self.accepted_value)
        return SynodNack(msg.ballot, self.promised)

    def on_accept(self, msg: SynodAccept) -> SynodAccepted | SynodNack:
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            self.accepted_ballot = msg.ballot
            self.accepted_value = msg.value
            self.durable.record_accept(0, msg.ballot, msg.value)
            return SynodAccepted(msg.ballot)
        return SynodNack(msg.ballot, self.promised)


class SynodProposer:
    """Proposer driving one ballot.

    The caller supplies ``send(dest, message)``; replies are fed back via
    :meth:`on_promise` / :meth:`on_accepted` / :meth:`on_nack`. When a
    majority accepts, ``on_chosen(value)`` fires exactly once.
    """

    def __init__(
        self,
        node: NodeId,
        acceptors: list[NodeId],
        send: Callable[[NodeId, Any], None],
        on_chosen: Callable[[Any], None],
    ):
        self.node = node
        self.acceptors = list(acceptors)
        self.send = send
        self.on_chosen = on_chosen
        self.quorum = len(self.acceptors) // 2 + 1
        self.ballot: Ballot = Ballot.ZERO
        self.value: Any = None
        self.phase: str = "idle"
        self.chosen = False
        self._promises: dict[NodeId, SynodPromise] = {}
        self._accepts: set[NodeId] = set()
        self.preempted_by: Ballot | None = None

    def start(self, round_number: int, value: Any) -> None:
        """Begin Phase 1 with ballot ``(round_number, self.node)``."""
        if round_number <= self.ballot.round:
            raise ProtocolError("rounds must increase across attempts")
        self.ballot = Ballot(round_number, self.node)
        self.value = value
        self.phase = "prepare"
        self._promises.clear()
        self._accepts.clear()
        self.preempted_by = None
        for acceptor in self.acceptors:
            self.send(acceptor, SynodPrepare(self.ballot))

    def on_promise(self, sender: NodeId, msg: SynodPromise) -> None:
        if self.phase != "prepare" or msg.ballot != self.ballot:
            return
        self._promises[sender] = msg
        if len(self._promises) >= self.quorum:
            self._enter_phase_two()

    def _enter_phase_two(self) -> None:
        # Adopt the highest-ballot previously accepted value, if any:
        # the heart of Paxos safety.
        best = max(self._promises.values(), key=lambda p: p.accepted_ballot)
        if best.accepted_ballot > Ballot.ZERO:
            self.value = best.accepted_value
        self.phase = "accept"
        for acceptor in self.acceptors:
            self.send(acceptor, SynodAccept(self.ballot, self.value))

    def on_accepted(self, sender: NodeId, msg: SynodAccepted) -> None:
        if self.phase != "accept" or msg.ballot != self.ballot:
            return
        self._accepts.add(sender)
        if len(self._accepts) >= self.quorum and not self.chosen:
            self.chosen = True
            self.phase = "done"
            self.on_chosen(self.value)

    def on_nack(self, sender: NodeId, msg: SynodNack) -> None:
        if msg.ballot != self.ballot or self.phase in ("idle", "done"):
            return
        self.phase = "preempted"
        self.preempted_by = msg.promised
