"""A trivial single-sequencer SMR engine.

The second, deliberately simple non-reconfigurable building block: the
lowest-id member is the *sequencer*; it assigns slots to proposals in
arrival order and broadcasts decisions. Learners deliver in order and pull
missing slots from the sequencer.

This block is **not fault tolerant** — if the sequencer crashes the
instance stalls forever. That is the point: the paper's composition takes
*whatever* static SMR it is given, and experiment T5 runs the full
reconfigurable service over this block to demonstrate block-agnosticism
(and, with a sequencer crash, that the composition's availability is that
of its building block within an epoch — reconfiguration is what replaces a
sick instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.consensus.interface import SmrEngine, Transport, proposal_key
from repro.consensus.log import DecidedLog
from repro.consensus import messages as m
from repro.consensus.multipaxos import payload_size
from repro.types import Decision, Membership, NodeId, Slot


@dataclass(slots=True)
class SequencerParams:
    """Timing parameters for the sequencer block (simulated seconds)."""

    proposal_retry_interval: float = 0.10
    gap_probe_interval: float = 0.05
    catchup_batch: int = 200
    protocol_overhead_bytes: int = 64


class SequencerEngine(SmrEngine):
    """One member's slice of the single-sequencer instance."""

    def __init__(
        self,
        transport: Transport,
        membership: Membership,
        on_decide: Callable[[Decision], None],
        params: SequencerParams | None = None,
    ):
        super().__init__(transport, membership, on_decide)
        self.params = params if params is not None else SequencerParams()
        self.peers = membership.sorted_nodes()
        self.sequencer: NodeId = self.peers[0]
        self.is_sequencer = transport.node == self.sequencer
        self.log = DecidedLog(on_decide)
        self.next_slot: Slot = 0
        self.assigned_keys: dict[Any, Slot] = {}
        self.awaiting: dict[Any, Any] = {}

    @classmethod
    def factory(cls, params: SequencerParams | None = None):
        def make(
            transport: Transport,
            membership: Membership,
            on_decide: Callable[[Decision], None],
        ) -> "SequencerEngine":
            return cls(transport, membership, on_decide, params=params)

        return make

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        self._arm_retry()
        if not self.is_sequencer:
            self._arm_gap_probe()

    @property
    def next_undelivered_slot(self) -> Slot:
        return self.log.next_to_deliver

    # -- proposing ---------------------------------------------------------------

    def propose(self, payload: Any) -> None:
        if self.stopped:
            return
        key = proposal_key(payload)
        if key is not None:
            if self._key_settled(key):
                return
            self.awaiting[key] = payload
        if self.is_sequencer:
            self._order(payload)
        else:
            self.transport.send(
                self.sequencer,
                m.ProposeForward(payload),
                size=self.params.protocol_overhead_bytes + payload_size(payload),
            )

    def _key_settled(self, key: Any) -> bool:
        slot = self.assigned_keys.get(key)
        return slot is not None and self.log.is_decided(slot)

    def _order(self, payload: Any) -> None:
        key = proposal_key(payload)
        if key is not None and key in self.assigned_keys:
            return  # duplicate submission
        slot = self.next_slot
        self.next_slot += 1
        if key is not None:
            self.assigned_keys[key] = slot
        self._record(slot, payload)
        decide = m.Decide(slot, payload)
        size = self.params.protocol_overhead_bytes + payload_size(payload)
        for peer in self.peers:
            if peer != self.transport.node:
                self.transport.send(peer, decide, size=size)

    # -- messages -------------------------------------------------------------------

    def on_message(self, inner: Any, sender: NodeId) -> None:
        if self.stopped:
            return
        if isinstance(inner, m.ProposeForward):
            if self.is_sequencer:
                self._order(inner.payload)
        elif isinstance(inner, m.Decide):
            self._record(inner.slot, inner.value)
        elif isinstance(inner, m.CatchupRequest):
            entries = self.log.decided_range(inner.from_slot, self.params.catchup_batch)
            if entries:
                size = self.params.protocol_overhead_bytes + sum(
                    payload_size(v) for _, v in entries
                )
                self.transport.send(sender, m.CatchupReply(tuple(entries)), size=size)
        elif isinstance(inner, m.CatchupReply):
            for slot, value in inner.entries:
                self._record(slot, value)

    def _record(self, slot: Slot, value: Any) -> None:
        key = proposal_key(value)
        self.log.record(slot, value, self.transport.now)
        if key is not None:
            self.awaiting.pop(key, None)
            self.assigned_keys.setdefault(key, slot)

    # -- timers ------------------------------------------------------------------------

    def _arm_retry(self) -> None:
        if self.stopped:
            return
        self.transport.set_timer(
            self.params.proposal_retry_interval, self._retry_tick, label="seq-retry"
        )

    def _retry_tick(self) -> None:
        if self.stopped:
            return
        for key, payload in list(self.awaiting.items()):
            if self._key_settled(key):
                del self.awaiting[key]
            elif not self.is_sequencer:
                self.transport.send(
                    self.sequencer,
                    m.ProposeForward(payload),
                    size=self.params.protocol_overhead_bytes + payload_size(payload),
                )
            else:
                self._order(payload)
        self._arm_retry()

    def _arm_gap_probe(self) -> None:
        if self.stopped:
            return
        self.transport.set_timer(
            self.params.gap_probe_interval, self._gap_probe, label="seq-gap-probe"
        )

    def _gap_probe(self) -> None:
        if self.stopped:
            return
        # Always probe: this heals both interior gaps and tail losses
        # (a dropped Decide for the newest slot leaves no visible gap).
        # Empty probes cost one small message and draw no reply.
        self.transport.send(
            self.sequencer,
            m.CatchupRequest(self.log.next_to_deliver),
            size=self.params.protocol_overhead_bytes,
        )
        self._arm_gap_probe()
