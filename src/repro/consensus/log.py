"""In-order delivery buffer for decided slots.

Engines learn decisions out of order (a ``Decide`` for slot 7 may arrive
before slot 5's). :class:`DecidedLog` stores decided values by slot and
releases them to the application callback strictly in slot order with no
gaps and no duplicates, which is the contract of the static SMR interface.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import AgreementViolation
from repro.types import Decision, Slot, Time


class DecidedLog:
    """Gap-free, in-order delivery of decided slots."""

    def __init__(self, on_deliver: Callable[[Decision], None], first_slot: Slot = 0):
        self._on_deliver = on_deliver
        self._decided: dict[Slot, Any] = {}
        self.next_to_deliver: Slot = first_slot
        self.max_decided: Slot = first_slot - 1

    def __len__(self) -> int:
        return len(self._decided)

    def is_decided(self, slot: Slot) -> bool:
        return slot in self._decided

    def value(self, slot: Slot) -> Any:
        return self._decided.get(slot)

    def decided_range(self, start: Slot, count: int) -> list[tuple[Slot, Any]]:
        """Up to ``count`` consecutive decided entries starting at ``start``."""
        out: list[tuple[Slot, Any]] = []
        slot = start
        while len(out) < count and slot in self._decided:
            out.append((slot, self._decided[slot]))
            slot += 1
        return out

    def record(self, slot: Slot, value: Any, now: Time) -> list[Decision]:
        """Record a decision; returns the decisions released in order.

        Recording the same slot twice with the same value is idempotent;
        recording a *different* value for an already-decided slot is a
        safety violation and raises.
        """
        if slot in self._decided:
            if self._decided[slot] != value:
                raise AgreementViolation(
                    f"slot {slot} decided twice with different values: "
                    f"{self._decided[slot]!r} vs {value!r}"
                )
            return []
        self._decided[slot] = value
        if slot > self.max_decided:
            self.max_decided = slot
        released: list[Decision] = []
        while self.next_to_deliver in self._decided:
            decision = Decision(
                slot=self.next_to_deliver,
                payload=self._decided[self.next_to_deliver],
                decided_at=now,
            )
            self.next_to_deliver += 1
            released.append(decision)
        for decision in released:
            self._on_deliver(decision)
        return released

    @property
    def has_gap(self) -> bool:
        """True when a decided slot exists beyond the delivery watermark."""
        return self.max_decided >= self.next_to_deliver
