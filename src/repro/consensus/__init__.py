"""Non-reconfigurable (static-membership) SMR building blocks.

This package provides the black boxes the paper composes:

* :mod:`repro.consensus.synod` — single-decree Paxos, the agreement kernel.
* :mod:`repro.consensus.multipaxos` — a static Multi-Paxos replicated log
  with heartbeat-based leader election, the primary building block.
* :mod:`repro.consensus.sequencer` — a trivial single-orderer log, a second
  (non-fault-tolerant) block proving the composition is block-agnostic.
* :mod:`repro.consensus.interface` — the narrow API the composition layer
  relies on: ``propose`` in, ordered gap-free ``Decision`` stream out.

Nothing in here knows anything about reconfiguration.
"""

from repro.consensus.ballot import Ballot
from repro.consensus.interface import (
    InstanceMessage,
    Noop,
    SmrEngine,
    StaticSmrHost,
    Transport,
    proposal_key,
)
from repro.consensus.log import DecidedLog
from repro.consensus.multipaxos import MultiPaxosEngine, PaxosParams
from repro.consensus.sequencer import SequencerEngine
from repro.consensus.synod import SynodAcceptor, SynodProposer

__all__ = [
    "Ballot",
    "DecidedLog",
    "InstanceMessage",
    "MultiPaxosEngine",
    "Noop",
    "PaxosParams",
    "SequencerEngine",
    "SmrEngine",
    "StaticSmrHost",
    "SynodAcceptor",
    "SynodProposer",
    "Transport",
    "proposal_key",
]
