"""Wire messages of the static SMR engines (Multi-Paxos and sequencer).

All messages are immutable dataclasses. They are *inner* payloads: the
hosting process wraps them in :class:`repro.consensus.interface.InstanceMessage`
so several engine instances (one per epoch) can share one network endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.consensus.ballot import Ballot
from repro.types import Slot


@dataclass(frozen=True, slots=True)
class Prepare:
    """Phase-1a: candidate asks acceptors to promise ballot for slots >= base."""

    ballot: Ballot
    base_slot: Slot


@dataclass(frozen=True, slots=True)
class Promise:
    """Phase-1b: acceptor promises; carries accepted values for slots >= base.

    ``accepted`` maps slot -> (ballot, value) for every slot at or above the
    candidate's base for which this acceptor has accepted a value.
    """

    ballot: Ballot
    base_slot: Slot
    accepted: tuple[tuple[Slot, Ballot, Any], ...]


@dataclass(frozen=True, slots=True)
class PrepareNack:
    """Acceptor refuses a Prepare because it promised a higher ballot."""

    ballot: Ballot
    promised: Ballot


@dataclass(frozen=True, slots=True)
class Accept:
    """Phase-2a: leader asks acceptors to accept ``value`` at ``slot``."""

    ballot: Ballot
    slot: Slot
    value: Any


@dataclass(frozen=True, slots=True)
class Accepted:
    """Phase-2b: acceptor accepted (ballot, slot)."""

    ballot: Ballot
    slot: Slot


@dataclass(frozen=True, slots=True)
class AcceptNack:
    """Acceptor refuses an Accept because it promised a higher ballot."""

    ballot: Ballot
    slot: Slot
    promised: Ballot


@dataclass(frozen=True, slots=True)
class Decide:
    """Leader (or sequencer) announces the chosen value for ``slot``."""

    slot: Slot
    value: Any


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Leader liveness beacon; carries the decided watermark for catch-up.

    ``sent_at`` is echoed back in :class:`HeartbeatAck` so the leader can
    compute a read lease anchored at *send* time (safe against in-flight
    delays).
    """

    ballot: Ballot
    max_decided: Slot
    sent_at: float = 0.0


@dataclass(frozen=True, slots=True)
class HeartbeatAck:
    """Follower acknowledges a heartbeat; grants a slice of read lease."""

    ballot: Ballot
    echo: float


@dataclass(frozen=True, slots=True)
class ProposeForward:
    """A non-leader forwards a client payload to the current leader."""

    payload: Any


@dataclass(frozen=True, slots=True)
class CatchupRequest:
    """Lagging learner asks for decided entries starting at ``from_slot``."""

    from_slot: Slot


@dataclass(frozen=True, slots=True)
class CatchupReply:
    """Consecutive decided entries ``(slot, value)`` starting at the request."""

    entries: tuple[tuple[Slot, Any], ...]
