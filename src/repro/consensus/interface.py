"""The static SMR interface: the composition boundary of the paper.

The reconfigurable layer (:mod:`repro.core`) treats a consensus engine as a
black box with exactly this contract:

* ``propose(payload)`` — best-effort submission; the engine may decide the
  payload once, more than once (duplicate slots after retries), or never
  (callers retry at a higher layer).
* a ``Decision`` stream delivered **in slot order with no gaps** via the
  ``on_decide`` callback supplied at construction;
* ``stop()`` — cease participating (used after an epoch is sealed and its
  state handed off).

Engines are *embedded* objects, not processes: a host
:class:`repro.sim.node.Process` may run several engine instances (one per
epoch), multiplexing them over one network endpoint by wrapping engine
messages in :class:`InstanceMessage`. :class:`Transport` is the thin
adapter engines use to reach the host's network, timers, RNG and trace.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.events import Timer
from repro.sim.node import Process
from repro.types import Decision, Membership, NodeId, Time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.registry import MetricsRegistry
    from repro.sim.rng import SeededRng


@dataclass(frozen=True, slots=True)
class InstanceMessage:
    """Envelope multiplexing engine messages over a shared endpoint."""

    instance: str
    inner: Any


@dataclass(frozen=True, slots=True)
class Noop:
    """Filler value used by leaders to close log gaps. Carries no effect."""

    reason: str = "gap"


@dataclass(frozen=True, slots=True)
class Batch:
    """Several client commands decided together in one slot.

    Produced by engines with leader-side batching enabled: one Phase-2
    round trip amortises across all members of the batch. The layers above
    unpack batches — each inner command gets its own virtual-log position
    and reply — so batching is invisible to clients and to correctness.
    Reconfiguration commands are never batched (the effective-log cut is
    per slot, and a reconfiguration must own its slot).
    """

    payloads: tuple

    @property
    def size(self) -> int:
        return 16 + sum(int(getattr(p, "size", 32)) for p in self.payloads)

    def __len__(self) -> int:
        return len(self.payloads)


def proposal_key(payload: Any) -> Any | None:
    """Deduplication key of a proposable payload.

    Engines use this to avoid proposing the same logical payload into two
    slots when clients or hosts retry. Payloads without identity (``Noop``)
    return ``None`` and are never deduplicated.
    """
    if isinstance(payload, Noop):
        return None
    cid = getattr(payload, "cid", None)
    if cid is not None:
        return ("cmd", cid)
    rid = getattr(payload, "rid", None)
    if rid is not None:
        return ("reconfig", rid)
    return ("raw", payload) if isinstance(payload, (str, int, bytes, tuple)) else None


class Transport:
    """Engine-side view of its host process and simulator."""

    def __init__(self, host: "Process", instance_id: str):
        self._host = host
        self.instance_id = instance_id
        self.node: NodeId = host.node
        self.rng: "SeededRng" = host.sim.rng.fork(f"{host.node}/{instance_id}")

    @property
    def now(self) -> Time:
        return self._host.now

    @property
    def metrics(self) -> "MetricsRegistry":
        """The host runtime's metrics registry (shared by every engine)."""
        from repro.metrics.registry import metrics_of

        return metrics_of(self._host.sim)

    @property
    def durability(self):
        """This instance's durability handle (no-op on storage-less hosts).

        Hosts opt in by exposing a ``storage`` attribute holding a
        :class:`repro.storage.ReplicaStore`; everyone else gets the null
        handle and keeps the pre-durability in-memory behaviour.
        """
        from repro.storage import NULL_DURABILITY

        store = getattr(self._host, "storage", None)
        if store is None:
            return NULL_DURABILITY
        return store.instance(self.instance_id)

    def send(self, dest: NodeId, inner: Any, size: int | None = None) -> None:
        self._host.send(dest, InstanceMessage(self.instance_id, inner), size=size)

    def set_timer(self, delay: float, action: Callable[[], None], label: str = "") -> Timer:
        return self._host.set_timer(delay, action, label=label or f"{self.instance_id}-timer")

    def trace(self, category: str, **detail: Any) -> None:
        self._host.trace(category, instance=self.instance_id, **detail)


# Factory signature every engine implementation provides (see
# MultiPaxosEngine.factory / SequencerEngine.factory): given a transport,
# the fixed membership and a decision callback, build a ready engine.
EngineFactory = Callable[[Transport, Membership, Callable[[Decision], None]], "SmrEngine"]


class SmrEngine(abc.ABC):
    """Abstract non-reconfigurable SMR engine (one member's slice of it)."""

    def __init__(
        self,
        transport: Transport,
        membership: Membership,
        on_decide: Callable[[Decision], None],
    ):
        self.transport = transport
        self.membership = membership
        self.on_decide = on_decide
        self.stopped = False

    @abc.abstractmethod
    def start(self) -> None:
        """Begin participating (arm timers, kick off election, ...)."""

    @abc.abstractmethod
    def propose(self, payload: Any) -> None:
        """Best-effort submission of ``payload`` for some log slot."""

    @abc.abstractmethod
    def on_message(self, inner: Any, sender: NodeId) -> None:
        """Handle an engine protocol message (already unwrapped)."""

    def stop(self) -> None:
        """Cease participation; safe to call more than once."""
        self.stopped = True

    @property
    @abc.abstractmethod
    def next_undelivered_slot(self) -> int:
        """Watermark: first slot not yet delivered to ``on_decide``."""

    def has_read_lease(self, now: Time) -> bool:
        """True if this member may serve linearizable local reads *now*.

        A lease means: no other member can commit a write this member has
        not seen, for the lease's remaining validity. Engines without a
        lease mechanism return False and reads take the log path.
        """
        return False

    def read_freshness_age(self, now: Time) -> float:
        """Seconds since this member last heard from an active leader.

        The bounded-staleness read mode uses this to decide whether a
        local (non-linearizable) read is still inside the configured
        staleness bound. Leaders are fresh by definition (0.0); engines
        without a leader concept return +inf and follower reads fall
        back to the ordered path.
        """
        return float("inf")


class StaticSmrHost(Process):
    """A process hosting exactly one static SMR engine.

    This is the standalone deployment used by the raw-building-block
    benchmarks (experiment T1) and the engine unit tests. The
    reconfigurable replica in :mod:`repro.core.reconfig` plays the same
    hosting role for many engines at once.
    """

    INSTANCE_ID = "static"

    def __init__(self, sim, node: NodeId, membership: Membership, engine_factory: EngineFactory):
        super().__init__(sim, node)
        self.decisions: list[Decision] = []
        self._on_external_decide: Callable[[Decision], None] | None = None
        transport = Transport(self, self.INSTANCE_ID)
        self.engine = engine_factory(transport, membership, self._handle_decide)

    def set_decision_callback(self, callback: Callable[[Decision], None]) -> None:
        self._on_external_decide = callback

    def _handle_decide(self, decision: Decision) -> None:
        self.decisions.append(decision)
        if self._on_external_decide is not None:
            self._on_external_decide(decision)

    def propose(self, payload: Any) -> None:
        self.engine.propose(payload)

    def on_start(self) -> None:
        self.engine.start()

    def on_message(self, payload: Any, sender: NodeId) -> None:
        if isinstance(payload, InstanceMessage) and payload.instance == self.INSTANCE_ID:
            if not self.engine.stopped:
                self.engine.on_message(payload.inner, sender)

    def on_crash(self) -> None:
        self.engine.stop()
