"""Static Multi-Paxos: the primary non-reconfigurable SMR building block.

One :class:`MultiPaxosEngine` instance runs at each member of a **fixed**
membership and provides the :class:`repro.consensus.interface.SmrEngine`
contract: best-effort ``propose``, gap-free in-order decisions out.

Protocol summary
----------------

* Every member is acceptor + learner; any member may campaign to lead.
* Ballots are ``(round, node)``; a candidate runs **one** Phase 1 covering
  all slots at or above its delivery watermark (the classic Multi-Paxos
  amortisation), then leads Phase 2 per slot.
* On winning, the leader re-proposes every value reported accepted by its
  promise quorum (highest ballot wins per slot) and fills unreported gaps
  below the horizon with ``Noop`` — the standard recovery rule that makes
  leader turnover safe.
* The leader heartbeats followers; heartbeats carry the decided watermark,
  and lagging learners pull missing decisions with catch-up requests, so
  dropped ``Decide`` messages heal.
* Followers forward proposals to their current leader hint and retry on a
  timer; leaders deduplicate by :func:`repro.consensus.interface.proposal_key`
  so client/host retries do not burn extra slots in the common case.

Fail-stop is the failure model (crashed members never come back with the
same identity). This is exactly the regime the paper targets: *recovering
a member is done by reconfiguring*, which is the job of the layer above,
not of this building block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.consensus.ballot import Ballot
from repro.consensus.heartbeat import HeartbeatMonitor
from repro.consensus.interface import Batch, Noop, SmrEngine, Transport, proposal_key
from repro.consensus.log import DecidedLog
from repro.consensus import messages as m
from repro.errors import ConfigurationError
from repro.sim.events import Timer
from repro.types import Decision, Membership, NodeId, Slot


def payload_size(value: Any) -> int:
    """Approximate wire size of a proposable payload, in bytes."""
    return int(getattr(value, "size", 64))


@dataclass(slots=True)
class PaxosParams:
    """Tunable timing/batching parameters (simulated seconds)."""

    heartbeat_interval: float = 0.025
    suspect_timeout_min: float = 0.10
    suspect_timeout_max: float = 0.20
    proposal_retry_interval: float = 0.10
    accept_resend_after: float = 0.05
    catchup_batch: int = 200
    initial_campaign_delay_max: float = 0.005
    protocol_overhead_bytes: int = 96
    #: leader-side batching: commands arriving within this window share
    #: one slot (and one Phase-2 round trip). 0 disables batching.
    batch_delay: float = 0.0
    batch_max: int = 32
    #: proposer pipeline window: max Phase-2 slots open concurrently.
    #: When the window is full, batchable commands buffer and ride the
    #: next freed slot together as one batch (adaptive batching under
    #: load, even with ``batch_delay == 0``). Non-batchable payloads
    #: (reconfigurations, noops) bypass the cap — a membership change
    #: must never wait behind client traffic. 0 = unbounded.
    window: int = 0
    #: read-lease validity granted per acknowledged heartbeat. Must stay
    #: strictly below suspect_timeout_min: a follower that just granted a
    #: lease slice will not campaign (nor, via vote stickiness, vote for a
    #: challenger) until the lease has expired, which is what makes local
    #: reads at the leaseholder linearizable. Set to 0 to disable leases.
    lease_duration: float = 0.08


@dataclass(slots=True)
class _InFlight:
    """Leader-side bookkeeping for one slot awaiting a quorum of accepts."""

    value: Any
    acks: set[NodeId] = field(default_factory=set)
    sent_at: float = 0.0


class MultiPaxosEngine(SmrEngine):
    """One member's slice of a static Multi-Paxos instance."""

    def __init__(
        self,
        transport: Transport,
        membership: Membership,
        on_decide: Callable[[Decision], None],
        params: PaxosParams | None = None,
    ):
        super().__init__(transport, membership, on_decide)
        self.params = params if params is not None else PaxosParams()
        self.quorum = membership.quorum_size
        self.peers = membership.sorted_nodes()

        # Acceptor state.
        self.promised: Ballot = Ballot.ZERO
        self.accepted: dict[Slot, tuple[Ballot, Any]] = {}

        # Learner state.
        self.log = DecidedLog(on_decide)

        # Leadership state.
        self.is_leader = False
        self.ballot: Ballot = Ballot.ZERO  # our own campaign/leading ballot
        self.max_round_seen = 0
        self.leader_hint: NodeId | None = None
        self._campaigning = False
        self._promises: dict[NodeId, m.Promise] = {}
        self._campaign_base: Slot = 0
        self.next_slot: Slot = 0
        self.inflight: dict[Slot, _InFlight] = {}
        self.assigned_keys: dict[Any, Slot] = {}

        # Proposal routing state (every node).
        self.awaiting: dict[Any, Any] = {}  # key -> payload, retried until decided

        self._monitor = HeartbeatMonitor(
            transport,
            self.params.suspect_timeout_min,
            self.params.suspect_timeout_max,
            self._campaign,
        )
        self._hb_timer: Timer | None = None
        self._retry_timer: Timer | None = None
        self._last_catchup_request = -1.0
        #: leader-side batching buffer (commands awaiting a shared slot).
        self._batch: list[Any] = []
        self._batch_keys: set[Any] = set()
        self._batch_timer: Timer | None = None
        #: follower -> newest heartbeat send-time it acknowledged.
        self._hb_echoes: dict[NodeId, float] = {}
        self._last_leader_contact = float("-inf")
        # Commit-path instruments, shared with every engine on this host's
        # runtime (per-process in live clusters, cluster-wide in the sim).
        metrics = transport.metrics
        self._m_proposals = metrics.counter("paxos.proposals")
        self._m_accepts = metrics.counter("paxos.accepts_sent")
        self._m_decided = metrics.counter("paxos.decided")
        self._m_campaigns = metrics.counter("paxos.campaigns")
        self._m_elections = metrics.counter("paxos.elections")
        self._m_batch_size = metrics.histogram("paxos.batch_size")
        if self.params.lease_duration >= self.params.suspect_timeout_min:
            raise ConfigurationError(
                "lease_duration must be strictly below suspect_timeout_min "
                "or a new leader could be elected inside a live lease"
            )
        # Durable acceptor/learner state (null handle on storage-less
        # hosts). Restoring here, at the end of construction, means a
        # recovered engine is indistinguishable from a live one by the
        # time the host sees it.
        self.durable = transport.durability
        recovered = self.durable.recover()
        if recovered is not None:
            self._restore_durable(recovered)

    # -- factory ---------------------------------------------------------------

    @classmethod
    def factory(cls, params: PaxosParams | None = None):
        """Build an :data:`EngineFactory` closing over shared parameters."""

        def make(
            transport: Transport,
            membership: Membership,
            on_decide: Callable[[Decision], None],
        ) -> "MultiPaxosEngine":
            return cls(transport, membership, on_decide, params=params)

        return make

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        self._monitor.start()
        self._arm_retry_timer()
        # The lowest member id campaigns immediately so fresh instances
        # elect a leader in one round trip instead of one suspicion timeout.
        if self.transport.node == self.peers[0]:
            delay = self.transport.rng.uniform(
                0.0, self.params.initial_campaign_delay_max
            )
            self.transport.set_timer(delay, self._campaign, label="initial-campaign")

    def stop(self) -> None:
        super().stop()
        self._monitor.stop()
        if self._hb_timer is not None:
            self._hb_timer.cancel()
        if self._retry_timer is not None:
            self._retry_timer.cancel()
        if self._batch_timer is not None:
            self._batch_timer.cancel()

    @property
    def next_undelivered_slot(self) -> Slot:
        return self.log.next_to_deliver

    # -- proposing ------------------------------------------------------------------

    def propose(self, payload: Any) -> None:
        if self.stopped:
            return
        self._m_proposals.inc()
        key = proposal_key(payload)
        if key is not None:
            if key in self.awaiting or self._key_settled(key):
                # Already in flight or already decided locally: retrying
                # would only burn a duplicate slot.
                if not self._key_settled(key):
                    self._route(payload)
                return
            self.awaiting[key] = payload
        self._route(payload)

    def _key_settled(self, key: Any) -> bool:
        slot = self.assigned_keys.get(key)
        return slot is not None and self.log.is_decided(slot)

    def _route(self, payload: Any) -> None:
        if self.is_leader:
            self._assign(payload)
        elif self.leader_hint is not None and self.leader_hint != self.transport.node:
            self.transport.send(
                self.leader_hint,
                m.ProposeForward(payload),
                size=self.params.protocol_overhead_bytes + payload_size(payload),
            )
        # else: no leader known yet; the retry timer re-routes later.

    def _assign(self, payload: Any) -> None:
        """Leader: bind ``payload`` to a fresh slot and run Phase 2."""
        key = proposal_key(payload)
        if key is not None:
            if key in self._batch_keys:
                return  # already buffered in the open batch
            existing = self.assigned_keys.get(key)
            if existing is not None and (
                existing in self.inflight or self.log.is_decided(existing)
            ):
                return  # duplicate submission
        if self._batchable(payload) and (
            self.params.batch_delay > 0 or self._window_full()
        ):
            self._batch.append(payload)
            if key is not None:
                self._batch_keys.add(key)
            if len(self._batch) >= self.params.batch_max or self.params.batch_delay <= 0:
                self._flush_batch()
            elif self._batch_timer is None or not self._batch_timer.active:
                self._batch_timer = self.transport.set_timer(
                    self.params.batch_delay, self._flush_batch, label="batch"
                )
            return
        # Non-batchable payloads (reconfigurations, noops) must own their
        # slot and must not overtake buffered commands: flush first, past
        # the window cap if need be — a reconfiguration must never park
        # behind client traffic.
        self._flush_batch(force=True)
        slot = self.next_slot
        self.next_slot += 1
        if key is not None:
            self.assigned_keys[key] = slot
        self._send_accepts(slot, payload)

    def _window_full(self) -> bool:
        return self.params.window > 0 and len(self.inflight) >= self.params.window

    def _batchable(self, payload: Any) -> bool:
        # Only plain client commands batch; anything with seal semantics
        # (ReconfigCommand) or no identity (Noop) rides alone.
        from repro.core.command import ReconfigCommand

        return (
            proposal_key(payload) is not None
            and not isinstance(payload, ReconfigCommand)
            and not isinstance(payload, Noop)
        )

    def _flush_batch(self, force: bool = False) -> None:
        """Drain the batch buffer into Phase-2 slots.

        Emits slots of up to ``batch_max`` commands while the pipeline
        window has room; with ``force=True`` the window cap is ignored
        (used when a non-batchable payload must not overtake buffered
        commands). Whatever cannot be emitted stays buffered and rides
        the next freed slot — that is the adaptive-batching backpressure
        path.
        """
        if not self._batch:
            return
        if self._batch_timer is not None:
            self._batch_timer.cancel()
        while self._batch and (force or not self._window_full()):
            chunk = self._batch[: self.params.batch_max]
            del self._batch[: len(chunk)]
            slot = self.next_slot
            self.next_slot += 1
            value: Any = chunk[0] if len(chunk) == 1 else Batch(tuple(chunk))
            for payload in chunk:
                key = proposal_key(payload)
                if key is not None:
                    self._batch_keys.discard(key)
                    self.assigned_keys[key] = slot
            self._m_batch_size.record(len(chunk))
            self._send_accepts(slot, value)

    def _send_accepts(self, slot: Slot, value: Any, only: set[NodeId] | None = None) -> None:
        entry = self.inflight.get(slot)
        if entry is None:
            entry = _InFlight(value=value)
            self.inflight[slot] = entry
        entry.sent_at = self.transport.now
        accept = m.Accept(self.ballot, slot, value)
        size = self.params.protocol_overhead_bytes + payload_size(value)
        for peer in self.peers:
            if only is not None and peer not in only:
                continue
            self._m_accepts.inc()
            if peer == self.transport.node:
                self._handle_accept(accept, peer)
            else:
                self.transport.send(peer, accept, size=size)

    # -- leader election ---------------------------------------------------------------

    def _campaign(self) -> None:
        if self.stopped or self.is_leader:
            return
        self._campaigning = True
        self._m_campaigns.inc()
        round_number = self.max_round_seen + 1
        self.max_round_seen = round_number
        self.ballot = Ballot(round_number, self.transport.node)
        self._promises.clear()
        self._campaign_base = self.log.next_to_deliver
        self.transport.trace("campaign", ballot=str(self.ballot), base=self._campaign_base)
        prepare = m.Prepare(self.ballot, self._campaign_base)
        for peer in self.peers:
            if peer == self.transport.node:
                self._handle_prepare(prepare, peer)
            else:
                self.transport.send(
                    peer, prepare, size=self.params.protocol_overhead_bytes
                )

    def _become_leader(self) -> None:
        self._campaigning = False
        self.is_leader = True
        self._m_elections.inc()
        self.leader_hint = self.transport.node
        self._monitor.stop()
        # A fresh term must anchor its read lease on its *own* heartbeat
        # echoes. _step_down clears these too, but relying on that alone
        # leaves a trap: any future path that re-wins leadership without
        # a full step-down in between would inherit echoes from the
        # previous term and could report a lease it never earned.
        self._hb_echoes.clear()
        self.transport.trace("leader-elected", ballot=str(self.ballot))

        # Merge quorum knowledge: per slot, the highest-ballot accepted value
        # must be re-proposed; locally known decisions win outright.
        merged: dict[Slot, tuple[Ballot, Any]] = {}
        for promise in self._promises.values():
            for slot, ballot, value in promise.accepted:
                current = merged.get(slot)
                if current is None or ballot > current[0]:
                    merged[slot] = (ballot, value)
        horizon = self._campaign_base - 1
        if merged:
            horizon = max(horizon, max(merged))
        if self.log.max_decided > horizon:
            horizon = self.log.max_decided

        self.inflight.clear()
        for slot in range(self._campaign_base, horizon + 1):
            if self.log.is_decided(slot):
                value = self.log.value(slot)
            elif slot in merged:
                value = merged[slot][1]
            else:
                value = Noop("gap")
            key = proposal_key(value)
            if key is not None:
                self.assigned_keys[key] = slot
            self._send_accepts(slot, value)
        self.next_slot = horizon + 1

        self._heartbeat_tick()
        # Re-route everything we were asked to propose but that never made
        # it through the previous leader.
        for payload in list(self.awaiting.values()):
            self._route(payload)

    def _step_down(self, observed: Ballot) -> None:
        if observed.round > self.max_round_seen:
            self.max_round_seen = observed.round
        was_leader = self.is_leader
        self.is_leader = False
        self._campaigning = False
        self.inflight.clear()
        self._hb_echoes.clear()
        self._batch.clear()
        self._batch_keys.clear()
        if self._batch_timer is not None:
            self._batch_timer.cancel()
        if was_leader:
            self.transport.trace("leader-stepdown", observed=str(observed))
            if self._hb_timer is not None:
                self._hb_timer.cancel()
            self._monitor.start()

    # -- heartbeats -----------------------------------------------------------------------

    def _heartbeat_tick(self) -> None:
        if self.stopped or not self.is_leader:
            return
        beat = m.Heartbeat(self.ballot, self.log.max_decided, sent_at=self.transport.now)
        for peer in self.peers:
            if peer != self.transport.node:
                self.transport.send(peer, beat, size=self.params.protocol_overhead_bytes)
        # Nudge stuck Phase-2 slots (lost Accept/Accepted messages).
        now = self.transport.now
        for slot, entry in list(self.inflight.items()):
            if now - entry.sent_at >= self.params.accept_resend_after:
                missing = {p for p in self.peers if p not in entry.acks}
                self._send_accepts(slot, entry.value, only=missing)
        self._hb_timer = self.transport.set_timer(
            self.params.heartbeat_interval, self._heartbeat_tick, label="hb"
        )

    def _arm_retry_timer(self) -> None:
        if self.stopped:
            return
        self._retry_timer = self.transport.set_timer(
            self.params.proposal_retry_interval, self._retry_tick, label="proposal-retry"
        )

    def _retry_tick(self) -> None:
        if self.stopped:
            return
        for key, payload in list(self.awaiting.items()):
            if self._key_settled(key):
                del self.awaiting[key]
            else:
                self._route(payload)
        self._arm_retry_timer()

    # -- message dispatch ---------------------------------------------------------------------

    def on_message(self, inner: Any, sender: NodeId) -> None:
        if self.stopped:
            return
        if isinstance(inner, m.Prepare):
            self._handle_prepare(inner, sender)
        elif isinstance(inner, m.Promise):
            self._handle_promise(inner, sender)
        elif isinstance(inner, m.PrepareNack):
            self._handle_prepare_nack(inner, sender)
        elif isinstance(inner, m.Accept):
            self._handle_accept(inner, sender)
        elif isinstance(inner, m.Accepted):
            self._handle_accepted(inner, sender)
        elif isinstance(inner, m.AcceptNack):
            self._handle_accept_nack(inner, sender)
        elif isinstance(inner, m.Decide):
            self._record_decision(inner.slot, inner.value)
        elif isinstance(inner, m.Heartbeat):
            self._handle_heartbeat(inner, sender)
        elif isinstance(inner, m.HeartbeatAck):
            self._handle_heartbeat_ack(inner, sender)
        elif isinstance(inner, m.ProposeForward):
            self.propose(inner.payload)
        elif isinstance(inner, m.CatchupRequest):
            self._handle_catchup_request(inner, sender)
        elif isinstance(inner, m.CatchupReply):
            for slot, value in inner.entries:
                self._record_decision(slot, value)

    # -- acceptor ----------------------------------------------------------------------------

    def _handle_prepare(self, msg: m.Prepare, sender: NodeId) -> None:
        # Vote stickiness: while we are hearing from a live leader (or are
        # the leader), refuse challengers without raising our promise —
        # this is what makes the read lease sound, and it also damps
        # disruptive campaigns. The challenger's own suspicion timeout
        # guarantees it only campaigns once real silence has elapsed.
        recently_led = self.is_leader or (
            self.transport.now - self._last_leader_contact
            < self.params.suspect_timeout_min
        )
        if recently_led and msg.ballot.proposer != self.leader_hint:
            self._reply(sender, m.PrepareNack(msg.ballot, self.promised))
            return
        if msg.ballot.round > self.max_round_seen:
            self.max_round_seen = msg.ballot.round
        if msg.ballot > self.promised:
            self.promised = msg.ballot
            # Durable before the Promise leaves: a crash after this line
            # restores an acceptor that still honours what it said here.
            self.durable.record_promise(msg.ballot)
            # Granting a promise re-arms suspicion, the usual duel damper.
            self._monitor.heard_from_leader()
            accepted = tuple(
                (slot, ballot, value)
                for slot, (ballot, value) in sorted(self.accepted.items())
                if slot >= msg.base_slot
            )
            reply = m.Promise(msg.ballot, msg.base_slot, accepted)
        else:
            reply = m.PrepareNack(msg.ballot, self.promised)
        self._reply(sender, reply)

    def _handle_accept(self, msg: m.Accept, sender: NodeId) -> None:
        if msg.ballot.round > self.max_round_seen:
            self.max_round_seen = msg.ballot.round
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            self.accepted[msg.slot] = (msg.ballot, msg.value)
            # Durable before the Accepted vote leaves the process.
            self.durable.record_accept(msg.slot, msg.ballot, msg.value)
            self.leader_hint = msg.ballot.proposer
            self._last_leader_contact = self.transport.now
            self._monitor.heard_from_leader()
            self._reply(sender, m.Accepted(msg.ballot, msg.slot))
        else:
            self._reply(sender, m.AcceptNack(msg.ballot, msg.slot, self.promised))

    def _reply(self, dest: NodeId, reply: Any) -> None:
        if dest == self.transport.node:
            self.on_message(reply, dest)
        else:
            self.transport.send(dest, reply, size=self.params.protocol_overhead_bytes)

    # -- candidate / leader ---------------------------------------------------------------------

    def _handle_promise(self, msg: m.Promise, sender: NodeId) -> None:
        if not self._campaigning or msg.ballot != self.ballot:
            return
        self._promises[sender] = msg
        if len(self._promises) >= self.quorum:
            self._become_leader()

    def _handle_prepare_nack(self, msg: m.PrepareNack, sender: NodeId) -> None:
        if msg.ballot != self.ballot:
            return
        if msg.promised > self.ballot:
            self._step_down(msg.promised)

    def _handle_accepted(self, msg: m.Accepted, sender: NodeId) -> None:
        if not self.is_leader or msg.ballot != self.ballot:
            return
        entry = self.inflight.get(msg.slot)
        if entry is None:
            return
        entry.acks.add(sender)
        if len(entry.acks) >= self.quorum:
            value = entry.value
            del self.inflight[msg.slot]
            self._record_decision(msg.slot, value)
            decide = m.Decide(msg.slot, value)
            size = self.params.protocol_overhead_bytes + payload_size(value)
            for peer in self.peers:
                if peer != self.transport.node:
                    self.transport.send(peer, decide, size=size)
            # A slot just left the pipeline window; commands that were
            # buffered behind it ride out now as one batch — unless a
            # live batch timer is still gathering within its latency
            # bound.
            if self._batch and (
                len(self._batch) >= self.params.batch_max
                or self._batch_timer is None
                or not self._batch_timer.active
            ):
                self._flush_batch()

    def _handle_accept_nack(self, msg: m.AcceptNack, sender: NodeId) -> None:
        if msg.ballot != self.ballot:
            return
        if msg.promised > self.ballot:
            self._step_down(msg.promised)

    # -- recovery -----------------------------------------------------------------------------------

    def _restore_durable(self, state) -> None:
        """Resume from recovered acceptor/learner state (boot-time only).

        The acceptor watermarks come back verbatim; decided slots replay
        through :meth:`_record_decision`, so the host observes them in
        the usual ``on_decide`` order (the durability handle's dedup
        mirror makes the re-record a no-op). Round watermarks feed
        ``max_round_seen`` so a future campaign of ours starts above
        every ballot we ever acknowledged.
        """
        self.promised = state.promised
        self.accepted = dict(state.accepted)
        rounds = [self.max_round_seen, self.promised.round]
        rounds.extend(ballot.round for ballot, _ in state.accepted.values())
        self.max_round_seen = max(rounds)
        for slot in sorted(state.decided):
            self._record_decision(slot, state.decided[slot])

    # -- learner ------------------------------------------------------------------------------------

    def _record_decision(self, slot: Slot, value: Any) -> None:
        # Durable before the decision is acted on (and, on the leader,
        # before the Decide broadcast below in _handle_accepted).
        self.durable.record_decide(slot, value)
        released = self.log.record(slot, value, self.transport.now)
        if released:
            self._m_decided.inc(len(released))
        inner = value.payloads if isinstance(value, Batch) else (value,)
        for payload in inner:
            key = proposal_key(payload)
            if key is not None:
                self.awaiting.pop(key, None)
                self.assigned_keys.setdefault(key, slot)
        if released:
            self.transport.trace(
                "decide", upto=self.log.next_to_deliver - 1, count=len(released)
            )

    def _handle_heartbeat(self, msg: m.Heartbeat, sender: NodeId) -> None:
        if msg.ballot.round > self.max_round_seen:
            self.max_round_seen = msg.ballot.round
        if msg.ballot >= self.promised:
            self.leader_hint = msg.ballot.proposer
            self._last_leader_contact = self.transport.now
            self._monitor.heard_from_leader()
            if self.is_leader and msg.ballot > self.ballot:
                self._step_down(msg.ballot)
            elif self.params.lease_duration > 0:
                self._reply(sender, m.HeartbeatAck(msg.ballot, msg.sent_at))
        if msg.max_decided >= self.log.next_to_deliver:
            self._request_catchup(sender)

    def _handle_heartbeat_ack(self, msg: m.HeartbeatAck, sender: NodeId) -> None:
        if not self.is_leader or msg.ballot != self.ballot:
            return
        previous = self._hb_echoes.get(sender, float("-inf"))
        if msg.echo > previous:
            self._hb_echoes[sender] = msg.echo

    def has_read_lease(self, now: float) -> bool:
        """True while a quorum acknowledged heartbeats recently enough.

        The lease is anchored at heartbeat *send* time: with the quorum's
        (quorum-1)-th freshest echo at time t, no other member can be
        elected (vote stickiness + suspicion timeouts exceed the lease)
        before ``t + lease_duration``, hence no write can commit that this
        leader has not itself ordered.
        """
        if self.stopped or not self.is_leader or self.params.lease_duration <= 0:
            return False
        others_needed = self.quorum - 1
        if others_needed == 0:
            return True
        echoes = sorted(self._hb_echoes.values(), reverse=True)
        if len(echoes) < others_needed:
            return False
        anchor = echoes[others_needed - 1]
        return now < anchor + self.params.lease_duration

    def read_freshness_age(self, now: float) -> float:
        """Seconds of silence from the leader (0.0 while leading).

        Feeds the bounded-staleness follower-read mode: a member that
        heard a heartbeat or accept recently serves local reads that are
        at most that-silence-plus-a-bound stale. Stopped engines are
        infinitely stale — a sealed epoch's state must not be read past
        its hand-off.
        """
        if self.stopped:
            return float("inf")
        if self.is_leader:
            return 0.0
        return now - self._last_leader_contact

    def _request_catchup(self, target: NodeId) -> None:
        now = self.transport.now
        if now - self._last_catchup_request < self.params.heartbeat_interval:
            return
        self._last_catchup_request = now
        self.transport.send(
            target,
            m.CatchupRequest(self.log.next_to_deliver),
            size=self.params.protocol_overhead_bytes,
        )

    def _handle_catchup_request(self, msg: m.CatchupRequest, sender: NodeId) -> None:
        entries = self.log.decided_range(msg.from_slot, self.params.catchup_batch)
        if not entries:
            return
        size = self.params.protocol_overhead_bytes + sum(
            payload_size(v) for _, v in entries
        )
        self.transport.send(sender, m.CatchupReply(tuple(entries)), size=size)
