"""Heartbeat-based failure detection for leader-ful engines.

:class:`HeartbeatMonitor` encapsulates the "when do I suspect the leader"
logic shared by the Multi-Paxos engine (and usable by any leader-based
protocol): a randomized suspicion timeout that is re-armed every time we
hear from the current leader, firing a campaign callback when it expires.

Randomizing the timeout per node (uniform in ``[min, max]``) is the
standard duelling-candidates mitigation: two followers rarely give up on a
dead leader at exactly the same instant.
"""

from __future__ import annotations

from typing import Callable

from repro.consensus.interface import Transport
from repro.sim.events import Timer


class HeartbeatMonitor:
    """Suspicion timer around a (possibly changing) leader."""

    def __init__(
        self,
        transport: Transport,
        timeout_min: float,
        timeout_max: float,
        on_suspect: Callable[[], None],
    ):
        self._transport = transport
        self._timeout_min = timeout_min
        self._timeout_max = timeout_max
        self._on_suspect = on_suspect
        self._timer: Timer | None = None
        self._stopped = False

    def start(self) -> None:
        self._stopped = False
        self._arm()

    def stop(self) -> None:
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def heard_from_leader(self) -> None:
        """Re-arm the suspicion timeout: the leader is alive."""
        if not self._stopped:
            self._arm()

    def _arm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        delay = self._transport.rng.uniform(self._timeout_min, self._timeout_max)
        self._timer = self._transport.set_timer(delay, self._fire, label="hb-suspect")

    def _fire(self) -> None:
        if self._stopped:
            return
        self._on_suspect()
        # Re-arm so a failed campaign (split votes, partition) retries
        # after another randomized interval rather than stalling forever.
        self._arm()
