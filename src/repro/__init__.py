"""repro — reconfigurable SMR from non-reconfigurable building blocks.

Reproduction of Bortnikov, Chockler, Perelman, Roytman, Shachor,
Shnayderman: *"Brief announcement: reconfigurable state machine
replication from non-reconfigurable building blocks"* (PODC 2012).

The common entry points are re-exported here::

    from repro import Simulator, ReplicatedService
    from repro.apps.kvstore import KvStateMachine

    sim = Simulator(seed=7)
    service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)

See README.md for a tour, DESIGN.md for the system inventory, and
PROTOCOL.md for the protocol itself.
"""

from repro.core.client import Client, ClientParams
from repro.core.reconfig import ReconfigParams, ReconfigurableReplica
from repro.core.service import ReplicatedService
from repro.sim.network import LatencyModel, ZonedLatencyModel
from repro.sim.runner import Simulator
from repro.types import Command, CommandId, Configuration, Membership

__version__ = "1.0.0"

__all__ = [
    "Client",
    "ClientParams",
    "Command",
    "CommandId",
    "Configuration",
    "LatencyModel",
    "Membership",
    "ReconfigParams",
    "ReconfigurableReplica",
    "ReplicatedService",
    "Simulator",
    "ZonedLatencyModel",
    "__version__",
]
