"""Wall-clock :class:`repro.core.runtime.Runtime` over an asyncio loop.

Where :class:`repro.sim.runner.Simulator` advances a virtual clock through
an event queue, :class:`LiveRuntime` reads the event loop's monotonic clock
and turns ``schedule``/``at`` into ``loop.call_later`` callbacks. Protocol
code cannot tell the difference: a :class:`repro.sim.node.Process` (and
therefore the whole reconfigurable replica stack) runs unmodified.

Determinism obviously does not survive the move to real time and real
sockets — that is the point of the simulator — but the seeded RNG tree is
kept so that per-node timer jitter is still reproducible in isolation.
"""

from __future__ import annotations

import asyncio
import random
import signal
import sys
from typing import Any, Callable

from repro.errors import SimulationError
from repro.metrics.registry import MetricsRegistry
from repro.net.transport import TcpTransport
from repro.sim.rng import SeededRng
from repro.sim.trace import TraceLog, TraceRecord
from repro.types import NodeId, Time


def make_event_loop(uvloop_mode: str = "auto") -> tuple[asyncio.AbstractEventLoop, str]:
    """Build an event loop, preferring uvloop when asked and available.

    ``uvloop_mode`` is ``"auto"`` (use uvloop if importable, silently fall
    back to stock asyncio — the same fallback style as wire-format
    negotiation), ``"on"`` (require uvloop, raise if missing) or ``"off"``.
    Returns ``(loop, implementation_name)``.
    """
    if uvloop_mode not in ("auto", "on", "off"):
        raise SimulationError(f"unknown uvloop mode {uvloop_mode!r}")
    if uvloop_mode in ("auto", "on"):
        try:
            import uvloop  # type: ignore[import-not-found]
        except ImportError:
            if uvloop_mode == "on":
                raise SimulationError(
                    "uvloop requested with --uvloop on but is not installed"
                ) from None
        else:
            return uvloop.new_event_loop(), "uvloop"
    return asyncio.new_event_loop(), "asyncio"


class LiveCall:
    """Handle to one ``call_later`` callback (``ScheduledCall`` protocol).

    Mirrors :class:`repro.sim.events.Event` closely enough that
    :class:`repro.sim.events.Timer` can wrap it: ``time``, ``cancelled``,
    ``cancel()``. A fired call reads as cancelled, matching the simulator's
    "executed events are inactive" convention.
    """

    __slots__ = ("time", "cancelled", "label", "_handle")

    def __init__(self, time: Time, label: str = ""):
        self.time = time
        self.cancelled = False
        self.label = label
        self._handle: asyncio.TimerHandle | None = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()


class EchoTraceLog(TraceLog):
    """Trace log that also streams records to stderr (``serve --verbose``)."""

    def emit(self, time: Time, source: str, category: str, **detail: Any) -> None:
        super().emit(time, source, category, **detail)
        print(TraceRecord(time, source, category, detail), file=sys.stderr, flush=True)


class LiveRuntime:
    """Run registered processes on the wall clock over a TCP transport."""

    def __init__(
        self,
        transport: TcpTransport,
        seed: int = 42,
        trace_enabled: bool = True,
        trace_capacity: int | None = 200_000,
        echo_trace: bool = False,
        uvloop: str = "auto",
    ):
        self.rng = SeededRng(seed)
        self.network = transport
        trace_cls = EchoTraceLog if echo_trace else TraceLog
        self.trace = trace_cls(enabled=trace_enabled, capacity=trace_capacity)
        self._loop, self.loop_impl = make_event_loop(uvloop)
        self._t0 = self._loop.time()
        self._processes: dict[NodeId, Any] = {}
        self._started = False
        self.events_executed = 0
        # One registry per replica process: the transport, every consensus
        # engine and the reconfigurable replica all record into it, and the
        # #metrics endpoint snapshots it.
        self.metrics = MetricsRegistry()
        transport.bind_metrics(self.metrics)
        transport.bind_clock(lambda: self.now)
        # Reconnect jitter and link-loss draws come from seed-derived RNGs,
        # so a seeded chaos run reproduces its transport-level timing. An
        # RNG injected at transport construction wins over this ambient one.
        transport.bind_rng(random.Random(seed))

    # -- clock & scheduling (Runtime protocol) ------------------------------

    @property
    def now(self) -> Time:
        """Seconds of wall-clock time since this runtime was created."""
        return self._loop.time() - self._t0

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> LiveCall:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        call = LiveCall(self.now + delay, label=label)

        def fire() -> None:
            if call.cancelled:
                return
            self.events_executed += 1
            try:
                action()
            finally:
                call.cancelled = True  # fired calls read as inactive

        call._handle = self._loop.call_later(delay, fire)
        return call

    # Alias used by Process.set_timer (mirrors Simulator).
    schedule_event = schedule

    def at(self, time: Time, action: Callable[[], None], label: str = "") -> LiveCall:
        return self.schedule(max(0.0, time - self.now), action, label=label)

    # -- process registry ---------------------------------------------------

    def register_process(self, process: Any) -> None:
        if process.node in self._processes:
            raise SimulationError(f"process {process.node!r} already registered")
        self._processes[process.node] = process
        self.network.register(process.node, process.deliver)
        # WAL group commit: wrap every inbound chunk's dispatch in the
        # store's group window, so the records written while handling one
        # chunk of protocol traffic share a single fsync (see
        # TcpTransport.add_dispatch_group for the safety argument).
        store = getattr(process, "storage", None)
        if store is not None and hasattr(store, "group"):
            self.network.add_dispatch_group(store.group)
        if self._started:
            self._loop.call_soon(process.on_start)

    def remove_process(self, node: NodeId) -> None:
        self._processes.pop(node, None)
        self.network.unregister(node)

    def process(self, node: NodeId) -> Any | None:
        return self._processes.get(node)

    def processes(self) -> list[Any]:
        return list(self._processes.values())

    # -- running ------------------------------------------------------------

    async def start(self, host: str, port: int) -> None:
        """Bind the TCP server and start every registered process."""
        await self.network.start(host, port)
        self._started = True
        for process in list(self._processes.values()):
            process.on_start()

    def run(self, host: str, port: int, handle_signals: bool = True) -> None:
        """Serve until :meth:`stop` (or SIGINT/SIGTERM). Blocks."""
        asyncio.set_event_loop(self._loop)
        if handle_signals:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._loop.add_signal_handler(sig, self.stop)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # platforms/threads without signal support
        self._loop.run_until_complete(self.start(host, port))
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.network.close())
            self._loop.close()

    def stop(self) -> None:
        """Request a clean shutdown (thread-safe)."""
        self._loop.call_soon_threadsafe(self._loop.stop)
