"""Scheduled fault injection against a live TCP cluster.

The simulator has had declarative chaos since the beginning: a
:class:`~repro.sim.failures.FailureSchedule` armed by a
:class:`~repro.sim.failures.FailureInjector`. This module ports that
subsystem to the live runtime so the same schedule vocabulary runs against
real processes and real sockets:

* **crash** = ``SIGKILL`` of the replica's OS process (fail-stop, no
  goodbye, exactly the paper's model);
* **restart** = respawn of the process — with **total amnesia** on a
  storage-less cluster, or with **crash recovery** (checkpoint + WAL
  replay, see :mod:`repro.storage`) when the cluster runs durable;
* **partition / link drop / delay / loss** = transport-level, through the
  :class:`~repro.net.transport.LinkPolicy` hooks — no processes are
  harmed, which is the point: a partitioned replica keeps running and
  keeps trying, as a real partitioned replica would.

Link rules reach the replicas over the wire: each ``repro serve --chaos``
process registers a **chaos endpoint** (``<node>#chaos``) on its
transport, and the :class:`ChaosController` pushes
:class:`ChaosCommand` frames to it. The endpoint lives entirely in the
serve wiring — replica/protocol code cannot see the schedule, preserving
the simulator's honesty rule.

On top of the controller, :func:`run_chaos_scenario` closes the
correctness loop for live runs: a workload client records a
client-observed :class:`~repro.verify.histories.History` while a seeded
schedule crashes, partitions, and heals the cluster around a live
reconfiguration, and the recorded history is fed to the same
Wing–Gong linearizability checker the simulator uses. Exposed as the
``repro chaos`` CLI subcommand.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from repro.net import codec
from repro.net.client import LiveClient, LiveClientError
from repro.net.observe import poll_cluster, reconfig_spans
from repro.net.transport import LinkPolicy, TcpTransport
from repro.sim.failures import (
    CrashAt,
    DelayLinkAt,
    DropLinkAt,
    FailureAction,
    FailureSchedule,
    HealAt,
    LoseLinkAt,
    PartitionAt,
    RestartAt,
)
from repro.types import ClientId, CommandId, NodeId
from repro.verify.histories import History, Operation
from repro.verify.linearizability import LinearizabilityResult, check_kv_linearizable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.cluster import LocalCluster

#: suffix distinguishing a replica's chaos endpoint from the replica itself.
CHAOS_SUFFIX = "#chaos"


def chaos_endpoint(node: str) -> NodeId:
    """Transport endpoint id of ``node``'s chaos admin handler."""
    return NodeId(f"{node}{CHAOS_SUFFIX}")


# ---------------------------------------------------------------------------
# Wire protocol (registered in repro.net.codec's bootstrap)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ChaosCommand:
    """Controller -> replica: install or remove one link rule.

    ``op`` is one of ``partition | drop | delay | lose | heal |
    heal_all``; ``side_a``/``side_b`` carry the node groups (for the
    one-way ops only their first elements are used as ``src``/``dst``),
    ``value`` carries seconds for ``delay`` and the rate for ``lose``.
    """

    cid: CommandId
    op: str
    name: str = ""
    side_a: tuple[NodeId, ...] = ()
    side_b: tuple[NodeId, ...] = ()
    value: float = 0.0


@dataclass(frozen=True, slots=True)
class ChaosAck:
    """Replica -> controller: rule applied (or rejected).

    ``detail`` is optional op-specific payload — for the ``status`` op it
    carries the replica's recovery/durability status as a JSON object
    (see :func:`install_chaos_endpoint`), empty for link ops.
    """

    cid: CommandId
    node: NodeId
    op: str
    applied: bool
    detail: str = ""


def apply_chaos_command(policy: LinkPolicy, command: ChaosCommand) -> bool:
    """Apply one :class:`ChaosCommand` to a transport's link policy."""
    op = command.op
    if op == "partition":
        policy.partition(command.name, command.side_a, command.side_b)
    elif op == "drop":
        policy.drop(command.name, command.side_a[0], command.side_b[0])
    elif op == "delay":
        policy.delay(command.name, command.side_a[0], command.side_b[0], command.value)
    elif op == "lose":
        policy.lose(command.name, command.side_a[0], command.side_b[0], command.value)
    elif op == "heal":
        policy.heal(command.name)
    elif op == "heal_all":
        policy.heal_all()
    else:
        return False
    return True


def install_chaos_endpoint(
    transport: TcpTransport, node: str, status: Any = None
) -> NodeId:
    """Register ``node``'s chaos admin endpoint on its transport.

    Only wired up under ``repro serve --chaos``: production replicas do
    not expose remote fault injection. The handler mutates the
    transport's :class:`LinkPolicy` and acks over the requester's reply
    route — it never touches replica state, so the protocol stack stays
    blind to the schedule.

    ``status`` (optional, a zero-argument callable returning a plain
    dict) answers the read-only ``status`` op — the controller uses it
    to ask a restarted replica whether it recovered durable state.
    """
    endpoint = chaos_endpoint(node)

    def handle(message: Any) -> None:
        command = message.payload
        if not isinstance(command, ChaosCommand):
            return
        if command.op == "status":
            detail = json.dumps(status()) if status is not None else ""
            ack = ChaosAck(
                command.cid, NodeId(str(node)), command.op,
                status is not None, detail,
            )
        else:
            applied = apply_chaos_command(transport.policy, command)
            ack = ChaosAck(command.cid, NodeId(str(node)), command.op, applied)
        transport.send(endpoint, message.sender, ack)

    transport.register(endpoint, handle)
    return endpoint


def _link_command(action: FailureAction, cid: CommandId) -> ChaosCommand | None:
    """The :class:`ChaosCommand` equivalent of a transport-level action."""
    if isinstance(action, PartitionAt):
        return ChaosCommand(cid, "partition", action.name, action.side_a, action.side_b)
    if isinstance(action, HealAt):
        return ChaosCommand(cid, "heal", action.name)
    if isinstance(action, DropLinkAt):
        return ChaosCommand(cid, "drop", action.name, (action.src,), (action.dst,))
    if isinstance(action, DelayLinkAt):
        return ChaosCommand(
            cid, "delay", action.name, (action.src,), (action.dst,), action.seconds
        )
    if isinstance(action, LoseLinkAt):
        return ChaosCommand(
            cid, "lose", action.name, (action.src,), (action.dst,), action.rate
        )
    return None


# ---------------------------------------------------------------------------
# The controller
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Injection:
    """One executed schedule entry, for the run's injection log."""

    scheduled_at: float  #: schedule offset (seconds from controller start)
    applied_at: float  #: wall-clock offset it actually ran at
    action: FailureAction
    acks: tuple[str, ...]  #: replicas that acknowledged (link actions only)


class ChaosController:
    """Execute a :class:`FailureSchedule` against a live :class:`LocalCluster`.

    Wall-clock semantics: action times are offsets in seconds from
    :meth:`run`'s start. Crashes are ``SIGKILL``; restarts respawn the
    process (and then **re-push every active link rule** to the restarted
    replica, which comes back with an empty policy — the window where a
    freshly restarted node briefly heard the far side is exactly the kind
    of timing bug this subsystem exists to flush out). Link rules are
    broadcast to every live replica; unreachable replicas are tolerated
    because the reachable side enforces partitions on both send and
    receive.

    The injection order is ``schedule.sorted_actions()`` — deterministic
    for a given schedule, so seeded runs inject identically; the
    :attr:`log` records what actually ran and when.
    """

    def __init__(
        self,
        cluster: "LocalCluster",
        schedule: FailureSchedule,
        *,
        name: str = "chaos-ctl",
        ack_timeout: float = 2.0,
        restart_timeout: float = 15.0,
        wire_format: str | None = None,
    ):
        self.cluster = cluster
        self.schedule = schedule
        self.node = NodeId(name)
        self.client = ClientId(name)
        self.ack_timeout = ack_timeout
        self.restart_timeout = restart_timeout
        self.wire_format = (
            codec.DEFAULT_WIRE_FORMAT if wire_format is None else wire_format
        )
        self.plan: list[FailureAction] = schedule.sorted_actions()
        self.log: list[Injection] = []
        self.errors: list[str] = []
        #: link rules currently installed (name -> action), re-pushed to
        #: restarted replicas so amnesia does not heal a partition early.
        self._active: dict[str, FailureAction] = {}
        self._seq = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: monotonic instant :meth:`run` started — every ``applied_at``
        #: offset in the log (and any aligned metrics span) is relative
        #: to this, so it is the run's shared timebase.
        self.t0: float | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ChaosController":
        """Run the schedule on a daemon thread (wall clock starts now)."""
        self._thread = threading.Thread(target=self.run, name="chaos", daemon=True)
        self._thread.start()
        return self

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def stop(self) -> None:
        """Abort between actions (the current action still completes)."""
        self._stop.set()

    def run(self) -> list[Injection]:
        """Execute the whole plan; blocking. Returns the injection log."""
        t0 = self.t0 = time.monotonic()
        for action in self.plan:
            delay = t0 + action.time - time.monotonic()
            if delay > 0 and self._stop.wait(delay):
                break
            if self._stop.is_set():
                break
            try:
                acks = self._apply(action)
            except Exception as exc:
                # The injection log must record the attempt even when the
                # action blows up (e.g. a respawn that never binds its
                # port raises from deep inside the cluster harness) —
                # otherwise the report silently shows fewer injections
                # than the schedule and the run looks healthier than it
                # was. Log first, then let the failure propagate.
                self.errors.append(
                    f"{type(action).__name__} at {action.time}: {exc}"
                )
                self.log.append(
                    Injection(action.time, time.monotonic() - t0, action, ())
                )
                raise
            self.log.append(
                Injection(action.time, time.monotonic() - t0, action, acks)
            )
        return self.log

    # -- applying actions ---------------------------------------------------

    def _apply(self, action: FailureAction) -> tuple[str, ...]:
        if isinstance(action, CrashAt):
            self.cluster.kill(str(action.node))
            return ()
        if isinstance(action, RestartAt):
            try:
                self.cluster.restart(
                    str(action.node), wait=True, timeout=self.restart_timeout
                )
            except (RuntimeError, TimeoutError) as exc:
                self.errors.append(f"restart {action.node}: {exc}")
                return ()
            # The replica restarts with an empty LinkPolicy; re-install
            # every active rule so e.g. a partitioned node that crashed
            # and came back stays partitioned until the schedule heals it.
            acked = []
            for active in self._active.values():
                command = _link_command(active, self._next_cid())
                if command is None:
                    continue
                ack = self._push(str(action.node), command)
                if ack is not None and ack.applied:
                    acked.append(f"{action.node}:{command.name}")
            return tuple(acked)
        command = _link_command(action, self._next_cid())
        if command is None:  # pragma: no cover - exhaustive over actions
            self.errors.append(f"unknown action {action!r}")
            return ()
        if isinstance(action, HealAt):
            self._active.pop(action.name, None)
        else:
            self._active[action.name] = action
        return self._broadcast(command)

    def _broadcast(self, command: ChaosCommand) -> tuple[str, ...]:
        """Push one rule to every live replica; returns who acked."""
        acked = []
        for name, proc in self.cluster.procs.items():
            if proc.poll() is not None:
                continue
            # Dedicated CommandId per (rule, replica) so acks correlate.
            per_node = ChaosCommand(
                self._next_cid(), command.op, command.name,
                command.side_a, command.side_b, command.value,
            )
            ack = self._push(name, per_node)
            if ack is not None and ack.applied:
                acked.append(name)
        return tuple(acked)

    def _next_cid(self) -> CommandId:
        self._seq += 1
        return CommandId(self.client, self._seq)

    def recovery_status(self, replica: str) -> dict[str, Any] | None:
        """Ask one replica's chaos endpoint for its durability status.

        Returns the replica's status dict (see ``ReplicaStore.status``,
        plus whatever the serve wiring adds), or None when the replica is
        unreachable or runs without a status hook.
        """
        ack = self._push(replica, ChaosCommand(self._next_cid(), "status"))
        if ack is None or not ack.applied or not ack.detail:
            return None
        try:
            return json.loads(ack.detail)
        except ValueError:
            self.errors.append(f"{replica}: undecodable status {ack.detail!r}")
            return None

    def _push(self, replica: str, command: ChaosCommand) -> ChaosAck | None:
        """Deliver one command to a replica's chaos endpoint, await the ack."""
        try:
            with socket.create_connection(
                self.cluster.addresses[replica], timeout=self.ack_timeout
            ) as sock:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.sendall(
                    codec.encode_frame(
                        self.node, chaos_endpoint(replica), command,
                        self.wire_format,
                    )
                )
                buffer = b""
                give_up_at = time.monotonic() + self.ack_timeout
                while True:
                    while len(buffer) >= 4:
                        length = codec.frame_length(buffer[:4])
                        if len(buffer) < 4 + length:
                            break
                        body = buffer[4 : 4 + length]
                        buffer = buffer[4 + length :]
                        _, _, payload = codec.decode_frame_body(body)
                        if (
                            isinstance(payload, ChaosAck)
                            and payload.cid == command.cid
                        ):
                            return payload
                    remaining = give_up_at - time.monotonic()
                    if remaining <= 0:
                        self.errors.append(f"{replica}: no ack for {command.op}")
                        return None
                    sock.settimeout(max(remaining, 0.01))
                    chunk = sock.recv(65536)
                    if not chunk:
                        self.errors.append(f"{replica}: closed during {command.op}")
                        return None
                    buffer += chunk
        except (OSError, codec.CodecError) as exc:
            self.errors.append(f"{replica}: {command.op} push failed: {exc}")
            return None


# ---------------------------------------------------------------------------
# Workload + verification: the closed loop
# ---------------------------------------------------------------------------


class HistoryRecorder:
    """Record a client-observed history around a :class:`LiveClient`.

    Every :meth:`submit` becomes one
    :class:`~repro.verify.histories.Operation` with wall-clock
    invocation/response times; a request the client gives up on is
    recorded as **pending** (``returned_at=None``) — it may still commit
    inside the cluster after we stopped waiting, and the linearizability
    checker soundly considers both possibilities.
    """

    def __init__(self, client: "LiveClient", t0: float | None = None):
        self.client = client
        #: timebase for invocation/response instants. Recorders whose
        #: operations are merged into ONE history must share a t0 —
        #: per-recorder clocks would skew real-time order across clients.
        self._t0 = time.monotonic() if t0 is None else t0
        self.operations: list[Operation] = []

    def submit(
        self, op: str, args: tuple[Any, ...], size: int = 64,
        deadline: float = 10.0,
    ) -> Any | None:
        invoked_at = time.monotonic() - self._t0
        try:
            reply = self.client.submit(op, args, size=size, deadline=deadline)
        except LiveClientError:
            self.operations.append(
                Operation(
                    cid=CommandId(self.client.client, self.client.seq),
                    op=op, args=tuple(args), invoked_at=invoked_at,
                    returned_at=None, value=None,
                )
            )
            return None
        self.operations.append(
            Operation(
                cid=CommandId(self.client.client, self.client.seq),
                op=op, args=tuple(args), invoked_at=invoked_at,
                returned_at=time.monotonic() - self._t0, value=reply.value,
            )
        )
        return reply

    def history(self) -> History:
        return History(self.operations)


def collect_aligned_spans(
    addresses: dict, live: list[str], wire: str | None, controller_t0: float
):
    """Poll live replicas' #metrics and align reconfig spans to ``t0``.

    Returns ``(fetched, aligned, errors)``: the raw snapshots, the
    reconfiguration spans re-based onto the controller's monotonic
    timebase (node -> epoch -> phase -> seconds from controller start),
    and any fetch errors. Shared by the chaos and storm drivers so both
    produce the same fault-aligned timeline shape.
    """
    fetched, errors = poll_cluster(addresses, live, wire_format=wire)
    aligned: dict[str, dict[str, dict[str, float]]] = {}
    for node, snap in fetched.items():
        node_spans = reconfig_spans(snap.snapshot)
        if node_spans:
            aligned[node] = {
                epoch: {
                    phase: snap.local_time(at) - controller_t0
                    for phase, at in phases.items()
                }
                for epoch, phases in node_spans.items()
            }
    return fetched, aligned, errors


def canonical_schedule(
    leader: str, others: Iterable[str], joiner: str, *, seed: int = 42,
    scale: float = 1.0,
) -> FailureSchedule:
    """The canonical live chaos scenario (EXPERIMENTS T10), seeded.

    Offsets are wall-clock seconds from controller start, jittered per
    seed (same seed -> same schedule -> same injection order):

    1. crash one non-leader replica (``SIGKILL``), chosen by the seed;
    2. restart it (amnesia; catch-up re-educates it);
    3. partition the **epoch-0 leader** (the lowest member id campaigns
       first, so ``leader`` should be the first initial member) away from
       everyone else — the workload then drives an epoch cut that votes
       the unreachable leader out while it still believes it leads;
    4. heal, letting the deposed leader discover its retirement.
    """
    rng = random.Random(seed)
    others = list(others)
    victim = rng.choice(others)

    def jitter(offset: float) -> float:
        return round(offset * scale * rng.uniform(0.9, 1.1), 3)

    schedule = FailureSchedule()
    schedule.crash(jitter(1.0), victim)
    schedule.restart(jitter(2.0), victim)
    schedule.partition(
        jitter(3.4), "cut-leader", [leader], [*others, joiner]
    )
    schedule.heal(jitter(5.6), "cut-leader")
    return schedule


@dataclass(slots=True)
class ChaosReport:
    """Outcome of one :func:`run_chaos_scenario` run."""

    ok: bool
    linearizable: "LinearizabilityResult"
    injections: list[Injection]
    history: History
    reconfigured: bool
    final_members: tuple[str, ...]
    elapsed: float
    seed: int
    log_dir: str
    errors: list[str] = field(default_factory=list)
    #: reconfiguration spans fetched from the replicas' #metrics
    #: endpoints, clock-aligned onto the injection log's timebase:
    #: node -> new-epoch id -> phase -> seconds from controller start.
    spans: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    #: durable runs only: node -> wal./recovery./checkpoint counters and
    #: recovery-duration summary extracted from each #metrics snapshot.
    recovery: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: local-read runs only: node -> smr.* read counters, so callers can
    #: assert the fast path actually served reads during the schedule
    #: (a lease-mode verdict over zero lease reads proves nothing).
    read_counters: dict[str, dict[str, int]] = field(default_factory=dict)

    def span_overlaps(self, at: float) -> list[str]:
        """Spans in flight at offset ``at`` (``node:epoch`` labels).

        A span is "in flight" between its earliest and latest recorded
        phase — for a complete span, decided through first-commit. This
        is what annotates each injection with the hand-offs it landed in
        the middle of.
        """
        return [
            f"{node}:epoch {epoch}"
            for node, per_epoch in sorted(self.spans.items())
            for epoch, phases in sorted(per_epoch.items())
            if phases and min(phases.values()) <= at <= max(phases.values())
        ]

    def timeline(self) -> list[dict]:
        """Injections and span phases merged into one ordered event list."""
        events: list[dict] = []
        for node, per_epoch in sorted(self.spans.items()):
            for epoch, phases in sorted(per_epoch.items()):
                for phase, at in sorted(phases.items(), key=lambda kv: kv[1]):
                    events.append({
                        "at": round(at, 4), "kind": "span",
                        "node": node, "epoch": epoch, "phase": phase,
                    })
        for injection in self.injections:
            events.append({
                "at": round(injection.applied_at, 4), "kind": "injection",
                "action": type(injection.action).__name__,
                "detail": str(injection.action),
                "scheduled_at": injection.scheduled_at,
                "overlapping_spans": self.span_overlaps(injection.applied_at),
            })
        events.sort(key=lambda event: event["at"])
        return events

    def write_timeline(self, path: Any) -> None:
        """Write the fault-aligned timeline as JSON (next to BENCH_wire.json)."""
        payload = {
            "seed": self.seed,
            "elapsed": round(self.elapsed, 3),
            "final_members": list(self.final_members),
            "reconfigured": self.reconfigured,
            "linearizable": self.linearizable.ok,
            "events": self.timeline(),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def write_recovery(self, path: Any) -> None:
        """Write the per-node recovery metrics snapshot as JSON (CI artifact)."""
        payload = {
            "seed": self.seed,
            "linearizable": self.linearizable.ok,
            "nodes": self.recovery,
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def lines(self) -> list[str]:
        """Human-readable summary (one string per line)."""
        out = [
            f"chaos run: seed={self.seed} elapsed={self.elapsed:.1f}s "
            f"(replica logs: {self.log_dir})",
            "injection log:",
        ]
        for injection in self.injections:
            during = self.span_overlaps(injection.applied_at)
            out.append(
                f"  t={injection.applied_at:6.2f}s "
                f"(scheduled {injection.scheduled_at:.2f}s) "
                f"{type(injection.action).__name__} {injection.action}"
                + (f"  [during hand-off: {', '.join(during)}]" if during else "")
            )
        for node, per_epoch in sorted(self.spans.items()):
            for epoch, phases in sorted(per_epoch.items()):
                marks = " ".join(
                    f"{phase}@{phases[phase]:.2f}s"
                    for phase in ("decided", "cut", "transfer", "first-commit")
                    if phase in phases
                )
                out.append(f"  span {node} -> epoch {epoch}: {marks}")
        completed = len(self.history.completed)
        pending = len(self.history.pending)
        out.append(
            f"history: {completed} completed + {pending} pending operations; "
            f"reconfigured={'yes' if self.reconfigured else 'NO'} "
            f"-> members {','.join(self.final_members)}"
        )
        result = self.linearizable
        verdict = "LINEARIZABLE" if result.ok else (
            f"NOT LINEARIZABLE (key {result.failing_key!r})"
        )
        out.append(
            f"verdict: {verdict} "
            f"({result.checked_ops} ops over {result.checked_keys} keys)"
        )
        for error in self.errors:
            out.append(f"  note: {error}")
        return out


def run_chaos_scenario(
    *,
    replicas: int = 3,
    seed: int = 42,
    wire: str | None = None,
    log_dir: Any = None,
    keys: int = 8,
    op_interval: float = 0.02,
    request_timeout: float = 0.5,
    scale: float = 1.0,
    schedule: FailureSchedule | None = None,
    verbose: bool = False,
    durable: bool = False,
    batching: bool = False,
    read_mode: str | None = None,
) -> ChaosReport:
    """Run a seeded failure schedule against a live cluster and verify it.

    Closes the loop the simulator has always had: workload in, chaos in
    the middle, a client-observed history out, a linearizability verdict
    at the end. Mid-schedule (during the leader partition for the
    canonical schedule) the workload client drives a live RECONFIGURE
    that replaces the isolated leader with a standby joiner.

    With ``durable=True`` every replica runs with a ``--data-dir``, so
    the schedule's restart comes back through crash recovery instead of
    amnesia; each node's wal/recovery counters land in
    :attr:`ChaosReport.recovery`.

    With ``batching=True`` every replica runs the batched, pipelined
    commit path (``--batch-delay 2 --window 16``), so the Wing–Gong
    verdict covers batch demultiplexing and batch/epoch-cut interaction
    under the same crash/partition/reconfigure schedule.

    With ``read_mode="lease"`` (or ``"follower"``) every replica serves
    read-only operations through that local read path. The canonical
    schedule partitions the epoch-0 leader — in lease mode that is the
    leaseholder — away from the majority right before the RECONFIGURE
    that votes it out, so the verdict covers exactly the hazard the
    lease machinery must survive: a deposed leaseholder serving reads
    while a new epoch starts ordering writes without it. (Follower mode
    is bounded-staleness by design, so its histories are checked for
    progress, not linearizability — see the lease tests.)
    """
    from repro.net.cluster import LocalCluster

    started = time.monotonic()
    cluster = LocalCluster(
        replicas=replicas, reserve=2, seed=seed, wire=wire,
        log_dir=log_dir, chaos=True, verbose=verbose, durable=durable,
        batch_delay_ms=2.0 if batching else 0.0,
        window=16 if batching else 0,
        read_mode=read_mode,
    )
    with cluster:
        cluster.start(timeout=20.0)
        joiner = cluster.reserved()[0]
        cluster.spawn(joiner)
        cluster.wait_ready([joiner], timeout=15.0)

        leader, others = cluster.initial[0], cluster.initial[1:]
        if schedule is None:
            schedule = canonical_schedule(
                leader, others, joiner, seed=seed, scale=scale
            )
        plan = schedule.sorted_actions()
        end_of_schedule = max((a.time for a in plan), default=0.0)
        # Cut the epoch between the last partition and the first heal (the
        # window the schedule is built to stress); fall back to mid-run.
        partition_times = [a.time for a in plan if isinstance(a, PartitionAt)]
        heal_times = [a.time for a in plan if isinstance(a, HealAt)]
        if partition_times and heal_times:
            reconfigure_at = (max(partition_times) + min(heal_times)) / 2
        else:
            reconfigure_at = end_of_schedule / 2

        controller = ChaosController(
            cluster, schedule, wire_format=wire
        ).start()
        client = LiveClient(
            "chaos-cli", cluster.addresses, view=cluster.initial,
            request_timeout=request_timeout, wire_format=wire,
        )
        recorder = HistoryRecorder(client)
        workload_rng = random.Random(seed)
        target_members = (*others, joiner)
        reconfigured = False
        counter = 0
        with client:
            t0 = time.monotonic()
            while time.monotonic() - t0 < end_of_schedule + 1.0:
                offset = time.monotonic() - t0
                if not reconfigured and offset >= reconfigure_at:
                    try:
                        client.reconfigure(target_members, deadline=25.0)
                        reconfigured = True
                    except LiveClientError as exc:
                        controller.errors.append(f"reconfigure: {exc}")
                        reconfigured = True  # do not retry with a new epoch
                    continue
                key = f"k{workload_rng.randrange(keys)}"
                if workload_rng.random() < 0.7:
                    counter += 1
                    recorder.submit("set", (key, counter), deadline=8.0)
                else:
                    recorder.submit("get", (key,), size=32, deadline=8.0)
                time.sleep(op_interval)
            # Final phase: the cluster is healed; read every key back with
            # generous deadlines so the history ends on settled state.
            for i in range(keys):
                recorder.submit("get", (f"k{i}",), size=32, deadline=15.0)
        controller.stop()
        controller.join(timeout=30.0)
        # While the replicas are still up, pull their #metrics snapshots
        # and align every reconfiguration span onto the injection log's
        # timebase (seconds from controller start) — the fault-aligned
        # hand-off timeline ISSUE 4 asks for.
        controller_t0 = controller.t0 if controller.t0 is not None else started
        live = [name for name, proc in cluster.procs.items() if proc.poll() is None]
        fetched, aligned_spans, fetch_errors = collect_aligned_spans(
            cluster.addresses, live, wire, controller_t0
        )
        recovery: dict[str, dict[str, Any]] = {}
        if durable:
            for node, snap in fetched.items():
                recovery[node] = {
                    "counters": {
                        name: value
                        for name, value in sorted(snap.snapshot.counters.items())
                        if name.startswith(("wal.", "recovery."))
                    },
                    "recovery_duration": snap.snapshot.histograms.get(
                        "recovery.duration", {}
                    ),
                }
        read_counters: dict[str, dict[str, int]] = {}
        if read_mode is not None:
            for node, snap in fetched.items():
                read_counters[node] = {
                    name: int(value)
                    for name, value in sorted(snap.snapshot.counters.items())
                    if name.startswith("smr.")
                }
    history = recorder.history()
    result = check_kv_linearizable(history)
    # Follower mode trades linearizability for bounded staleness by
    # design: its run is gated on progress + reconfiguration only, while
    # the oracle's verdict stays recorded for inspection. Lease mode is
    # claimed linearizable and gates on the verdict like ordered reads.
    lin_ok = result.ok or read_mode == "follower"
    return ChaosReport(
        ok=lin_ok and reconfigured,
        linearizable=result,
        injections=list(controller.log),
        history=history,
        reconfigured=reconfigured,
        final_members=tuple(target_members),
        elapsed=time.monotonic() - started,
        seed=seed,
        log_dir=str(cluster.log_dir),
        errors=list(controller.errors) + fetch_errors,
        spans=aligned_spans,
        recovery=recovery,
        read_counters=read_counters,
    )
