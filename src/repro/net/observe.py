"""Live-cluster observability: the ``#metrics`` admin endpoint.

Each ``repro serve`` process registers a **metrics endpoint**
(``<node>#metrics``) on its transport, mirroring the ``#chaos`` pattern:
a :class:`MetricsRequest` frame gets back one :class:`MetricsSnapshot`
carrying the replica's whole :class:`~repro.metrics.registry.MetricsRegistry`
— counters, gauges, histogram summaries, and reconfiguration spans — plus
the replica's local clock, which lets a poller align span timestamps from
different replicas onto its own timeline (see :class:`FetchedSnapshot`).

Unlike ``#chaos`` the endpoint is **on by default** (``serve
--no-metrics`` to disable): it is read-only and mutates nothing, so
exposing it carries none of the fault-injection risk that keeps the chaos
endpoint behind an opt-in flag.

:func:`fetch_metrics` is the client side (one raw socket, request/reply,
same frame loop as :meth:`ChaosController._push`); :func:`poll_cluster`
fans it out over an address book. :func:`run_metrics_demo` closes the
loop for CI and the acceptance test: a live 3-replica cluster, a
workload, one reconfiguration, and a fetched snapshot asserted to show
per-epoch commit counts and a complete decided → cut → transfer →
first-commit span.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import ReproError
from repro.metrics.registry import (
    RECONFIG_PHASES,
    SPAN_RECONFIG,
    MetricsRegistry,
    reconfig_span_complete,
    span_width,
)
from repro.metrics.report import Table
from repro.net import codec
from repro.types import ClientId, CommandId, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.transport import Address, TcpTransport

#: suffix distinguishing a replica's metrics endpoint from the replica.
METRICS_SUFFIX = "#metrics"

#: counter-name prefix of the per-epoch commit counters (suffix = epoch).
EPOCH_COMMITS_PREFIX = "smr.commits.epoch."


class MetricsFetchError(ReproError):
    """A ``#metrics`` request got no snapshot back in time."""


def metrics_endpoint(node: str) -> NodeId:
    """Transport endpoint id of ``node``'s metrics handler."""
    return NodeId(f"{node}{METRICS_SUFFIX}")


# ---------------------------------------------------------------------------
# Wire protocol (registered in repro.net.codec's bootstrap)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MetricsRequest:
    """Poller -> replica: send me your registry snapshot."""

    cid: CommandId


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Replica -> poller: one registry snapshot, plus the local clock.

    ``now`` is the replica's runtime clock (seconds since its process
    started) at snapshot time — the timebase every span timestamp and
    histogram sample in the snapshot was recorded against. Dict fields
    hold only wire-native values (str keys; int/float/nested-dict
    values), exactly as :meth:`MetricsRegistry.snapshot` emits them.
    """

    cid: CommandId
    node: NodeId
    now: float
    counters: dict[str, int]
    gauges: dict[str, float]
    histograms: dict[str, dict[str, float]]
    spans: dict[str, dict[str, float]]


def install_metrics_endpoint(
    transport: "TcpTransport",
    node: str,
    registry: MetricsRegistry,
    clock: Callable[[], float],
) -> NodeId:
    """Register ``node``'s metrics endpoint on its transport.

    Read-only: the handler snapshots the registry and replies over the
    requester's reply route. Replica/protocol code cannot see it, same
    honesty rule as the chaos endpoint.
    """
    endpoint = metrics_endpoint(node)

    def handle(message: Any) -> None:
        request = message.payload
        if not isinstance(request, MetricsRequest):
            return
        snap = registry.snapshot()
        transport.send(
            endpoint,
            message.sender,
            MetricsSnapshot(
                request.cid,
                NodeId(str(node)),
                clock(),
                snap["counters"],
                snap["gauges"],
                snap["histograms"],
                snap["spans"],
            ),
        )

    transport.register(endpoint, handle)
    return endpoint


# ---------------------------------------------------------------------------
# Client side: fetch + clock alignment
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FetchedSnapshot:
    """A snapshot plus the local monotonic instant it was received.

    Replica clocks all start at their own process start, so raw span
    times from two replicas are not comparable. ``replica_t0``
    reconstructs the replica's clock origin on the *poller's* monotonic
    timeline (fetch instant minus the replica's reported ``now``, so it
    overshoots by the reply's flight time — well under the schedule
    granularity chaos timelines care about). ``local_time`` then maps
    any replica-clock timestamp in the snapshot onto the poller's
    timeline, which is what lets the chaos report align spans from
    different replicas against its injection log.
    """

    snapshot: MetricsSnapshot
    fetched_at: float

    @property
    def replica_t0(self) -> float:
        return self.fetched_at - self.snapshot.now

    def local_time(self, replica_time: float) -> float:
        return self.replica_t0 + replica_time


def fetch_metrics(
    address: "Address",
    replica: str,
    *,
    sender: str = "metrics-cli",
    seq: int = 1,
    timeout: float = 2.0,
    wire_format: str | None = None,
) -> FetchedSnapshot:
    """Fetch one replica's snapshot over a raw socket; blocking.

    Raises :class:`MetricsFetchError` if the replica is unreachable or
    does not answer within ``timeout``.
    """
    cid = CommandId(ClientId(sender), seq)
    request = MetricsRequest(cid)
    fmt = codec.DEFAULT_WIRE_FORMAT if wire_format is None else wire_format
    try:
        with socket.create_connection(address, timeout=timeout) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.sendall(
                codec.encode_frame(
                    NodeId(sender), metrics_endpoint(replica), request, fmt
                )
            )
            buffer = b""
            give_up_at = time.monotonic() + timeout
            while True:
                while len(buffer) >= 4:
                    length = codec.frame_length(buffer[:4])
                    if len(buffer) < 4 + length:
                        break
                    body = buffer[4 : 4 + length]
                    buffer = buffer[4 + length :]
                    _, _, payload = codec.decode_frame_body(body)
                    if (
                        isinstance(payload, MetricsSnapshot)
                        and payload.cid == cid
                    ):
                        return FetchedSnapshot(payload, time.monotonic())
                remaining = give_up_at - time.monotonic()
                if remaining <= 0:
                    raise MetricsFetchError(
                        f"{replica}: no metrics snapshot within {timeout}s"
                    )
                sock.settimeout(max(remaining, 0.01))
                chunk = sock.recv(65536)
                if not chunk:
                    raise MetricsFetchError(
                        f"{replica}: connection closed before snapshot"
                    )
                buffer += chunk
    except (OSError, codec.CodecError) as exc:
        raise MetricsFetchError(f"{replica}: metrics fetch failed: {exc}") from exc


def poll_cluster(
    addresses: dict[str, "Address"],
    replicas: Iterable[str] | None = None,
    *,
    timeout: float = 2.0,
    wire_format: str | None = None,
) -> tuple[dict[str, FetchedSnapshot], list[str]]:
    """Fetch snapshots from every named replica; tolerate the unreachable.

    Returns ``(snapshots by node, error strings)`` — a dead replica
    becomes an error line, not an exception, because a poller's whole
    point is observing clusters that are partially down.
    """
    targets = list(replicas) if replicas is not None else sorted(addresses)
    snapshots: dict[str, FetchedSnapshot] = {}
    errors: list[str] = []
    for i, name in enumerate(targets):
        try:
            snapshots[name] = fetch_metrics(
                addresses[name], name, seq=i + 1,
                timeout=timeout, wire_format=wire_format,
            )
        except MetricsFetchError as exc:
            errors.append(str(exc))
    return snapshots, errors


def poll_groups(
    groups: dict[str, dict[str, "Address"]],
    *,
    timeout: float = 2.0,
    wire_format: str | None = None,
) -> tuple[dict[str, dict[str, FetchedSnapshot]], list[str]]:
    """Poll several clusters' endpoints in one call (per-shard snapshots).

    ``groups`` maps a group label to that group's address book; each
    group is polled on its own thread so one slow shard does not stretch
    the whole poll, and the result keeps the per-group structure that
    :func:`group_commit_totals` / :func:`render_group_snapshots`
    aggregate. Error strings are prefixed with the group label.
    """
    import threading

    fetched: dict[str, dict[str, FetchedSnapshot]] = {}
    errors: list[str] = []
    lock = threading.Lock()

    def poll_one(label: str, addresses: dict[str, "Address"]) -> None:
        snapshots, group_errors = poll_cluster(
            addresses, timeout=timeout, wire_format=wire_format
        )
        with lock:
            fetched[label] = snapshots
            errors.extend(f"{label}: {error}" for error in group_errors)

    threads = [
        threading.Thread(target=poll_one, args=item, daemon=True)
        for item in groups.items()
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout + 5.0)
    return fetched, errors


# ---------------------------------------------------------------------------
# Snapshot digestion + rendering
# ---------------------------------------------------------------------------


def epoch_commit_counts(snapshot: MetricsSnapshot) -> dict[int, int]:
    """Per-epoch commit counts from the snapshot's counters."""
    counts: dict[int, int] = {}
    for name, value in snapshot.counters.items():
        if name.startswith(EPOCH_COMMITS_PREFIX):
            try:
                counts[int(name[len(EPOCH_COMMITS_PREFIX):])] = int(value)
            except ValueError:  # pragma: no cover - foreign counter name
                continue
    return counts


def reconfig_spans(snapshot: MetricsSnapshot) -> dict[str, dict[str, float]]:
    """The snapshot's reconfiguration spans, keyed by new-epoch id."""
    prefix = f"{SPAN_RECONFIG}/"
    return {
        key[len(prefix):]: phases
        for key, phases in snapshot.spans.items()
        if key.startswith(prefix)
    }


def complete_reconfig_spans(
    snapshot: MetricsSnapshot,
) -> dict[str, dict[str, float]]:
    """Only the spans carrying all four phases (decided ... first-commit)."""
    return {
        epoch: phases
        for epoch, phases in reconfig_spans(snapshot).items()
        if reconfig_span_complete(phases)
    }


def snapshot_tables(snapshots: dict[str, MetricsSnapshot]) -> list[Table]:
    """Render fetched snapshots as paper-style tables (one set per poll).

    Counters and gauges go into one wide table with a column per replica
    so cross-replica skew (a lagging follower, a partitioned node) is
    visible at a glance; histograms and spans get per-metric rows.
    """
    nodes = sorted(snapshots)
    tables: list[Table] = []

    names: list[str] = sorted({n for s in snapshots.values() for n in s.counters})
    counters = Table("counters", ["counter", *nodes])
    for name in names:
        counters.add_row(
            name, *(snapshots[node].counters.get(name, 0) for node in nodes)
        )
    tables.append(counters)

    gauge_names = sorted({n for s in snapshots.values() for n in s.gauges})
    if gauge_names:
        gauges = Table("gauges", ["gauge", *nodes])
        for name in gauge_names:
            gauges.add_row(
                name,
                *(f"{snapshots[node].gauges.get(name, 0.0):.3f}" for node in nodes),
            )
        tables.append(gauges)

    histograms = Table(
        "histograms",
        ["histogram", "node", "count", "mean", "p50", "p95", "p99", "max"],
    )
    hist_rows = 0
    for node in nodes:
        for name, summary in sorted(snapshots[node].histograms.items()):
            if not summary.get("count"):
                continue
            hist_rows += 1
            histograms.add_row(
                name, node, int(summary["count"]),
                f"{summary['mean'] * 1e3:.2f}ms", f"{summary['p50'] * 1e3:.2f}ms",
                f"{summary['p95'] * 1e3:.2f}ms", f"{summary['p99'] * 1e3:.2f}ms",
                f"{summary['max'] * 1e3:.2f}ms",
            )
    if hist_rows:
        tables.append(histograms)

    spans = Table(
        "reconfiguration spans",
        ["node", "epoch", *RECONFIG_PHASES, "width"],
    )
    span_rows = 0
    for node in nodes:
        for epoch, phases in sorted(reconfig_spans(snapshots[node]).items()):
            span_rows += 1
            width = span_width(phases)
            spans.add_row(
                node, epoch,
                *(
                    f"{phases[p]:.3f}" if p in phases else "-"
                    for p in RECONFIG_PHASES
                ),
                f"{width * 1e3:.1f}ms" if width is not None else "incomplete",
            )
    if span_rows:
        tables.append(spans)
    return tables


def render_snapshots(snapshots: dict[str, MetricsSnapshot]) -> str:
    return "\n\n".join(table.render() for table in snapshot_tables(snapshots))


def group_commit_totals(
    fetched: dict[str, dict[str, FetchedSnapshot]],
) -> dict[str, int]:
    """Committed ops per group: the most-caught-up replica's total.

    Every replica of a group applies the same virtual log, so the *max*
    across its replicas (not the sum) is the group's committed-op count;
    summing across **groups** is then meaningful — it is the sharded
    service's aggregate work.
    """
    totals: dict[str, int] = {}
    for label, snapshots in fetched.items():
        totals[label] = max(
            (
                sum(epoch_commit_counts(f.snapshot).values())
                for f in snapshots.values()
            ),
            default=0,
        )
    return totals


def group_summary_table(
    fetched: dict[str, dict[str, FetchedSnapshot]],
) -> Table:
    """One row per group: replicas polled, commits, epochs in use."""
    totals = group_commit_totals(fetched)
    table = Table("shard groups", ["group", "replicas", "commits", "epochs"])
    for label in sorted(fetched):
        snapshots = fetched[label]
        epochs: set[int] = set()
        for f in snapshots.values():
            epochs.update(
                e for e, c in epoch_commit_counts(f.snapshot).items() if c
            )
        table.add_row(
            label, len(snapshots), totals[label],
            ",".join(str(e) for e in sorted(epochs)) or "-",
        )
    table.add_row("total", sum(len(s) for s in fetched.values()),
                  sum(totals.values()), "")
    return table


def render_group_snapshots(
    fetched: dict[str, dict[str, FetchedSnapshot]],
) -> str:
    """The aggregate summary table followed by each group's full tables."""
    parts = [group_summary_table(fetched).render()]
    for label in sorted(fetched):
        snapshots = {n: f.snapshot for n, f in fetched[label].items()}
        if snapshots:
            parts.append(f"=== group {label} ===\n"
                         + render_snapshots(snapshots))
    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# The demo: live cluster -> reconfigure -> snapshot with a complete span
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class MetricsDemoReport:
    """Outcome of one :func:`run_metrics_demo` run."""

    ok: bool
    snapshots: dict[str, MetricsSnapshot]
    #: per-node per-epoch commit counts, from the snapshots.
    epoch_commits: dict[str, dict[int, int]]
    #: per-node complete reconfiguration spans (epoch id -> phases).
    complete_spans: dict[str, dict[str, dict[str, float]]]
    final_members: tuple[str, ...]
    elapsed: float
    seed: int
    log_dir: str
    errors: list[str] = field(default_factory=list)

    def lines(self) -> list[str]:
        out = [
            f"metrics demo: seed={self.seed} elapsed={self.elapsed:.1f}s "
            f"members={','.join(self.final_members)} "
            f"(replica logs: {self.log_dir})"
        ]
        for node in sorted(self.epoch_commits):
            per_epoch = ", ".join(
                f"epoch {e}: {c}" for e, c in sorted(self.epoch_commits[node].items())
            )
            out.append(f"  {node} commits: {per_epoch or '(none)'}")
        for node in sorted(self.complete_spans):
            for epoch, phases in sorted(self.complete_spans[node].items()):
                width = span_width(phases)
                out.append(
                    f"  {node} reconfig span -> epoch {epoch}: complete, "
                    f"handoff {width * 1e3:.1f}ms"
                )
        out.extend(f"  note: {error}" for error in self.errors)
        out.append("verdict: " + ("OK" if self.ok else "INCOMPLETE"))
        return out


def run_metrics_demo(
    *,
    replicas: int = 3,
    seed: int = 7,
    wire: str | None = None,
    log_dir: Any = None,
    ops_per_phase: int = 40,
    verbose: bool = False,
) -> MetricsDemoReport:
    """Drive a live cluster through a reconfiguration and snapshot it.

    Starts ``replicas`` members plus one warm joiner, runs a keyed
    workload, reconfigures the first member out (survivors hand the
    boundary over locally, so they record the full decided → cut →
    transfer → first-commit span), keeps the workload going so the new
    epoch commits, then fetches every survivor's ``#metrics`` snapshot.
    ``ok`` iff some survivor shows commits in two epochs **and** a
    complete reconfiguration span — the ISSUE 4 acceptance criterion.
    """
    from repro.net.client import LiveClient, LiveClientError
    from repro.net.cluster import LocalCluster

    started = time.monotonic()
    errors: list[str] = []
    cluster = LocalCluster(
        replicas=replicas, reserve=1, seed=seed, wire=wire,
        log_dir=log_dir, verbose=verbose,
    )
    with cluster:
        cluster.start(timeout=20.0)
        joiner = cluster.reserved()[0]
        cluster.spawn(joiner)
        cluster.wait_ready([joiner], timeout=15.0)
        retiree, survivors = cluster.initial[0], cluster.initial[1:]
        target_members = (*survivors, joiner)

        rng = random.Random(seed)
        with LiveClient(
            "metrics-demo", cluster.addresses, view=cluster.initial,
            request_timeout=1.0, wire_format=wire,
        ) as client:
            for i in range(ops_per_phase):
                client.submit("set", (f"k{rng.randrange(8)}", i), deadline=10.0)
            try:
                client.reconfigure(target_members, deadline=25.0)
            except LiveClientError as exc:
                errors.append(f"reconfigure: {exc}")
            for i in range(ops_per_phase):
                client.submit(
                    "set", (f"k{rng.randrange(8)}", ops_per_phase + i),
                    deadline=10.0,
                )

        fetched, fetch_errors = poll_cluster(
            cluster.addresses, target_members, wire_format=wire
        )
        errors.extend(fetch_errors)

    snapshots = {node: f.snapshot for node, f in fetched.items()}
    epoch_commits = {n: epoch_commit_counts(s) for n, s in snapshots.items()}
    complete = {
        n: spans
        for n, s in snapshots.items()
        if (spans := complete_reconfig_spans(s))
    }
    ok = bool(complete) and any(
        len([c for c in counts.values() if c > 0]) >= 2
        for counts in epoch_commits.values()
    )
    return MetricsDemoReport(
        ok=ok,
        snapshots=snapshots,
        epoch_commits=epoch_commits,
        complete_spans=complete,
        final_members=target_members,
        elapsed=time.monotonic() - started,
        seed=seed,
        log_dir=str(cluster.log_dir),
        errors=errors,
    )
