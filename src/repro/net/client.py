"""Blocking client for a live cluster: submit commands, drive reconfigs.

:class:`LiveClient` is the synchronous counterpart of
:class:`repro.core.client.Client`. It speaks the same protocol payloads
(:class:`ClientRequest` / :class:`ClientReply` / :class:`Redirect` /
:class:`ReconfigRequest`) over plain sockets, one request at a time, with
the same retry discipline the simulated client uses:

* retries reuse the **same** :class:`CommandId`, so replica-side dedup
  gives exactly-once semantics no matter how many times we resend;
* replies come back over the connection the request went out on — only
  the contacted replica registered us as a pending client;
* a :class:`Redirect` (from a retired replica) rotates the view to the
  advertised membership, restricted to nodes we have addresses for;
* timeouts and connection errors rotate round-robin to the next replica.

Intended for tests and the ``repro cluster`` CLI, not high throughput.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Iterable

from repro.core.client import (
    ClientReply,
    ClientRequest,
    Redirect,
    ReplyBatch,
    RequestBatch,
)
from repro.core.command import ReconfigCommand, ReconfigRequest
from repro.net import codec
from repro.net.transport import Address
from repro.types import ClientId, Command, CommandId, Membership, NodeId


class LiveClientError(RuntimeError):
    """A request could not be completed before its deadline."""


#: commands coalesced per RequestBatch frame by the pipelined submit path.
#: Bounded so a lost frame costs at most this many retransmissions and a
#: single frame stays far below the codec's frame-size ceiling. 96 was the
#: sweep winner on the commit benchmark (T14): larger frames start to
#: stall the window behind one slow decode, smaller ones waste dispatch.
PIPELINE_COALESCE = 96

#: floor for one attempt's socket budget, in seconds. At the deadline edge
#: ``min(request_timeout, give_up_at - now)`` goes to zero or negative —
#: a zero/negative budget means the attempt sends and then cannot wait for
#: the reply at all (and a negative value handed to ``socket.settimeout``
#: raises ``ValueError`` instead of rotating to the next replica), so every
#: attempt is clamped to at least this much listening time.
MIN_ATTEMPT_BUDGET = 0.05


class LiveClient:
    """Synchronous request/reply client for live TCP replicas."""

    def __init__(
        self,
        name: str,
        addresses: dict[str, Address] | dict[NodeId, Address],
        view: Iterable[str] | None = None,
        request_timeout: float = 1.0,
        wire_format: str | None = None,
    ):
        self.node = NodeId(str(name))
        self.client = ClientId(str(name))
        #: address book: every replica we may ever be redirected to.
        self.addresses = {NodeId(str(n)): a for n, a in addresses.items()}
        members = list(view) if view is not None else sorted(self.addresses)
        self.view: list[NodeId] = sorted(NodeId(str(n)) for n in members)
        self.request_timeout = request_timeout
        #: outbound encoding; replicas mirror it on replies, so this picks
        #: the wire format for the whole conversation.
        self.wire_format = (
            codec.DEFAULT_WIRE_FORMAT if wire_format is None else wire_format
        )
        codec.frame_overhead(self.wire_format)  # validates the name eagerly
        self.seq = 0
        self._target_index = 0
        self._sock: socket.socket | None = None
        self._sock_node: NodeId | None = None
        #: inbound reassembly buffer; frames are consumed from ``_buf_pos``
        #: and the prefix is compacted lazily (amortized O(1) per byte).
        self._buffer = bytearray()
        self._buf_pos = 0

    # -- public API ---------------------------------------------------------

    def submit(
        self, op: str, args: tuple[Any, ...] = (), size: int = 64,
        deadline: float = 15.0,
    ) -> ClientReply:
        """Execute one state-machine command; returns its reply."""
        self.seq += 1
        cid = CommandId(self.client, self.seq)
        command = Command(cid, op, tuple(args), size)
        return self._request(ClientRequest(command, self.node), cid, deadline)

    def reconfigure(
        self, members: Iterable[str], deadline: float = 30.0
    ) -> ClientReply:
        """Reconfigure the cluster to ``members``; returns the ack reply."""
        self.seq += 1
        cid = CommandId(self.client, self.seq)
        command = ReconfigCommand(cid, Membership.from_iter(members))
        return self._request(ReconfigRequest(command, self.node), cid, deadline)

    def submit_pipelined(
        self,
        ops: list[tuple[str, tuple[Any, ...], int]],
        window: int = 32,
        deadline: float = 60.0,
    ) -> list[float]:
        """Submit ``ops`` (``(op, args, size)`` triples) with pipelining.

        Keeps up to ``window`` requests in flight on one connection and
        returns the per-command latency (seconds, submission order). Used
        by the wire benchmark: the one-at-a-time :meth:`submit` loop
        measures client round-trips, not replica throughput. Outgoing
        commands coalesce into :class:`RequestBatch` frames (up to
        :data:`PIPELINE_COALESCE` per frame) so frame overhead amortizes;
        the replica unpacks them per command. Retries reuse CommandIds
        (replica dedup keeps this exactly-once); a command not
        acknowledged by ``deadline`` raises :class:`LiveClientError`.
        """
        started = time.monotonic()
        give_up_at = started + deadline
        latencies: list[float] = [0.0] * len(ops)
        pending: list[tuple[CommandId, Command]] = []
        index_of: dict[CommandId, int] = {}
        for i, (op, args, size) in enumerate(ops):
            self.seq += 1
            cid = CommandId(self.client, self.seq)
            command = Command(cid, op, tuple(args), size)
            index_of[cid] = i
            pending.append((cid, command))
        acked: set[CommandId] = set()
        sent: dict[CommandId, float] = {}
        first_sent: dict[CommandId, float] = {}
        next_to_send = 0
        target = self.view[self._target_index % len(self.view)]
        while len(acked) < len(ops):
            if time.monotonic() >= give_up_at:
                unacked = [
                    index_of[cid] for cid, _ in pending if cid not in acked
                ]
                shown = ", ".join(str(i) for i in unacked[:10])
                if len(unacked) > 10:
                    shown += f", ... ({len(unacked) - 10} more)"
                raise LiveClientError(
                    f"pipelined run stalled: {len(acked)}/{len(ops)} "
                    f"acknowledged after {time.monotonic() - started:.1f}s "
                    f"(deadline {deadline:g}s, window {window}); "
                    f"unacknowledged op indices: [{shown}]"
                )
            try:
                sock = self._connect(target)
                # Fill the window in one sendall, packing commands into
                # RequestBatch frames: one frame's encode/dispatch cost
                # covers up to PIPELINE_COALESCE commands. Frames carry
                # their destination, so encode per target.
                burst: list[bytes] = []
                group: list[Command] = []
                now = time.monotonic()
                while next_to_send < len(pending) and len(sent) < window:
                    cid, command = pending[next_to_send]
                    next_to_send += 1
                    if cid in acked:
                        continue
                    group.append(command)
                    sent[cid] = now
                    first_sent.setdefault(cid, now)
                    if len(group) >= PIPELINE_COALESCE:
                        burst.append(self._pipeline_frame(target, group))
                        group = []
                if group:
                    burst.append(self._pipeline_frame(target, group))
                if burst:
                    sock.sendall(b"".join(burst))
                body = self._read_frame(sock, self._attempt_budget(give_up_at))
            except (OSError, codec.CodecError):
                self._drop_connection()
                self._rotate()
                target = self.view[self._target_index % len(self.view)]
                next_to_send, sent = self._first_unacked(pending, acked), {}
                time.sleep(0.05)
                continue
            if body is None:
                # Stalled: resend everything outstanding. CommandIds are
                # reused, so replica-side dedup keeps this exactly-once.
                next_to_send, sent = self._first_unacked(pending, acked), {}
                continue
            _, _, payload = codec.decode_frame_body(body)
            if isinstance(payload, Redirect):
                self._apply_redirect(payload)
                target = self.view[self._target_index % len(self.view)]
                next_to_send, sent = self._first_unacked(pending, acked), {}
                continue
            replies = (
                payload.replies if isinstance(payload, ReplyBatch) else (payload,)
            )
            for reply in replies:
                if (
                    isinstance(reply, ClientReply)
                    and reply.cid in index_of
                    and reply.cid not in acked
                ):
                    # Normal case: measured from the in-flight send. After
                    # a rewind the in-flight record is gone; fall back to
                    # the first transmission so retried commands count
                    # their full wait instead of dropping from the sample.
                    t0 = sent.pop(reply.cid, None)
                    if t0 is None:
                        t0 = first_sent.get(reply.cid, time.monotonic())
                    latencies[index_of[reply.cid]] = time.monotonic() - t0
                    acked.add(reply.cid)
        return latencies

    def _pipeline_frame(self, target: NodeId, group: list[Command]) -> bytes:
        """Encode one outgoing pipelined frame (single or batched)."""
        payload: Any = (
            ClientRequest(group[0], self.node)
            if len(group) == 1
            else RequestBatch(tuple(group), self.node)
        )
        return codec.encode_frame(self.node, target, payload, self.wire_format)

    @staticmethod
    def _first_unacked(
        pending: list[tuple[CommandId, Any]], acked: set[CommandId]
    ) -> int:
        for i, (cid, _) in enumerate(pending):
            if cid not in acked:
                return i
        return len(pending)

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "LiveClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- request loop -------------------------------------------------------

    def _attempt_budget(self, give_up_at: float) -> float:
        """Listening budget for one attempt, clamped to a positive floor."""
        return max(
            MIN_ATTEMPT_BUDGET,
            min(self.request_timeout, give_up_at - time.monotonic()),
        )

    def _request(self, payload: Any, cid: CommandId, deadline: float) -> ClientReply:
        give_up_at = time.monotonic() + deadline
        last_error: str = "no replicas tried"
        while time.monotonic() < give_up_at:
            target = self.view[self._target_index % len(self.view)]
            budget = self._attempt_budget(give_up_at)
            try:
                sock = self._connect(target)
                # Frames carry their destination; rewrite it per target.
                sock.sendall(
                    codec.encode_frame(
                        self.node, target, payload, self.wire_format
                    )
                )
                reply = self._read_reply(sock, cid, budget)
            except (OSError, codec.CodecError) as exc:
                last_error = f"{target}: {exc}"
                self._drop_connection()
                self._rotate()
                time.sleep(0.05)
                continue
            if isinstance(reply, ClientReply):
                return reply
            if isinstance(reply, Redirect):
                self._apply_redirect(reply)
                continue
            last_error = f"{target}: timed out after {budget:.2f}s"
            self._rotate()
        raise LiveClientError(f"{cid} not acknowledged in {deadline}s ({last_error})")

    def _apply_redirect(self, redirect: Redirect) -> None:
        reachable = sorted(n for n in redirect.members.nodes if n in self.addresses)
        if reachable and reachable != self.view:
            self.view = reachable
            self._target_index = 0
        else:
            self._rotate()

    def _rotate(self) -> None:
        self._target_index = (self._target_index + 1) % len(self.view)

    # -- socket plumbing ----------------------------------------------------

    def _connect(self, target: NodeId) -> socket.socket:
        if self._sock is not None and self._sock_node == target:
            return self._sock
        self._drop_connection()
        sock = socket.create_connection(self.addresses[target], timeout=2.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._sock_node = target
        self._buffer = bytearray()
        self._buf_pos = 0
        return sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close() best effort
                pass
        self._sock = None
        self._sock_node = None
        self._buffer = bytearray()
        self._buf_pos = 0

    def _read_reply(
        self, sock: socket.socket, cid: CommandId, timeout: float
    ) -> ClientReply | Redirect | None:
        """Read frames until a reply for ``cid`` arrives or ``timeout``."""
        give_up_at = time.monotonic() + max(timeout, 0.0)
        while True:
            remaining = give_up_at - time.monotonic()
            if remaining <= 0:
                return None
            frame_body = self._read_frame(sock, remaining)
            if frame_body is None:
                return None
            _, _, payload = codec.decode_frame_body(frame_body)
            if isinstance(payload, (ClientReply, Redirect)) and payload.cid == cid:
                return payload
            # Anything else (stale reply from an earlier attempt) is skipped.

    def _read_frame(self, sock: socket.socket, timeout: float) -> bytes | None:
        give_up_at = time.monotonic() + timeout
        buffer = self._buffer
        while True:
            pos = self._buf_pos
            if len(buffer) - pos >= 4:
                length = codec.frame_length(buffer[pos : pos + 4])
                if len(buffer) - pos >= 4 + length:
                    body = bytes(buffer[pos + 4 : pos + 4 + length])
                    self._buf_pos = pos + 4 + length
                    return body
            # Compact the consumed prefix before blocking on the socket so
            # the buffer never grows without bound across a long run.
            if pos:
                del buffer[:pos]
                self._buf_pos = 0
            remaining = give_up_at - time.monotonic()
            if remaining <= 0:
                return None
            sock.settimeout(remaining)
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                return None
            if not chunk:
                raise ConnectionError("replica closed the connection")
            buffer += chunk
