"""Asyncio TCP transport with the simulator network's sending surface.

:class:`TcpTransport` implements the :class:`repro.core.runtime.MessagePort`
protocol — the same ``send`` / ``register`` / ``unregister`` / ``knows``
surface as :class:`repro.sim.network.Network` — over real sockets:

* every process runs one TCP server; peers exchange length-prefixed JSON
  frames (see :mod:`repro.net.codec`);
* **outbound** traffic to each configured peer goes through a dedicated
  :class:`PeerConnection` with a bounded queue and its own writer task, so
  a slow or dead peer can never block the event loop or other peers —
  when the queue fills, the oldest frames are dropped (the protocols all
  tolerate loss and retry);
* connections are (re)established lazily with exponential backoff plus
  jitter, so a restarting replica is re-adopted without thundering herds;
* **inbound** connections from nodes outside the address book (clients,
  admin tools) are remembered as reply routes: a send to such a node goes
  back over the connection it last spoke on.

Delivery semantics match the simulator's fail-stop network: unknown or
unreachable destinations drop messages silently, and per-run statistics
(:class:`repro.sim.network.NetworkStats`) count messages and bytes by
payload type.
"""

from __future__ import annotations

import asyncio
import random
import traceback
from typing import Any, Callable

from repro.net import codec
from repro.sim.network import Message, NetworkStats
from repro.types import NodeId

#: (host, port) address of one peer process.
Address = tuple[str, int]


class PeerConnection:
    """Outbound leg to one configured peer: queue + reconnect loop."""

    def __init__(
        self,
        transport: "TcpTransport",
        peer: NodeId,
        address: Address,
        queue_limit: int,
    ):
        self.transport = transport
        self.peer = peer
        self.address = address
        self.queue: asyncio.Queue[bytes] = asyncio.Queue(maxsize=queue_limit)
        self.task: asyncio.Task | None = None
        self.connected = False
        self.dropped = 0
        self._closing = False

    def enqueue(self, frame: bytes) -> None:
        """Queue one frame; sheds the oldest backlog instead of blocking."""
        while True:
            try:
                self.queue.put_nowait(frame)
                return
            except asyncio.QueueFull:
                try:
                    self.queue.get_nowait()
                    self.dropped += 1
                    self.transport.stats.messages_dropped += 1
                except asyncio.QueueEmpty:  # pragma: no cover - race window
                    pass

    def ensure_running(self) -> None:
        if self.task is None or self.task.done():
            self.task = asyncio.get_running_loop().create_task(
                self._run(), name=f"peer:{self.peer}"
            )

    async def _run(self) -> None:
        backoff = self.transport.reconnect_min
        while not self._closing:
            writer = None
            try:
                _, writer = await asyncio.open_connection(*self.address)
                self.connected = True
                backoff = self.transport.reconnect_min
                while not self._closing:
                    frame = await self.queue.get()
                    writer.write(frame)
                    await writer.drain()
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                pass
            finally:
                self.connected = False
                if writer is not None:
                    writer.close()
            if self._closing:
                return
            # Exponential backoff with multiplicative jitter: restarting
            # peers are re-adopted quickly without synchronized stampedes.
            await asyncio.sleep(backoff * random.uniform(0.5, 1.5))
            backoff = min(backoff * 2.0, self.transport.reconnect_max)

    async def close(self) -> None:
        self._closing = True
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self.task = None


class TcpTransport:
    """Length-prefixed-frame message port over asyncio TCP."""

    def __init__(
        self,
        addresses: dict[NodeId, Address],
        *,
        queue_limit: int = 4096,
        reconnect_min: float = 0.05,
        reconnect_max: float = 2.0,
    ):
        #: address book: every node this process may *initiate* a
        #: connection to (replicas; clients stay reply-routed).
        self.addresses = {NodeId(str(n)): a for n, a in addresses.items()}
        self.queue_limit = queue_limit
        self.reconnect_min = reconnect_min
        self.reconnect_max = reconnect_max
        self.stats = NetworkStats()
        self._endpoints: dict[NodeId, Callable[[Message], None]] = {}
        self._peers: dict[NodeId, PeerConnection] = {}
        #: reply routes for unconfigured senders (clients/admin tools):
        #: node -> the StreamWriter of the connection it last spoke on.
        self._reply_routes: dict[NodeId, asyncio.StreamWriter] = {}
        self._server: asyncio.base_events.Server | None = None
        self._clock: Callable[[], float] = lambda: 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Runtime wiring: timestamps for delivered :class:`Message`\\ s."""
        self._clock = clock

    # -- endpoint management (Network-compatible) ---------------------------

    def register(self, node: NodeId, deliver: Callable[[Message], None]) -> None:
        self._endpoints[NodeId(str(node))] = deliver

    def unregister(self, node: NodeId) -> None:
        self._endpoints.pop(node, None)

    def knows(self, node: NodeId) -> bool:
        return node in self._endpoints or node in self.addresses

    # -- server side --------------------------------------------------------

    async def start(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(self._serve_connection, host, port)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                header = await reader.readexactly(4)
                length = codec.frame_length(header)
                body = await reader.readexactly(length)
                try:
                    sender, dest, payload = codec.decode_frame_body(body)
                except codec.CodecError:
                    continue  # poison frame: drop it, keep the connection
                if sender not in self.addresses:
                    self._reply_routes[sender] = writer
                try:
                    self._dispatch_local(sender, dest, payload, len(body) + 4)
                except Exception:  # noqa: BLE001
                    # A handler bug must not tear down the connection (and
                    # with it every queued frame from this peer). The
                    # simulator fails fast instead; here we log and go on.
                    traceback.print_exc()
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            codec.CodecError,
        ):
            pass
        finally:
            stale = [n for n, w in self._reply_routes.items() if w is writer]
            for node in stale:
                del self._reply_routes[node]
            writer.close()

    def _dispatch_local(
        self, sender: NodeId, dest: NodeId, payload: Any, size: int
    ) -> None:
        deliver = self._endpoints.get(dest)
        if deliver is None:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        deliver(
            Message(
                sender=sender, dest=dest, payload=payload, size=size,
                sent_at=self._clock(),
            )
        )

    # -- sending ------------------------------------------------------------

    def send(
        self, sender: NodeId, dest: NodeId, payload: Any, size: int | None = None
    ) -> None:
        """Send ``payload`` to ``dest``; unreachable destinations drop.

        Never blocks: local destinations are delivered via the event loop,
        remote ones are queued on the peer's writer task.
        """
        try:
            frame = codec.encode_frame(sender, dest, payload)
        except codec.CodecError:
            self.stats.messages_dropped += 1
            return
        self.stats.record_send(payload, len(frame) if size is None else size)
        if dest in self._endpoints:
            # Loopback: through the event loop, never synchronous re-entry
            # (mirrors the simulator's zero-delay self-delivery).
            asyncio.get_running_loop().call_soon(
                self._dispatch_local, sender, dest, payload, len(frame)
            )
            return
        address = self.addresses.get(dest)
        if address is not None:
            peer = self._peers.get(dest)
            if peer is None:
                peer = PeerConnection(self, dest, address, self.queue_limit)
                self._peers[dest] = peer
            peer.enqueue(frame)
            peer.ensure_running()
            return
        route = self._reply_routes.get(dest)
        if route is not None and not route.is_closing():
            # Reply path for clients: best-effort write on their inbound
            # connection (never awaited, so a slow client only buffers).
            route.write(frame)
            return
        self.stats.messages_dropped += 1

    # -- shutdown -----------------------------------------------------------

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for peer in self._peers.values():
            await peer.close()
        for writer in set(self._reply_routes.values()):
            writer.close()
        self._reply_routes.clear()
