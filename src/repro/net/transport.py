"""Asyncio TCP transport with the simulator network's sending surface.

:class:`TcpTransport` implements the :class:`repro.core.runtime.MessagePort`
protocol — the same ``send`` / ``register`` / ``unregister`` / ``knows``
surface as :class:`repro.sim.network.Network` — over real sockets:

* every process runs one TCP server; peers exchange length-prefixed
  frames (see :mod:`repro.net.codec`) in either the compact binary format
  (the default) or tagged JSON — the wire format is negotiated per
  connection: each side encodes outbound frames in its configured format,
  decodes both on inbound, and mirrors a requester's format on replies;
* **outbound** traffic to each configured peer goes through a dedicated
  :class:`PeerConnection` with a bounded queue and its own writer task, so
  a slow or dead peer can never block the event loop or other peers —
  when the queue fills, the oldest frames are dropped (the protocols all
  tolerate loss and retry);
* the writer task **coalesces**: each wakeup drains the whole queue (up to
  ``coalesce_max_bytes``) into a single ``writer.write`` + ``drain`` pair
  instead of one syscall round per frame; ``coalesce_delay`` optionally
  holds the first frame of a batch for that many seconds to gather more —
  an explicit flush-latency bound (0.0 = flush immediately, the default);
* connections are (re)established lazily with exponential backoff plus
  jitter, so a restarting replica is re-adopted without thundering herds;
* the **inbound** reader consumes the byte stream in large chunks and
  parses every complete frame out of each chunk, so coalesced batches are
  decoded without per-frame read syscalls;
* inbound connections from nodes outside the address book (clients,
  admin tools) are remembered as reply routes: a send to such a node goes
  back over the connection it last spoke on, encoded in whatever wire
  format that node used.

Delivery semantics match the simulator's fail-stop network: unknown or
unreachable destinations drop messages silently, and per-run statistics
(:class:`repro.sim.network.NetworkStats`) count messages and bytes by
payload type.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import traceback
from typing import Any, Callable, ContextManager

from repro.metrics.registry import MetricsRegistry
from repro.net import codec
from repro.sim.network import Message, NetworkStats
from repro.types import NodeId

#: (host, port) address of one peer process.
Address = tuple[str, int]

#: wildcard node pattern accepted by LinkPolicy link rules.
ANY_NODE = "*"


class LinkPolicy:
    """Injectable link-fault rules, consulted on every send and dispatch.

    Fault injection for the live runtime without killing processes: the
    transport asks the policy before moving a frame, so partitions, one-way
    drops, added latency, and probabilistic loss can be installed (and
    healed) at runtime — e.g. by :mod:`repro.net.chaos` pushing a
    :class:`~repro.net.chaos.ChaosCommand` to a replica's chaos endpoint.

    Every rule carries a **name** so it can be healed individually, the
    same convention as :meth:`repro.sim.network.Network.partition`. Rules:

    * ``partition(name, side_a, side_b)`` — block traffic both ways
      between two node groups (exactly the simulator's semantics);
    * ``drop(name, src, dst)`` — block ``src -> dst`` only (one-way);
    * ``delay(name, src, dst, seconds)`` — add one-way latency;
    * ``lose(name, src, dst, rate)`` — drop that fraction of frames,
      using this policy's own seeded RNG so runs are reproducible.

    ``src``/``dst`` accept ``"*"`` as a wildcard. Nodes not named by any
    rule are unaffected, so admin/chaos traffic itself passes through.
    The default policy has no rules and short-circuits to "allow".
    """

    def __init__(self, seed: int | None = None):
        self.rng = random.Random(seed)
        self._partitions: dict[str, tuple[frozenset[str], frozenset[str]]] = {}
        self._drops: dict[str, tuple[str, str]] = {}
        self._delays: dict[str, tuple[str, str, float]] = {}
        self._loss: dict[str, tuple[str, str, float]] = {}

    # -- rule management ----------------------------------------------------

    def partition(self, name: str, side_a, side_b) -> None:
        self._partitions[name] = (
            frozenset(str(n) for n in side_a),
            frozenset(str(n) for n in side_b),
        )

    def drop(self, name: str, src: str, dst: str) -> None:
        self._drops[name] = (str(src), str(dst))

    def delay(self, name: str, src: str, dst: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative link delay {seconds}")
        self._delays[name] = (str(src), str(dst), seconds)

    def lose(self, name: str, src: str, dst: str, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate {rate} outside [0, 1]")
        self._loss[name] = (str(src), str(dst), rate)

    def heal(self, name: str) -> None:
        """Remove the named rule wherever it lives; unknown names no-op."""
        self._partitions.pop(name, None)
        self._drops.pop(name, None)
        self._delays.pop(name, None)
        self._loss.pop(name, None)

    def heal_all(self) -> None:
        self._partitions.clear()
        self._drops.clear()
        self._delays.clear()
        self._loss.clear()

    def active(self) -> list[str]:
        """Names of every installed rule (diagnostics)."""
        return sorted(
            {*self._partitions, *self._drops, *self._delays, *self._loss}
        )

    # -- queries (the transport's hot path) ---------------------------------

    @staticmethod
    def _match(pattern: str, node: str) -> bool:
        return pattern == ANY_NODE or pattern == node

    def blocks(self, src: NodeId, dst: NodeId) -> bool:
        """Deterministically blocked? (partitions are two-way, drops one-way)"""
        if self._partitions:
            for side_a, side_b in self._partitions.values():
                if (src in side_a and dst in side_b) or (
                    src in side_b and dst in side_a
                ):
                    return True
        if self._drops:
            for rule_src, rule_dst in self._drops.values():
                if self._match(rule_src, src) and self._match(rule_dst, dst):
                    return True
        return False

    def should_drop(self, src: NodeId, dst: NodeId) -> bool:
        """Blocked or probabilistically lost (consults the seeded RNG)."""
        if self.blocks(src, dst):
            return True
        if self._loss:
            for rule_src, rule_dst, rate in self._loss.values():
                if self._match(rule_src, src) and self._match(rule_dst, dst):
                    if self.rng.random() < rate:
                        return True
        return False

    def latency(self, src: NodeId, dst: NodeId) -> float:
        """Injected one-way delay in seconds (sums overlapping rules)."""
        if not self._delays:
            return 0.0
        return sum(
            seconds
            for rule_src, rule_dst, seconds in self._delays.values()
            if self._match(rule_src, src) and self._match(rule_dst, dst)
        )


class PeerConnection:
    """Outbound leg to one configured peer: queue + reconnect loop."""

    def __init__(
        self,
        transport: "TcpTransport",
        peer: NodeId,
        address: Address,
        queue_limit: int,
    ):
        self.transport = transport
        self.peer = peer
        self.address = address
        self.queue: asyncio.Queue[bytes] = asyncio.Queue(maxsize=queue_limit)
        self.task: asyncio.Task | None = None
        self.connected = False
        self.ever_connected = False
        self.dropped = 0
        #: frames handed to the socket / write+drain batches flushed —
        #: ``frames_sent / batches_sent`` is the realised coalescing factor.
        self.frames_sent = 0
        self.batches_sent = 0
        self._closing = False

    def enqueue(self, frame: bytes) -> None:
        """Queue one frame; sheds the oldest backlog instead of blocking."""
        while True:
            try:
                self.queue.put_nowait(frame)
                return
            except asyncio.QueueFull:
                try:
                    self.queue.get_nowait()
                    self.dropped += 1
                    self.transport.stats.messages_dropped += 1
                    self.transport._m_frames_dropped.inc()
                except asyncio.QueueEmpty:  # pragma: no cover - race window
                    pass

    def ensure_running(self) -> None:
        if self.task is None or self.task.done():
            self.task = asyncio.get_running_loop().create_task(
                self._run(), name=f"peer:{self.peer}"
            )

    async def _run(self) -> None:
        backoff = self.transport.reconnect_min
        max_bytes = self.transport.coalesce_max_bytes
        delay = self.transport.coalesce_delay
        while not self._closing:
            writer = None
            batch: list[bytes] = []
            try:
                _, writer = await asyncio.open_connection(*self.address)
                self.connected = True
                if self.ever_connected:
                    self.transport._m_reconnects.inc()
                self.ever_connected = True
                backoff = self.transport.reconnect_min
                while not self._closing:
                    # Coalesce: take everything queued right now (bounded by
                    # ``max_bytes``) and flush it as one write+drain round.
                    batch = [await self.queue.get()]
                    if delay > 0.0 and self.queue.empty():
                        # Flush-latency bound: hold the batch open briefly
                        # to gather frames that arrive back-to-back.
                        await asyncio.sleep(delay)
                    size = len(batch[0])
                    while size < max_bytes:
                        try:
                            frame = self.queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                        batch.append(frame)
                        size += len(frame)
                    writer.write(b"".join(batch) if len(batch) > 1 else batch[0])
                    await writer.drain()
                    self.frames_sent += len(batch)
                    self.batches_sent += 1
                    self.transport._m_frames_flushed.inc(len(batch))
                    self.transport._m_batches_flushed.inc()
                    self.transport._m_bytes_flushed.inc(size)
                    batch = []
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                pass
            finally:
                self.connected = False
                if batch:
                    # Frames already popped from the queue die with the
                    # connection: account for them instead of losing them
                    # silently (delivery is not known, so count as dropped).
                    self.dropped += len(batch)
                    self.transport.stats.messages_dropped += len(batch)
                    self.transport._m_frames_dropped.inc(len(batch))
                if writer is not None:
                    writer.close()
            if self._closing:
                return
            # Exponential backoff with multiplicative jitter: restarting
            # peers are re-adopted quickly without synchronized stampedes.
            # The jitter comes from the transport's (seedable) RNG so a
            # seeded chaos run reproduces its reconnect timing.
            await asyncio.sleep(backoff * self.transport.rng.uniform(0.5, 1.5))
            backoff = min(backoff * 2.0, self.transport.reconnect_max)

    async def close(self) -> None:
        self._closing = True
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self.task = None


class TcpTransport:
    """Length-prefixed-frame message port over asyncio TCP."""

    def __init__(
        self,
        addresses: dict[NodeId, Address],
        *,
        queue_limit: int = 4096,
        reconnect_min: float = 0.05,
        reconnect_max: float = 2.0,
        wire_format: str | None = None,
        coalesce_max_bytes: int = 256 * 1024,
        coalesce_delay: float = 0.0,
        read_chunk: int = 64 * 1024,
        link_policy: LinkPolicy | None = None,
        rng: random.Random | None = None,
    ):
        #: address book: every node this process may *initiate* a
        #: connection to (replicas; clients stay reply-routed).
        self.addresses = {NodeId(str(n)): a for n, a in addresses.items()}
        self.queue_limit = queue_limit
        self.reconnect_min = reconnect_min
        self.reconnect_max = reconnect_max
        #: outbound encoding for configured peers; inbound always
        #: auto-detects, and reply routes mirror the requester's format.
        self.wire_format = (
            codec.DEFAULT_WIRE_FORMAT if wire_format is None else wire_format
        )
        codec.frame_overhead(self.wire_format)  # validates the name eagerly
        self.coalesce_max_bytes = coalesce_max_bytes
        self.coalesce_delay = coalesce_delay
        self.read_chunk = read_chunk
        #: chaos hooks; the permissive default short-circuits to "allow".
        self.policy = link_policy if link_policy is not None else LinkPolicy()
        #: timing randomness (reconnect jitter). Seed it — or let
        #: :meth:`bind_rng` seed it — to make chaos runs reproducible;
        #: unseeded transports fall back to the module-level RNG.
        self.rng: random.Random | Any = rng if rng is not None else random
        self._rng_bound = rng is not None
        self.stats = NetworkStats()
        #: observability registry. A private default keeps standalone
        #: transports (tests, tools) instrumented; :meth:`bind_metrics`
        #: swaps in the runtime's shared registry before serving.
        self.metrics = MetricsRegistry()
        self._bind_instruments()
        self._endpoints: dict[NodeId, Callable[[Message], None]] = {}
        self._peers: dict[NodeId, PeerConnection] = {}
        #: reply routes for unconfigured senders (clients/admin tools):
        #: node -> (StreamWriter of the connection it last spoke on, the
        #: wire format it spoke — replies are encoded to match).
        self._reply_routes: dict[NodeId, tuple[asyncio.StreamWriter, str]] = {}
        self._server: asyncio.base_events.Server | None = None
        self._clock: Callable[[], float] = lambda: 0.0
        #: context-manager factories wrapped around each inbound chunk's
        #: dispatch loop (see :meth:`add_dispatch_group`).
        self._dispatch_groups: list[Callable[[], ContextManager[Any]]] = []
        #: one-entry broadcast memo: (payload object, fmt, encoded bytes).
        self._encoded_payload: tuple[Any, str, bytes] | None = None

    def add_dispatch_group(self, factory: Callable[[], ContextManager[Any]]) -> None:
        """Wrap every inbound chunk's dispatch loop in ``factory()``.

        The runtime registers the replica store's group-commit window
        here: all WAL appends triggered while dispatching the frames of
        one network chunk then share a single fsync, issued when the
        window closes — which is *before* this callback returns, hence
        before any peer writer task (they are woken, not run, during
        dispatch) can put a resulting protocol message on a socket. That
        ordering is what keeps durable-before-send intact per window.
        """
        self._dispatch_groups.append(factory)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Runtime wiring: timestamps for delivered :class:`Message`\\ s."""
        self._clock = clock

    def bind_rng(self, rng: random.Random) -> None:
        """Runtime wiring: adopt a seeded RNG unless one was injected.

        :class:`repro.net.runtime.LiveRuntime` calls this with an RNG
        derived from its seed, so reconnect jitter is reproducible per
        seed without every call site having to thread one through. An RNG
        passed to the constructor wins (explicit beats ambient).
        """
        if not self._rng_bound:
            self.rng = rng
            self._rng_bound = True

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Runtime wiring: share the runtime's registry (same pattern as
        :meth:`bind_clock`). Counters accumulated on the private default
        registry before binding are not migrated — runtimes bind before
        serving, so nothing has counted yet."""
        self.metrics = registry
        self._bind_instruments()

    def _bind_instruments(self) -> None:
        """(Re)cache counter handles against the current registry."""
        metrics = self.metrics
        self._m_frames_sent = metrics.counter("net.frames_sent")
        self._m_bytes_sent = metrics.counter("net.bytes_sent")
        self._m_frames_delivered = metrics.counter("net.frames_delivered")
        self._m_frames_dropped = metrics.counter("net.frames_dropped")
        self._m_frames_flushed = metrics.counter("net.frames_flushed")
        self._m_batches_flushed = metrics.counter("net.batches_flushed")
        self._m_bytes_flushed = metrics.counter("net.bytes_flushed")
        self._m_reconnects = metrics.counter("net.reconnects")
        metrics.on_snapshot(self._snapshot_gauges)

    def _snapshot_gauges(self, metrics: MetricsRegistry) -> None:
        """Lazy gauges: queue depth and peer connectivity at poll time."""
        metrics.gauge("net.queue_depth").set(
            sum(peer.queue.qsize() for peer in self._peers.values())
        )
        metrics.gauge("net.peers_connected").set(
            sum(1 for peer in self._peers.values() if peer.connected)
        )

    # -- endpoint management (Network-compatible) ---------------------------

    def register(self, node: NodeId, deliver: Callable[[Message], None]) -> None:
        self._endpoints[NodeId(str(node))] = deliver

    def unregister(self, node: NodeId) -> None:
        self._endpoints.pop(node, None)

    def knows(self, node: NodeId) -> bool:
        return node in self._endpoints or node in self.addresses

    # -- server side --------------------------------------------------------

    async def start(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(self._serve_connection, host, port)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        buffer = bytearray()
        try:
            while True:
                # Chunked reads: a coalesced batch of frames arrives in one
                # (or few) chunks and is parsed without per-frame syscalls.
                chunk = await reader.read(self.read_chunk)
                if not chunk:
                    break
                buffer += chunk
                if self._dispatch_groups:
                    # Group-commit windows: every WAL append triggered by
                    # this chunk's frames shares one fsync at stack exit.
                    with contextlib.ExitStack() as stack:
                        for factory in self._dispatch_groups:
                            stack.enter_context(factory())
                        self._drain_chunk(buffer, writer)
                else:
                    self._drain_chunk(buffer, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            codec.CodecError,
        ):
            pass
        finally:
            stale = [
                n for n, (w, _) in self._reply_routes.items() if w is writer
            ]
            for node in stale:
                del self._reply_routes[node]
            writer.close()

    def _drain_chunk(self, buffer: bytearray, writer: asyncio.StreamWriter) -> None:
        """Parse and dispatch every complete frame currently buffered."""
        pos = 0
        have = len(buffer)
        while have - pos >= 4:
            length = codec.frame_length(buffer[pos : pos + 4])
            if have - pos - 4 < length:
                break  # incomplete frame: wait for the next chunk
            body = bytes(buffer[pos + 4 : pos + 4 + length])
            pos += 4 + length
            try:
                sender, dest, payload = codec.decode_frame_body(body)
            except codec.CodecError:
                continue  # poison frame: drop it, keep the stream
            if sender not in self.addresses:
                self._reply_routes[sender] = (
                    writer,
                    codec.frame_format(body),
                )
            try:
                self._dispatch_local(sender, dest, payload, length + 4)
            except Exception:  # noqa: BLE001
                # A handler bug must not tear down the connection
                # (and with it every queued frame from this peer).
                # The simulator fails fast; here we log and go on.
                traceback.print_exc()
        if pos:
            del buffer[:pos]

    def _dispatch_local(
        self, sender: NodeId, dest: NodeId, payload: Any, size: int
    ) -> None:
        if self.policy.blocks(sender, dest):
            # Inbound enforcement: a partition holds even while the far
            # side has not (or cannot — it may be mid-crash) applied it.
            # Only deterministic rules here; loss and delay are applied
            # once, on the sending side.
            self.stats.messages_dropped += 1
            self._m_frames_dropped.inc()
            return
        deliver = self._endpoints.get(dest)
        if deliver is None:
            self.stats.messages_dropped += 1
            self._m_frames_dropped.inc()
            return
        self.stats.messages_delivered += 1
        self._m_frames_delivered.inc()
        deliver(
            Message(
                sender=sender, dest=dest, payload=payload, size=size,
                sent_at=self._clock(),
            )
        )

    # -- sending ------------------------------------------------------------

    def send(
        self, sender: NodeId, dest: NodeId, payload: Any, size: int | None = None
    ) -> None:
        """Send ``payload`` to ``dest``; unreachable destinations drop.

        Never blocks: local destinations are delivered via the event loop,
        remote ones are queued on the peer's writer task.
        """
        fmt = self.wire_format
        route = None
        if dest not in self._endpoints and dest not in self.addresses:
            entry = self._reply_routes.get(dest)
            if entry is not None:
                # Mirror the requester's wire format on the reply, so a
                # JSON-only client of a binary cluster still gets JSON.
                route, fmt = entry
        try:
            # Broadcast fast path: consecutive sends of the *same* payload
            # object (an Accept/Decide fanned out to every peer) reuse one
            # payload encoding and only re-frame the header. Protocol
            # payloads are frozen dataclasses, so identity implies equal
            # bytes. The memo holds exactly one strong reference.
            cached = self._encoded_payload
            if cached is not None and cached[0] is payload and cached[1] == fmt:
                payload_bytes = cached[2]
            else:
                payload_bytes = codec.encode_payload(payload, fmt)
                self._encoded_payload = (payload, fmt, payload_bytes)
            frame = codec.encode_frame_precoded(sender, dest, payload_bytes, fmt)
        except codec.CodecError:
            self.stats.messages_dropped += 1
            self._m_frames_dropped.inc()
            return
        self.stats.record_send(payload, len(frame) if size is None else size)
        self._m_frames_sent.inc()
        self._m_bytes_sent.inc(len(frame))
        if self.policy.should_drop(sender, dest):
            # Chaos hook: partitioned / one-way-dropped / probabilistically
            # lost. Mirrors the simulator's "sent then lost" accounting.
            self.stats.messages_dropped += 1
            self._m_frames_dropped.inc()
            return
        injected = self.policy.latency(sender, dest)
        if injected > 0.0:
            asyncio.get_running_loop().call_later(
                injected, self._forward, sender, dest, payload, frame, route
            )
            return
        self._forward(sender, dest, payload, frame, route)

    def _forward(
        self,
        sender: NodeId,
        dest: NodeId,
        payload: Any,
        frame: bytes,
        route: asyncio.StreamWriter | None,
    ) -> None:
        """Move one already-encoded frame to its destination leg."""
        if dest in self._endpoints:
            # Loopback: through the event loop, never synchronous re-entry
            # (mirrors the simulator's zero-delay self-delivery).
            asyncio.get_running_loop().call_soon(
                self._dispatch_local, sender, dest, payload, len(frame)
            )
            return
        address = self.addresses.get(dest)
        if address is not None:
            peer = self._peers.get(dest)
            if peer is None:
                peer = PeerConnection(self, dest, address, self.queue_limit)
                self._peers[dest] = peer
            peer.enqueue(frame)
            peer.ensure_running()
            return
        if route is not None and not route.is_closing():
            # Reply path for clients: best-effort write on their inbound
            # connection (never awaited, so a slow client only buffers).
            route.write(frame)
            return
        self.stats.messages_dropped += 1
        self._m_frames_dropped.inc()

    # -- shutdown -----------------------------------------------------------

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for peer in self._peers.values():
            await peer.close()
        for writer in {w for w, _ in self._reply_routes.values()}:
            writer.close()
        self._reply_routes.clear()
