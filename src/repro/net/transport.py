"""Asyncio TCP transport with the simulator network's sending surface.

:class:`TcpTransport` implements the :class:`repro.core.runtime.MessagePort`
protocol — the same ``send`` / ``register`` / ``unregister`` / ``knows``
surface as :class:`repro.sim.network.Network` — over real sockets:

* every process runs one TCP server; peers exchange length-prefixed
  frames (see :mod:`repro.net.codec`) in either the compact binary format
  (the default) or tagged JSON — the wire format is negotiated per
  connection: each side encodes outbound frames in its configured format,
  decodes both on inbound, and mirrors a requester's format on replies;
* **outbound** traffic to each configured peer goes through a dedicated
  :class:`PeerConnection` with a bounded queue and its own writer task, so
  a slow or dead peer can never block the event loop or other peers —
  when the queue fills, the oldest frames are dropped (the protocols all
  tolerate loss and retry);
* the writer task **coalesces**: each wakeup drains the whole queue (up to
  ``coalesce_max_bytes``) into a single ``writer.write`` + ``drain`` pair
  instead of one syscall round per frame; ``coalesce_delay`` optionally
  holds the first frame of a batch for that many seconds to gather more —
  an explicit flush-latency bound (0.0 = flush immediately, the default);
* connections are (re)established lazily with exponential backoff plus
  jitter, so a restarting replica is re-adopted without thundering herds;
* the **inbound** reader consumes the byte stream in large chunks and
  parses every complete frame out of each chunk, so coalesced batches are
  decoded without per-frame read syscalls;
* inbound connections from nodes outside the address book (clients,
  admin tools) are remembered as reply routes: a send to such a node goes
  back over the connection it last spoke on, encoded in whatever wire
  format that node used.

Delivery semantics match the simulator's fail-stop network: unknown or
unreachable destinations drop messages silently, and per-run statistics
(:class:`repro.sim.network.NetworkStats`) count messages and bytes by
payload type.
"""

from __future__ import annotations

import asyncio
import random
import traceback
from typing import Any, Callable

from repro.net import codec
from repro.sim.network import Message, NetworkStats
from repro.types import NodeId

#: (host, port) address of one peer process.
Address = tuple[str, int]


class PeerConnection:
    """Outbound leg to one configured peer: queue + reconnect loop."""

    def __init__(
        self,
        transport: "TcpTransport",
        peer: NodeId,
        address: Address,
        queue_limit: int,
    ):
        self.transport = transport
        self.peer = peer
        self.address = address
        self.queue: asyncio.Queue[bytes] = asyncio.Queue(maxsize=queue_limit)
        self.task: asyncio.Task | None = None
        self.connected = False
        self.dropped = 0
        #: frames handed to the socket / write+drain batches flushed —
        #: ``frames_sent / batches_sent`` is the realised coalescing factor.
        self.frames_sent = 0
        self.batches_sent = 0
        self._closing = False

    def enqueue(self, frame: bytes) -> None:
        """Queue one frame; sheds the oldest backlog instead of blocking."""
        while True:
            try:
                self.queue.put_nowait(frame)
                return
            except asyncio.QueueFull:
                try:
                    self.queue.get_nowait()
                    self.dropped += 1
                    self.transport.stats.messages_dropped += 1
                except asyncio.QueueEmpty:  # pragma: no cover - race window
                    pass

    def ensure_running(self) -> None:
        if self.task is None or self.task.done():
            self.task = asyncio.get_running_loop().create_task(
                self._run(), name=f"peer:{self.peer}"
            )

    async def _run(self) -> None:
        backoff = self.transport.reconnect_min
        max_bytes = self.transport.coalesce_max_bytes
        delay = self.transport.coalesce_delay
        while not self._closing:
            writer = None
            batch: list[bytes] = []
            try:
                _, writer = await asyncio.open_connection(*self.address)
                self.connected = True
                backoff = self.transport.reconnect_min
                while not self._closing:
                    # Coalesce: take everything queued right now (bounded by
                    # ``max_bytes``) and flush it as one write+drain round.
                    batch = [await self.queue.get()]
                    if delay > 0.0 and self.queue.empty():
                        # Flush-latency bound: hold the batch open briefly
                        # to gather frames that arrive back-to-back.
                        await asyncio.sleep(delay)
                    size = len(batch[0])
                    while size < max_bytes:
                        try:
                            frame = self.queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                        batch.append(frame)
                        size += len(frame)
                    writer.write(b"".join(batch) if len(batch) > 1 else batch[0])
                    await writer.drain()
                    self.frames_sent += len(batch)
                    self.batches_sent += 1
                    batch = []
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                pass
            finally:
                self.connected = False
                if batch:
                    # Frames already popped from the queue die with the
                    # connection: account for them instead of losing them
                    # silently (delivery is not known, so count as dropped).
                    self.dropped += len(batch)
                    self.transport.stats.messages_dropped += len(batch)
                if writer is not None:
                    writer.close()
            if self._closing:
                return
            # Exponential backoff with multiplicative jitter: restarting
            # peers are re-adopted quickly without synchronized stampedes.
            await asyncio.sleep(backoff * random.uniform(0.5, 1.5))
            backoff = min(backoff * 2.0, self.transport.reconnect_max)

    async def close(self) -> None:
        self._closing = True
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self.task = None


class TcpTransport:
    """Length-prefixed-frame message port over asyncio TCP."""

    def __init__(
        self,
        addresses: dict[NodeId, Address],
        *,
        queue_limit: int = 4096,
        reconnect_min: float = 0.05,
        reconnect_max: float = 2.0,
        wire_format: str | None = None,
        coalesce_max_bytes: int = 256 * 1024,
        coalesce_delay: float = 0.0,
        read_chunk: int = 64 * 1024,
    ):
        #: address book: every node this process may *initiate* a
        #: connection to (replicas; clients stay reply-routed).
        self.addresses = {NodeId(str(n)): a for n, a in addresses.items()}
        self.queue_limit = queue_limit
        self.reconnect_min = reconnect_min
        self.reconnect_max = reconnect_max
        #: outbound encoding for configured peers; inbound always
        #: auto-detects, and reply routes mirror the requester's format.
        self.wire_format = (
            codec.DEFAULT_WIRE_FORMAT if wire_format is None else wire_format
        )
        codec.frame_overhead(self.wire_format)  # validates the name eagerly
        self.coalesce_max_bytes = coalesce_max_bytes
        self.coalesce_delay = coalesce_delay
        self.read_chunk = read_chunk
        self.stats = NetworkStats()
        self._endpoints: dict[NodeId, Callable[[Message], None]] = {}
        self._peers: dict[NodeId, PeerConnection] = {}
        #: reply routes for unconfigured senders (clients/admin tools):
        #: node -> (StreamWriter of the connection it last spoke on, the
        #: wire format it spoke — replies are encoded to match).
        self._reply_routes: dict[NodeId, tuple[asyncio.StreamWriter, str]] = {}
        self._server: asyncio.base_events.Server | None = None
        self._clock: Callable[[], float] = lambda: 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Runtime wiring: timestamps for delivered :class:`Message`\\ s."""
        self._clock = clock

    # -- endpoint management (Network-compatible) ---------------------------

    def register(self, node: NodeId, deliver: Callable[[Message], None]) -> None:
        self._endpoints[NodeId(str(node))] = deliver

    def unregister(self, node: NodeId) -> None:
        self._endpoints.pop(node, None)

    def knows(self, node: NodeId) -> bool:
        return node in self._endpoints or node in self.addresses

    # -- server side --------------------------------------------------------

    async def start(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(self._serve_connection, host, port)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        buffer = bytearray()
        try:
            while True:
                # Chunked reads: a coalesced batch of frames arrives in one
                # (or few) chunks and is parsed without per-frame syscalls.
                chunk = await reader.read(self.read_chunk)
                if not chunk:
                    break
                buffer += chunk
                pos = 0
                have = len(buffer)
                while have - pos >= 4:
                    length = codec.frame_length(buffer[pos : pos + 4])
                    if have - pos - 4 < length:
                        break  # incomplete frame: wait for the next chunk
                    body = bytes(buffer[pos + 4 : pos + 4 + length])
                    pos += 4 + length
                    try:
                        sender, dest, payload = codec.decode_frame_body(body)
                    except codec.CodecError:
                        continue  # poison frame: drop it, keep the stream
                    if sender not in self.addresses:
                        self._reply_routes[sender] = (
                            writer,
                            codec.frame_format(body),
                        )
                    try:
                        self._dispatch_local(sender, dest, payload, length + 4)
                    except Exception:  # noqa: BLE001
                        # A handler bug must not tear down the connection
                        # (and with it every queued frame from this peer).
                        # The simulator fails fast; here we log and go on.
                        traceback.print_exc()
                if pos:
                    del buffer[:pos]
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            codec.CodecError,
        ):
            pass
        finally:
            stale = [
                n for n, (w, _) in self._reply_routes.items() if w is writer
            ]
            for node in stale:
                del self._reply_routes[node]
            writer.close()

    def _dispatch_local(
        self, sender: NodeId, dest: NodeId, payload: Any, size: int
    ) -> None:
        deliver = self._endpoints.get(dest)
        if deliver is None:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        deliver(
            Message(
                sender=sender, dest=dest, payload=payload, size=size,
                sent_at=self._clock(),
            )
        )

    # -- sending ------------------------------------------------------------

    def send(
        self, sender: NodeId, dest: NodeId, payload: Any, size: int | None = None
    ) -> None:
        """Send ``payload`` to ``dest``; unreachable destinations drop.

        Never blocks: local destinations are delivered via the event loop,
        remote ones are queued on the peer's writer task.
        """
        fmt = self.wire_format
        route = None
        if dest not in self._endpoints and dest not in self.addresses:
            entry = self._reply_routes.get(dest)
            if entry is not None:
                # Mirror the requester's wire format on the reply, so a
                # JSON-only client of a binary cluster still gets JSON.
                route, fmt = entry
        try:
            frame = codec.encode_frame(sender, dest, payload, fmt)
        except codec.CodecError:
            self.stats.messages_dropped += 1
            return
        self.stats.record_send(payload, len(frame) if size is None else size)
        if dest in self._endpoints:
            # Loopback: through the event loop, never synchronous re-entry
            # (mirrors the simulator's zero-delay self-delivery).
            asyncio.get_running_loop().call_soon(
                self._dispatch_local, sender, dest, payload, len(frame)
            )
            return
        address = self.addresses.get(dest)
        if address is not None:
            peer = self._peers.get(dest)
            if peer is None:
                peer = PeerConnection(self, dest, address, self.queue_limit)
                self._peers[dest] = peer
            peer.enqueue(frame)
            peer.ensure_running()
            return
        if route is not None and not route.is_closing():
            # Reply path for clients: best-effort write on their inbound
            # connection (never awaited, so a slow client only buffers).
            route.write(frame)
            return
        self.stats.messages_dropped += 1

    # -- shutdown -----------------------------------------------------------

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for peer in self._peers.values():
            await peer.close()
        for writer in {w for w, _ in self._reply_routes.values()}:
            writer.close()
        self._reply_routes.clear()
