"""Launch a live cluster as real OS processes on localhost.

:class:`LocalCluster` spawns one ``python -m repro serve`` subprocess per
replica, all sharing a single address book. The book includes a few
**reserved** names beyond the initial members (``n4``, ``n5``, ... for a
3-replica cluster) so that joiners introduced by a later RECONFIGURE are
addressable by every running replica from the start — mirroring the
simulator's convention that processes exist before they join an epoch.

Used by the ``repro cluster`` subcommand and the loopback integration
test; each replica's stdout/stderr is captured to a per-node log file so
a failing run can be diagnosed post-mortem.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.net.transport import Address


def free_port(host: str = "127.0.0.1") -> int:
    """Ask the OS for a currently-free TCP port (best effort).

    Inherently TOCTOU: the port can be taken between this probe and the
    replica's bind. Callers must treat a bind failure as retryable (see
    :meth:`LocalCluster.wait_ready`); ``allocate_ports`` at least stops
    the *book itself* from racing its own probes.
    """
    return allocate_ports(1, host)[0]


def allocate_ports(count: int, host: str = "127.0.0.1") -> list[int]:
    """Reserve ``count`` distinct free ports, holding every probe socket
    open until all are chosen so consecutive probes cannot race each other
    into the same port. The window between release and the replica's bind
    remains (that race is handled by respawn-on-bind-failure)."""
    probes: list[socket.socket] = []
    try:
        for _ in range(count):
            probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind((host, 0))
            probes.append(probe)
        return [probe.getsockname()[1] for probe in probes]
    finally:
        for probe in probes:
            probe.close()


class LocalCluster:
    """A localhost cluster of ``repro serve`` subprocesses."""

    def __init__(
        self,
        replicas: int = 3,
        *,
        host: str = "127.0.0.1",
        base_port: int | None = None,
        reserve: int = 2,
        app: str = "kv",
        seed: int = 42,
        wire: str | None = None,
        log_dir: str | Path | None = None,
        python: str = sys.executable,
        verbose: bool = False,
        chaos: bool = False,
        spawn_retries: int = 3,
        durable: bool = False,
        data_root: str | Path | None = None,
        fsync: bool = False,
        batch_delay_ms: float = 0.0,
        batch_max: int = 32,
        window: int = 0,
        uvloop: str | None = None,
        read_mode: str | None = None,
        lease_ms: float | None = None,
        suspect_ms: float | None = None,
        staleness_ms: float | None = None,
        handoff: str | None = None,
        extra_args: list[str] | None = None,
    ):
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.host = host
        self.app = app
        self.seed = seed
        #: wire format replicas use between themselves (None = serve default;
        #: client traffic negotiates per connection either way).
        self.wire = wire
        self.python = python
        self.verbose = verbose
        #: expose the chaos admin endpoint on every replica (fault
        #: injection via repro.net.chaos; off for production-like runs).
        self.chaos = chaos
        #: respawn budget per replica for bind-time port races.
        self.spawn_retries = spawn_retries
        #: commit-path tuning forwarded to every replica (see
        #: ``repro serve --batch-delay/--batch-max/--window/--uvloop``).
        self.batch_delay_ms = batch_delay_ms
        self.batch_max = batch_max
        self.window = window
        self.uvloop = uvloop
        #: read-path tuning forwarded to every replica (see ``repro serve
        #: --read-mode/--lease-duration/--staleness-bound``). None keeps
        #: the serve defaults (ordered reads).
        self.read_mode = read_mode
        self.lease_ms = lease_ms
        self.suspect_ms = suspect_ms
        self.staleness_ms = staleness_ms
        #: epoch hand-off mode forwarded to every replica (see ``repro
        #: serve --handoff``). None keeps the serve default (clean cut).
        self.handoff = handoff
        #: extra ``repro serve`` flags appended to every replica's argv
        #: (e.g. the shard ownership flags a ShardedCluster passes down).
        self.extra_args = list(extra_args or [])
        names = [f"n{i + 1}" for i in range(replicas + reserve)]
        #: members of epoch 0; the rest of the book is reserved for joiners.
        self.initial = names[:replicas]
        if base_port is not None:
            ports = [base_port + i for i in range(len(names))]
        else:
            ports = allocate_ports(len(names), host)
        self.addresses: dict[str, Address] = {
            name: (host, port) for name, port in zip(names, ports)
        }
        self.procs: dict[str, subprocess.Popen] = {}
        self._respawns: dict[str, int] = {}
        self.log_dir = Path(
            log_dir
            if log_dir is not None
            else tempfile.mkdtemp(prefix="repro-cluster-")
        )
        self.log_dir.mkdir(parents=True, exist_ok=True)
        #: durable mode: every replica gets --data-dir under data_root, so
        #: restart() recovers from checkpoint+WAL instead of amnesia.
        #: fsync defaults off for the localhost harness: flushed-to-kernel
        #: writes already survive SIGKILL (the failure mode under test);
        #: per-append fsync only adds machine-crash durability and makes
        #: wall-clock-budgeted tests an order of magnitude slower.
        self.durable = durable or data_root is not None
        self.fsync = fsync
        self.data_root: Path | None = None
        if self.durable:
            self.data_root = Path(
                data_root if data_root is not None else self.log_dir / "data"
            )
            self.data_root.mkdir(parents=True, exist_ok=True)

    # -- lifecycle ----------------------------------------------------------

    def start(self, wait: bool = True, timeout: float = 15.0) -> None:
        """Spawn every initial member (and optionally wait for readiness)."""
        for name in self.initial:
            self.spawn(name)
        if wait:
            self.wait_ready(self.initial, timeout=timeout)

    def spawn(self, name: str) -> subprocess.Popen:
        """Start (or restart) one replica process.

        Initial members are bootstrapped with ``--initial``; reserved names
        come up empty and wait to be adopted by a reconfiguration.
        """
        if name not in self.addresses:
            raise KeyError(f"{name!r} is not in the cluster address book")
        existing = self.procs.get(name)
        if existing is not None and existing.poll() is None:
            raise RuntimeError(f"replica {name!r} is already running")
        host, port = self.addresses[name]
        argv = [
            self.python, "-m", "repro", "serve",
            "--node", name,
            "--host", host,
            "--port", str(port),
            "--peers", self.peers_arg(),
            "--app", self.app,
            "--seed", str(self.seed),
        ]
        if self.wire is not None:
            argv += ["--wire", self.wire]
        if self.chaos:
            argv += ["--chaos"]
        if self.data_root is not None:
            argv += ["--data-dir", str(self.data_root / name)]
            if not self.fsync:
                argv += ["--no-fsync"]
        if self.batch_delay_ms > 0:
            argv += ["--batch-delay", str(self.batch_delay_ms),
                     "--batch-max", str(self.batch_max)]
        if self.window > 0:
            argv += ["--window", str(self.window)]
        if self.uvloop is not None:
            argv += ["--uvloop", self.uvloop]
        if self.read_mode is not None:
            argv += ["--read-mode", self.read_mode]
        if self.lease_ms is not None:
            argv += ["--lease-duration", str(self.lease_ms)]
        if self.suspect_ms is not None:
            argv += ["--suspect-timeout", str(self.suspect_ms)]
        if self.staleness_ms is not None:
            argv += ["--staleness-bound", str(self.staleness_ms)]
        if self.handoff is not None:
            argv += ["--handoff", self.handoff]
        if name in self.initial:
            argv += ["--initial", ",".join(self.initial)]
        if self.verbose:
            argv += ["--verbose"]
        argv += self.extra_args
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        log = open(self.log_dir / f"{name}.log", "ab")
        try:
            proc = subprocess.Popen(argv, stdout=log, stderr=subprocess.STDOUT, env=env)
        finally:
            log.close()  # the child holds its own descriptor
        self.procs[name] = proc
        return proc

    def wait_ready(
        self, names: list[str] | None = None, timeout: float = 15.0
    ) -> None:
        """Block until every named replica accepts TCP connections."""
        pending = list(names if names is not None else self.procs)
        give_up_at = time.monotonic() + timeout
        while pending:
            name = pending[0]
            proc = self.procs.get(name)
            if proc is not None and proc.poll() is not None:
                # The child exited before accepting. Losing the bind race
                # is expected occasionally — free_port() is TOCTOU, and a
                # restart rebinds a port whose previous owner just died —
                # so respawn on the same address a bounded number of times.
                attempts = self._respawns.get(name, 0)
                if self._bind_failed(name) and attempts < self.spawn_retries:
                    self._respawns[name] = attempts + 1
                    time.sleep(0.1 * (attempts + 1))
                    self.spawn(name)
                    continue
                raise RuntimeError(
                    f"replica {name!r} exited with {proc.returncode}; "
                    f"see {self.log_dir / (name + '.log')}"
                )
            try:
                socket.create_connection(self.addresses[name], timeout=0.25).close()
                pending.pop(0)
                self._respawns.pop(name, None)
            except OSError:
                if time.monotonic() > give_up_at:
                    raise TimeoutError(
                        f"replica {name!r} not accepting connections; "
                        f"see {self.log_dir / (name + '.log')}"
                    ) from None
                time.sleep(0.05)

    #: substrings identifying a failed TCP bind across platforms
    #: (EADDRINUSE is errno 98 on Linux, 48 on macOS, 10048 on Windows).
    _BIND_ERRORS = ("address already in use", "errno 98", "errno 48", "10048")

    def _bind_failed(self, name: str) -> bool:
        """Did ``name``'s last incarnation die failing to bind its port?"""
        try:
            tail = (self.log_dir / f"{name}.log").read_bytes()[-4096:]
        except OSError:
            return False
        text = tail.decode("utf-8", errors="replace").lower()
        return any(marker in text for marker in self._BIND_ERRORS)

    def kill(self, name: str) -> None:
        """Hard-kill one replica (fail-stop: no goodbye, no flush).

        Always reaps: even a replica that already died on its own is
        ``wait()``-ed, so repeated kill/restart rounds (chaos schedules)
        never accumulate zombie children.
        """
        proc = self.procs.get(name)
        if proc is None:
            return
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)

    def restart(
        self,
        name: str,
        wait: bool = True,
        timeout: float = 15.0,
        amnesia: bool | None = None,
    ) -> None:
        """Bring a killed replica back.

        On a storage-less cluster the respawn has total amnesia (the
        original model); on a durable cluster it recovers from its data
        directory. ``amnesia=True`` forces the amnesiac behaviour even
        when durable by wiping the replica's data directory first — the
        control arm of the amnesiac-vs-recovered comparison (EXPERIMENTS
        T12). ``amnesia=None`` means "whatever the cluster does".

        The replica keeps its address-book port; if the old incarnation's
        socket still lingers, :meth:`wait_ready` retries the spawn rather
        than failing on the first lost bind race.
        """
        self.kill(name)
        if amnesia and self.data_root is not None:
            import shutil

            shutil.rmtree(self.data_root / name, ignore_errors=True)
        self._respawns.pop(name, None)  # fresh retry budget per restart
        self.spawn(name)
        if wait:
            self.wait_ready([name], timeout=timeout)

    def shutdown(self) -> None:
        for name, proc in self.procs.items():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for name, proc in self.procs.items():
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)

    def reap(self) -> list[str]:
        """Collect exit statuses of every dead child; returns their names."""
        dead = []
        for name, proc in self.procs.items():
            if proc.poll() is not None:
                dead.append(name)
        return dead

    # -- helpers ------------------------------------------------------------

    def peers_arg(self) -> str:
        """The whole address book as a ``--peers`` argument string."""
        return ",".join(
            f"{name}={host}:{port}" for name, (host, port) in self.addresses.items()
        )

    def reserved(self) -> list[str]:
        """Names in the address book that are not initial members."""
        return [n for n in self.addresses if n not in self.initial]

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
