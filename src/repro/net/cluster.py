"""Launch a live cluster as real OS processes on localhost.

:class:`LocalCluster` spawns one ``python -m repro serve`` subprocess per
replica, all sharing a single address book. The book includes a few
**reserved** names beyond the initial members (``n4``, ``n5``, ... for a
3-replica cluster) so that joiners introduced by a later RECONFIGURE are
addressable by every running replica from the start — mirroring the
simulator's convention that processes exist before they join an epoch.

Used by the ``repro cluster`` subcommand and the loopback integration
test; each replica's stdout/stderr is captured to a per-node log file so
a failing run can be diagnosed post-mortem.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.net.transport import Address


def free_port(host: str = "127.0.0.1") -> int:
    """Ask the OS for a currently-free TCP port (best effort)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


class LocalCluster:
    """A localhost cluster of ``repro serve`` subprocesses."""

    def __init__(
        self,
        replicas: int = 3,
        *,
        host: str = "127.0.0.1",
        base_port: int | None = None,
        reserve: int = 2,
        app: str = "kv",
        seed: int = 42,
        wire: str | None = None,
        log_dir: str | Path | None = None,
        python: str = sys.executable,
        verbose: bool = False,
    ):
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.host = host
        self.app = app
        self.seed = seed
        #: wire format replicas use between themselves (None = serve default;
        #: client traffic negotiates per connection either way).
        self.wire = wire
        self.python = python
        self.verbose = verbose
        names = [f"n{i + 1}" for i in range(replicas + reserve)]
        #: members of epoch 0; the rest of the book is reserved for joiners.
        self.initial = names[:replicas]
        self.addresses: dict[str, Address] = {
            name: (host, base_port + i if base_port is not None else free_port(host))
            for i, name in enumerate(names)
        }
        self.procs: dict[str, subprocess.Popen] = {}
        self.log_dir = Path(
            log_dir
            if log_dir is not None
            else tempfile.mkdtemp(prefix="repro-cluster-")
        )
        self.log_dir.mkdir(parents=True, exist_ok=True)

    # -- lifecycle ----------------------------------------------------------

    def start(self, wait: bool = True, timeout: float = 15.0) -> None:
        """Spawn every initial member (and optionally wait for readiness)."""
        for name in self.initial:
            self.spawn(name)
        if wait:
            self.wait_ready(self.initial, timeout=timeout)

    def spawn(self, name: str) -> subprocess.Popen:
        """Start (or restart) one replica process.

        Initial members are bootstrapped with ``--initial``; reserved names
        come up empty and wait to be adopted by a reconfiguration.
        """
        if name not in self.addresses:
            raise KeyError(f"{name!r} is not in the cluster address book")
        existing = self.procs.get(name)
        if existing is not None and existing.poll() is None:
            raise RuntimeError(f"replica {name!r} is already running")
        host, port = self.addresses[name]
        argv = [
            self.python, "-m", "repro", "serve",
            "--node", name,
            "--host", host,
            "--port", str(port),
            "--peers", self.peers_arg(),
            "--app", self.app,
            "--seed", str(self.seed),
        ]
        if self.wire is not None:
            argv += ["--wire", self.wire]
        if name in self.initial:
            argv += ["--initial", ",".join(self.initial)]
        if self.verbose:
            argv += ["--verbose"]
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        log = open(self.log_dir / f"{name}.log", "ab")
        try:
            proc = subprocess.Popen(argv, stdout=log, stderr=subprocess.STDOUT, env=env)
        finally:
            log.close()  # the child holds its own descriptor
        self.procs[name] = proc
        return proc

    def wait_ready(
        self, names: list[str] | None = None, timeout: float = 15.0
    ) -> None:
        """Block until every named replica accepts TCP connections."""
        pending = list(names if names is not None else self.procs)
        give_up_at = time.monotonic() + timeout
        while pending:
            name = pending[0]
            proc = self.procs.get(name)
            if proc is not None and proc.poll() is not None:
                raise RuntimeError(
                    f"replica {name!r} exited with {proc.returncode}; "
                    f"see {self.log_dir / (name + '.log')}"
                )
            try:
                socket.create_connection(self.addresses[name], timeout=0.25).close()
                pending.pop(0)
            except OSError:
                if time.monotonic() > give_up_at:
                    raise TimeoutError(
                        f"replica {name!r} not accepting connections; "
                        f"see {self.log_dir / (name + '.log')}"
                    ) from None
                time.sleep(0.05)

    def kill(self, name: str) -> None:
        """Hard-kill one replica (fail-stop: no goodbye, no flush)."""
        proc = self.procs.get(name)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    def restart(self, name: str, wait: bool = True, timeout: float = 15.0) -> None:
        """Bring a killed replica back (with total amnesia, as in the model)."""
        self.kill(name)
        self.spawn(name)
        if wait:
            self.wait_ready([name], timeout=timeout)

    def shutdown(self) -> None:
        for name, proc in self.procs.items():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for name, proc in self.procs.items():
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)

    # -- helpers ------------------------------------------------------------

    def peers_arg(self) -> str:
        """The whole address book as a ``--peers`` argument string."""
        return ",".join(
            f"{name}={host}:{port}" for name, (host, port) in self.addresses.items()
        )

    def reserved(self) -> list[str]:
        """Names in the address book that are not initial members."""
        return [n for n in self.addresses if n not in self.initial]

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
