"""Reconfiguration storms: adversarial hand-off schedules, verified.

Every chaos scenario before this module fires a *single* RECONFIGURE
against a mostly-healthy cluster. The paper's liveness claim is stronger:
the service stays available while reconfigurations pile up faster than
state transfer completes, while the whole membership rolls over under
load, and while joins race fail-stop crashes. This module turns each of
those into a seeded, repeatable **storm plan** executed against a live
:class:`~repro.net.cluster.LocalCluster`:

``overlap``
    Back-to-back RECONFIGUREs issued faster than the joiners' state
    transfer can finish (their links are delayed), stressing speculative
    hand-off directly: epoch ``e+2`` starts ordering while ``e+1``'s
    boundary is still in flight.

``rolling``
    Full-cluster replacement one member at a time under sustained load —
    at the end no original member remains, and each retired member is
    SIGKILLed shortly after it leaves (decommissioning must not disturb
    the epochs that no longer contain it).

``joincrash``
    A join racing SIGKILL crashes: the outgoing epoch's leader dies right
    after the seal (stranding its in-flight tail — the exact window the
    dirty hand-off exists for) and the joiner itself is killed mid-join
    and later restarted with amnesia.

Every run is checked with the same Wing–Gong linearizability oracle as
the chaos suite and produces the fault-aligned hand-off timeline; on top
of that it measures the two storm headline numbers: the **unavailability
window** (largest gap between consecutive acknowledged client operations
during the storm) and the **hand-off latency** (cluster-level
reconfiguration span width, decided → first commit in the new epoch).
``repro bench storm`` compares both across ``--handoff clean|dirty``.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.net.chaos import (
    ChaosController,
    ChaosReport,
    HistoryRecorder,
    collect_aligned_spans,
)
from repro.net.client import LiveClient, LiveClientError
from repro.sim.failures import FailureSchedule
from repro.verify.histories import History, Operation
from repro.verify.linearizability import (
    LinearizabilityResult,
    check_kv_linearizable,
)

#: the scenario family; see the module docstring.
STORM_SCENARIOS = ("overlap", "rolling", "joincrash")

#: sharded cells living in :mod:`repro.shard.storm` — director failover
#: mid-move and the membership-churn-vs-range-move race. Dispatched from
#: :func:`run_storm_scenario` / :func:`build_storm_plan` so the CLI and
#: the storm bench treat the whole family uniformly; kept out of
#: ``STORM_SCENARIOS`` because these run a full sharded cluster, not the
#: single-group topology the data-plane plans assume.
SHARD_STORM_SCENARIOS = ("shard", "director")


@dataclass(frozen=True, slots=True)
class ReconfigStep:
    """One planned RECONFIGURE: issue at ``offset`` targeting ``members``."""

    offset: float
    members: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class StormPlan:
    """A fully-determined storm: schedule + reconfigure timings.

    Built purely from ``(scenario, seed, scale)`` — no wall clock, no
    ambient randomness — so the same seed produces a byte-identical plan
    (:meth:`to_json`), identical injection order and identical
    reconfigure timings across runs and machines.
    """

    scenario: str
    seed: int
    scale: float
    initial: tuple[str, ...]
    joiners: tuple[str, ...]
    steps: tuple[ReconfigStep, ...]
    schedule: FailureSchedule
    #: workload runs from 0 to this offset (settle margin included).
    duration: float
    #: initial members the plan never crashes or restarts — the workload
    #: client's contact view. Pinning the recorder to stable contacts
    #: keeps mode-independent reconnect noise (a SIGKILLed contact costs
    #: one client timeout regardless of hand-off mode) out of the
    #: unavailability window, so the metric measures hand-off stalls.
    contacts: tuple[str, ...]

    def final_members(self) -> tuple[str, ...]:
        return self.steps[-1].members

    def to_json(self) -> str:
        """Canonical serialisation (the determinism test compares bytes)."""
        payload = {
            "scenario": self.scenario,
            "seed": self.seed,
            "scale": self.scale,
            "initial": list(self.initial),
            "joiners": list(self.joiners),
            "steps": [
                {"offset": step.offset, "members": list(step.members)}
                for step in self.steps
            ],
            "schedule": [
                f"{type(action).__name__}@{action.time}:{action}"
                for action in self.schedule.sorted_actions()
            ],
            "duration": self.duration,
            "contacts": list(self.contacts),
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def build_storm_plan(
    scenario: str, *, replicas: int = 3, seed: int = 42, scale: float = 1.0
) -> StormPlan:
    """Build one deterministic storm plan (see :class:`StormPlan`).

    Offsets are jittered per seed exactly like
    :func:`~repro.net.chaos.canonical_schedule` (same seed -> same plan);
    ``scale`` stretches the whole storm without changing its structure.
    """
    if scenario in SHARD_STORM_SCENARIOS:
        from repro.shard.storm import build_shard_storm_plan

        return build_shard_storm_plan(
            scenario, replicas=replicas, seed=seed, scale=scale
        )
    if scenario not in STORM_SCENARIOS:
        raise ValueError(
            f"unknown storm scenario {scenario!r}; pick from "
            f"{STORM_SCENARIOS + SHARD_STORM_SCENARIOS}"
        )
    rng = random.Random(seed)
    initial = tuple(f"n{i + 1}" for i in range(replicas))

    def jitter(offset: float) -> float:
        return round(offset * scale * rng.uniform(0.9, 1.1), 3)

    schedule = FailureSchedule()
    if scenario == "overlap":
        joiners = (f"n{replicas + 1}", f"n{replicas + 2}")
        # Slow every link toward (and from) the joiners so their boundary
        # transfer cannot finish between reconfigures: the second step
        # lands while the first join's state is still in flight.
        slow_at = jitter(0.2)
        for joiner in joiners:
            for member in initial:
                schedule.delay_link(
                    slow_at, f"slow-{member}-{joiner}", member, joiner, 0.2
                )
                schedule.delay_link(
                    slow_at, f"slow-{joiner}-{member}", joiner, member, 0.2
                )
        r1 = jitter(1.2)
        r2 = round(r1 + jitter(0.35), 3)
        steps = (
            ReconfigStep(r1, (*initial[1:], joiners[0])),
            ReconfigStep(r2, (*initial[2:], *joiners)),
        )
        heal_at = round(r2 + jitter(1.2), 3)
        for joiner in joiners:
            for member in initial:
                schedule.heal(heal_at, f"slow-{member}-{joiner}")
                schedule.heal(heal_at, f"slow-{joiner}-{member}")
        duration = round(heal_at + jitter(1.2), 3)
    elif scenario == "rolling":
        joiners = tuple(f"n{replicas + 1 + i}" for i in range(replicas))
        steps_list = []
        members = list(initial)
        at = jitter(1.0)
        for i, joiner in enumerate(joiners):
            retiree = members.pop(0)
            members.append(joiner)
            steps_list.append(ReconfigStep(at, tuple(members)))
            # Decommission the retired member shortly after it leaves;
            # epochs that no longer contain it must not notice. The last
            # retiree stays up so the workload client keeps a stable
            # contact point for the settled final reads.
            if i < len(joiners) - 1:
                schedule.crash(round(at + jitter(0.45), 3), retiree)
            at = round(at + jitter(0.9), 3)
        steps = tuple(steps_list)
        duration = round(steps[-1].offset + jitter(1.4), 3)
    else:  # joincrash
        joiners = (f"n{replicas + 1}", f"n{replicas + 2}")
        r1 = jitter(1.1)
        steps_list = [ReconfigStep(r1, (*initial[1:], joiners[0]))]
        # The outgoing epoch's leader dies right after the seal lands,
        # stranding whatever its engine still had in flight...
        schedule.crash(round(r1 + jitter(0.15), 3), initial[0])
        # ...and the joiner is SIGKILLed mid-join, then restarted with
        # total amnesia (it must re-learn the epoch and re-fetch state).
        schedule.crash(round(r1 + jitter(0.35), 3), joiners[0])
        schedule.restart(round(r1 + jitter(1.3), 3), joiners[0])
        schedule.restart(round(r1 + jitter(1.7), 3), initial[0])
        r2 = round(r1 + jitter(1.9), 3)
        steps_list.append(ReconfigStep(r2, (*initial[2:], *joiners)))
        steps = tuple(steps_list)
        duration = round(r2 + jitter(1.3), 3)
    disturbed = {
        str(action.node)
        for action in schedule.sorted_actions()
        if hasattr(action, "node")
    }
    contacts = tuple(n for n in initial if n not in disturbed) or initial
    return StormPlan(
        scenario=scenario,
        seed=seed,
        scale=scale,
        initial=initial,
        joiners=joiners,
        steps=steps,
        schedule=schedule,
        duration=duration,
        contacts=contacts,
    )


# ---------------------------------------------------------------------------
# Metrics over the recorded run
# ---------------------------------------------------------------------------


def availability_windows(
    operations: list[Operation], *, start: float = 0.0, end: float | None = None
) -> dict[str, Any]:
    """Client-observed availability over one recorded workload window.

    The headline is ``max_gap_s``: the largest stretch of the window with
    no acknowledged operation — the unavailability window a client
    actually experienced. Bounded by the window edges, so a storm that
    never recovers is charged until ``end``, not forgiven.
    """
    completions = sorted(
        op.returned_at
        for op in operations
        if op.returned_at is not None and start <= op.returned_at
    )
    if end is None:
        end = completions[-1] if completions else start
    marks = [start, *[at for at in completions if at <= end], end]
    max_gap = max(
        (later - earlier for earlier, later in zip(marks, marks[1:])),
        default=0.0,
    )
    return {
        "window_s": round(end - start, 4),
        "max_gap_s": round(max_gap, 4),
        "completed": len(completions),
        "failed_or_pending": sum(
            1 for op in operations if op.returned_at is None
        ),
    }


def handoff_latencies(
    spans: dict[str, dict[str, dict[str, float]]]
) -> dict[str, Any]:
    """Cluster-level hand-off latency per epoch from aligned spans.

    Per new epoch: earliest ``decided`` anywhere to earliest
    ``first-commit`` anywhere — the wall-clock stretch between the
    reconfiguration being agreed and the new configuration doing work.
    (A single node's span width over-counts: another member usually
    commits in the new epoch first.)
    """
    decided: dict[str, float] = {}
    first_commit: dict[str, float] = {}
    for per_epoch in spans.values():
        for epoch, phases in per_epoch.items():
            if "decided" in phases:
                at = phases["decided"]
                if epoch not in decided or at < decided[epoch]:
                    decided[epoch] = at
            if "first-commit" in phases:
                at = phases["first-commit"]
                if epoch not in first_commit or at < first_commit[epoch]:
                    first_commit[epoch] = at
    widths = {
        epoch: round(first_commit[epoch] - decided[epoch], 4)
        for epoch in decided
        if epoch in first_commit
    }
    values = list(widths.values())
    return {
        "per_epoch_s": dict(sorted(widths.items())),
        "count": len(values),
        "max_s": round(max(values), 4) if values else None,
        "mean_s": round(sum(values) / len(values), 4) if values else None,
    }


def storm_verdict(
    history: History, read_mode: str | None
) -> tuple[LinearizabilityResult, bool]:
    """The oracle gate every storm run goes through.

    Wing–Gong over the client-observed history; follower-mode runs are
    bounded-staleness by design, so they gate on progress while the raw
    verdict stays recorded for inspection (same convention as the chaos
    suite). The positive-control test feeds this a hand-constructed
    non-linearizable history and asserts the gate actually fails.
    """
    result = check_kv_linearizable(history)
    return result, result.ok or read_mode == "follower"


# ---------------------------------------------------------------------------
# The storm driver
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class StormReport:
    """Outcome of one :func:`run_storm_scenario` run."""

    plan: StormPlan
    handoff: str
    read_mode: str | None
    #: verdict, injections, history, aligned spans, errors — same shape
    #: as a chaos run so the timeline/tooling carries over unchanged.
    chaos: ChaosReport
    #: per planned step: offset, members, applied_at (None = never
    #: acknowledged), ok.
    reconfigs: list[dict] = field(default_factory=list)
    unavailability: dict = field(default_factory=dict)
    handoff_latency: dict = field(default_factory=dict)
    #: per-node smr.* counters (orphans, dirty_* diagnostics).
    counters: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.chaos.ok

    @property
    def linearizable(self) -> LinearizabilityResult:
        return self.chaos.linearizable

    def timeline(self) -> list[dict]:
        """The chaos timeline plus the planned RECONFIGURE issue points."""
        events = self.chaos.timeline()
        for step in self.reconfigs:
            at = step["applied_at"]
            events.append({
                "at": round(at if at is not None else step["offset"], 4),
                "kind": "reconfigure",
                "members": list(step["members"]),
                "scheduled_at": step["offset"],
                "ok": step["ok"],
            })
        events.sort(key=lambda event: event["at"])
        return events

    def write_timeline(self, path: Any) -> None:
        payload = {
            "scenario": self.plan.scenario,
            "handoff": self.handoff,
            "seed": self.plan.seed,
            "linearizable": self.linearizable.ok,
            "ok": self.ok,
            "unavailability": self.unavailability,
            "handoff_latency": self.handoff_latency,
            "events": self.timeline(),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def lines(self) -> list[str]:
        out = [
            f"storm {self.plan.scenario}: handoff={self.handoff} "
            f"seed={self.plan.seed} elapsed={self.chaos.elapsed:.1f}s "
            f"(replica logs: {self.chaos.log_dir})",
        ]
        for step in self.reconfigs:
            at = step["applied_at"]
            out.append(
                f"  reconfigure @ {step['offset']:.2f}s -> "
                f"{','.join(step['members'])}: "
                + (f"acked at {at:.2f}s" if step["ok"] else "FAILED")
            )
        for injection in self.chaos.injections:
            during = self.chaos.span_overlaps(injection.applied_at)
            out.append(
                f"  t={injection.applied_at:6.2f}s "
                f"{type(injection.action).__name__} {injection.action}"
                + (f"  [during hand-off: {', '.join(during)}]" if during else "")
            )
        un = self.unavailability
        out.append(
            f"  unavailability: max gap {un.get('max_gap_s', 0):.3f}s over a "
            f"{un.get('window_s', 0):.1f}s window "
            f"({un.get('completed', 0)} ops acked, "
            f"{un.get('failed_or_pending', 0)} failed/pending)"
        )
        hl = self.handoff_latency
        if hl.get("count"):
            out.append(
                f"  hand-off latency: mean {hl['mean_s']:.3f}s "
                f"max {hl['max_s']:.3f}s over {hl['count']} epochs"
            )
        result = self.linearizable
        verdict = "LINEARIZABLE" if result.ok else (
            f"NOT LINEARIZABLE (key {result.failing_key!r})"
        )
        out.append(
            f"  verdict: {verdict} ({result.checked_ops} ops over "
            f"{result.checked_keys} keys); ok={'yes' if self.ok else 'NO'}"
        )
        for error in self.chaos.errors:
            out.append(f"  note: {error}")
        return out


class _ReconfigDriver(threading.Thread):
    """Issue the plan's RECONFIGUREs at their offsets, off the workload.

    A dedicated thread with its own admin client: the whole point of the
    overlap storm is that the *next* step is issued on schedule even if
    the previous hand-off is still settling, and the workload loop must
    keep recording ops while a reconfigure waits for its ack.
    """

    def __init__(
        self,
        plan: StormPlan,
        addresses: dict,
        view: list[str],
        wire: str | None,
        t0: float,
        deadline: float = 20.0,
    ):
        super().__init__(name="storm-reconfig", daemon=True)
        self.plan = plan
        self.t0 = t0
        self.deadline = deadline
        self.results: list[dict] = []
        self.client = LiveClient(
            "storm-admin", addresses, view=list(view),
            request_timeout=1.0, wire_format=wire,
        )

    def run(self) -> None:
        with self.client:
            for step in self.plan.steps:
                delay = self.t0 + step.offset - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                entry = {
                    "offset": step.offset,
                    "members": list(step.members),
                    "applied_at": None,
                    "ok": False,
                }
                try:
                    self.client.reconfigure(
                        step.members, deadline=self.deadline
                    )
                    entry["applied_at"] = round(time.monotonic() - self.t0, 4)
                    entry["ok"] = True
                except LiveClientError as exc:
                    entry["error"] = str(exc)
                self.results.append(entry)


def run_storm_scenario(
    scenario: str = "overlap",
    *,
    seed: int = 42,
    handoff: str = "clean",
    replicas: int = 3,
    wire: str | None = None,
    log_dir: Any = None,
    keys: int = 8,
    op_interval: float = 0.015,
    request_timeout: float = 0.5,
    scale: float = 1.0,
    read_mode: str | None = None,
    durable: bool = False,
    verbose: bool = False,
) -> StormReport:
    """Run one storm plan against a live cluster and verify it.

    The structure mirrors :func:`~repro.net.chaos.run_chaos_scenario`
    (workload in, faults in the middle, Wing–Gong verdict out) with the
    storm-specific parts on top: joiners are spawned up front, the
    reconfigure steps run on their own schedule concurrently with the
    workload, and the report carries the unavailability window and
    cluster-level hand-off latency for the clean/dirty comparison.

    The sharded cells (``shard``, ``director``) are dispatched to
    :func:`repro.shard.storm.run_shard_storm_scenario`, which returns
    the same report type over a sharded-cluster run.
    """
    if scenario in SHARD_STORM_SCENARIOS:
        from repro.shard.storm import run_shard_storm_scenario

        return run_shard_storm_scenario(
            scenario,
            seed=seed,
            handoff=handoff,
            replicas=replicas,
            wire=wire,
            log_dir=log_dir,
            keys=keys,
            op_interval=op_interval,
            request_timeout=request_timeout,
            scale=scale,
            read_mode=read_mode,
            durable=durable,
            verbose=verbose,
        )
    from repro.net.cluster import LocalCluster

    plan = build_storm_plan(scenario, replicas=replicas, seed=seed, scale=scale)
    started = time.monotonic()
    cluster = LocalCluster(
        replicas=replicas,
        reserve=len(plan.joiners),
        seed=seed,
        wire=wire,
        log_dir=log_dir,
        chaos=True,
        verbose=verbose,
        durable=durable,
        read_mode=read_mode,
        handoff=handoff,
    )
    with cluster:
        cluster.start(timeout=20.0)
        for joiner in plan.joiners:
            cluster.spawn(joiner)
        cluster.wait_ready(list(plan.joiners), timeout=15.0)

        controller = ChaosController(
            cluster, plan.schedule, wire_format=wire
        ).start()
        # One timebase for everything: the controller's t0 anchors the
        # injection log, the reconfigure driver and the recorded history.
        while controller.t0 is None:
            time.sleep(0.001)
        t0 = controller.t0
        driver = _ReconfigDriver(
            plan, cluster.addresses, list(cluster.addresses), wire, t0
        )
        driver.start()
        client = LiveClient(
            "storm-cli", cluster.addresses, view=list(plan.contacts),
            request_timeout=request_timeout, wire_format=wire,
        )
        recorder = HistoryRecorder(client, t0=t0)
        workload_rng = random.Random(seed)
        counter = 0
        with client:
            while time.monotonic() - t0 < plan.duration:
                key = f"k{workload_rng.randrange(keys)}"
                if workload_rng.random() < 0.7:
                    counter += 1
                    recorder.submit("set", (key, counter), deadline=6.0)
                else:
                    recorder.submit("get", (key,), size=32, deadline=6.0)
                time.sleep(op_interval)
            workload_end = time.monotonic() - t0
            # Settled tail: read every key back with generous deadlines so
            # the history ends on agreed state (not counted in the
            # unavailability window).
            for i in range(keys):
                recorder.submit("get", (f"k{i}",), size=32, deadline=15.0)
        driver.join(timeout=30.0)
        controller.stop()
        controller.join(timeout=30.0)
        live = [
            name for name, proc in cluster.procs.items() if proc.poll() is None
        ]
        fetched, aligned_spans, fetch_errors = collect_aligned_spans(
            cluster.addresses, live, wire, t0
        )
        counters = {
            node: {
                name: int(value)
                for name, value in sorted(snap.snapshot.counters.items())
                if name.startswith("smr.")
            }
            for node, snap in fetched.items()
        }
        read_counters = counters if read_mode is not None else {}

    history = recorder.history()
    result, lin_ok = storm_verdict(history, read_mode)
    reconfigs = list(driver.results)
    # Steps the driver never reached (e.g. it died) count as failed.
    for step in plan.steps[len(reconfigs):]:
        reconfigs.append({
            "offset": step.offset, "members": list(step.members),
            "applied_at": None, "ok": False,
        })
    reconfigured = all(step["ok"] for step in reconfigs)
    chaos_report = ChaosReport(
        ok=lin_ok and reconfigured,
        linearizable=result,
        injections=list(controller.log),
        history=history,
        reconfigured=reconfigured,
        final_members=plan.final_members(),
        elapsed=time.monotonic() - started,
        seed=seed,
        log_dir=str(cluster.log_dir),
        errors=list(controller.errors) + fetch_errors,
        spans=aligned_spans,
        read_counters=read_counters,
    )
    return StormReport(
        plan=plan,
        handoff=handoff,
        read_mode=read_mode,
        chaos=chaos_report,
        reconfigs=reconfigs,
        unavailability=availability_windows(
            recorder.operations, start=0.0, end=workload_end
        ),
        handoff_latency=handoff_latencies(aligned_spans),
        counters=counters,
    )
