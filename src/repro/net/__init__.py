"""Live networked runtime: the second execution backend.

The :mod:`repro.sim` package runs the whole system inside one process on a
virtual clock; this package runs the *same* replica implementation as real
operating-system processes talking length-prefixed JSON over TCP:

* :mod:`repro.net.codec` — wire encoding for every protocol dataclass,
  plus the payload-size estimator the simulator's byte accounting shares;
* :mod:`repro.net.transport` — asyncio TCP transport with the same
  ``send``/``register`` surface as :class:`repro.sim.network.Network`;
* :mod:`repro.net.runtime` — wall-clock implementation of the
  :class:`repro.core.runtime.Runtime` protocol;
* :mod:`repro.net.client` — blocking client/admin library for driving a
  live cluster;
* :mod:`repro.net.cluster` — localhost multi-process cluster launcher
  (used by ``repro cluster`` and the loopback integration test).
"""
