"""Wire codec: every protocol payload <-> length-prefixed frames.

The simulator passes payload dataclasses between processes by reference;
the live runtime cannot, so this module gives each protocol dataclass a
registered wire name and two loss-free encodings that share one registry.

**JSON format** (compatibility / debugging): recursive tagged JSON —

* registered dataclasses  -> ``{"~d": <name>, "~f": {field: value, ...}}``
* tuples                  -> ``{"~t": [...]}`` (decoded back to tuples)
* frozensets / sets       -> ``{"~fs": [...]}`` / ``{"~set": [...]}``
  (elements sorted by encoding, so output bytes are deterministic)
* dicts                   -> ``{"~m": [[key, value], ...]}`` (preserves
  non-string keys and insertion order)
* ``None``/bool/int/float/str pass through natively.

Because *every* container is tagged, tag dictionaries are the only JSON
objects the format produces — there is no collision with application data.

**Binary format** (the fast path, and the default): one tag byte per
value, varint lengths, zigzag-varint integers, struct-packed doubles.
Registered dataclasses are encoded as a varint *type id* followed by the
field values in declaration order — no names on the wire. The type-id and
field tables are interned deterministically from the registry (sorted
wire names), so every process that bootstraps the same protocol derives
the same tables; see :func:`wire_tables`.

A frame is a 4-byte big-endian length followed by the body. A JSON body
is the UTF-8 object ``{"s": sender, "d": dest, "p": payload}``; a binary
body starts with the magic byte ``0xB5`` followed by varint-length sender
and dest ids and the encoded payload. The first body byte therefore
identifies the format (``{`` vs ``0xB5``), which is what lets the live
transport negotiate per connection: every receiver decodes both formats,
senders pick one, and replies mirror the format the requester spoke.

The codec doubles as the **payload-size estimator** for the simulator:
:func:`estimate_size` returns the byte count the live transport would put
on the wire for a payload (under the active format), so simulated byte
accounting (the T4 message-cost experiment) reflects real frame sizes
instead of a hardcoded 256-byte default. Unencodable payloads (bare test
objects, baseline-only messages) fall back to that legacy default rather
than failing.
"""

from __future__ import annotations

import json
import struct
import threading
from dataclasses import fields, is_dataclass
from typing import Any, Callable, Iterable

from repro.errors import ReproError
from repro.types import NodeId


class CodecError(ReproError):
    """Payload cannot be encoded/decoded by the wire codec."""


#: fallback estimate for payloads outside the registered protocol
#: (kept equal to the historical hardcoded default).
DEFAULT_ESTIMATE = 256

#: refuse frames larger than this (corrupt length prefix / abuse guard).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: the wire formats every receiver understands.
WIRE_FORMATS = ("json", "binary")

#: first byte of a binary frame body (a JSON body always starts with
#: ``{`` = 0x7B, so one byte disambiguates the two formats).
BINARY_MAGIC = 0xB5

#: format used when an encode call does not name one; the live transport
#: and the simulator's byte accounting both follow this default.
DEFAULT_WIRE_FORMAT = "binary"

_REGISTRY: dict[str, type] = {}
_BY_TYPE: dict[type, str] = {}
_bootstrapped = False
_BOOTSTRAP_LOCK = threading.Lock()

#: types whose instances may be byte-memoized across codec calls. Only
#: for deeply immutable values that fan out across several envelopes per
#: commit: the same ``Batch`` object rides the leader's ``Accept`` and
#: ``Decide`` wire frames *and* every replica's ``WalAccept``/``WalDecide``
#: records, so caching its encoded run turns up to four full encode passes
#: per batch into one encode plus three splices. The memo keys on object
#: identity (one entry per type), which is sound exactly because the
#: values are frozen: the same object always encodes to the same bytes.
_CACHEABLE: set[type] = set()
#: wire-table type ids of the cacheable types (rebuilt with the tables).
_CACHEABLE_TIDS: frozenset[int] = frozenset()
#: per-type one-entry memo: type -> (object, its encoded byte run).
_PAYLOAD_MEMO: dict[type, tuple[Any, bytes]] = {}


def register(cls: type, name: str | None = None) -> type:
    """Register a dataclass under a wire name (idempotent; returns ``cls``)."""
    if not is_dataclass(cls):
        raise CodecError(f"{cls!r} is not a dataclass")
    wire_name = name or cls.__name__
    existing = _REGISTRY.get(wire_name)
    if existing is not None and existing is not cls:
        raise CodecError(f"wire name {wire_name!r} already taken by {existing!r}")
    _REGISTRY[wire_name] = cls
    _BY_TYPE[cls] = wire_name
    return cls


def registered_names() -> list[str]:
    """Sorted wire names of every registered payload type."""
    _bootstrap()
    return sorted(_REGISTRY)


def registered_type(name: str) -> type:
    _bootstrap()
    cls = _REGISTRY.get(name)
    if cls is None:
        raise CodecError(f"unknown wire type {name!r}")
    return cls


def _bootstrap() -> None:
    """Register the whole protocol surface (lazy: avoids import cycles).

    Thread-safe: concurrent clients (the shard client's parallel group
    submits, threaded map refreshes, bench fan-out arms) may race to the
    first codec call. The done-flag must only be published *after* the
    full registry is built — a reader that returns early on a half-built
    table sees arbitrary types as unencodable.
    """
    global _bootstrapped
    if _bootstrapped:
        return
    with _BOOTSTRAP_LOCK:
        if _bootstrapped:
            return
        _register_protocol()
        _bootstrapped = True


def _register_protocol() -> None:
    from repro import types as t
    from repro.consensus import messages as m
    from repro.consensus.ballot import Ballot
    from repro.consensus.interface import Batch, InstanceMessage, Noop
    from repro.core import client as cl
    from repro.core import command as cmd
    from repro.core import reconfig as rc
    from repro.core import state_transfer as st
    from repro.net import chaos as ch
    from repro.net import observe as ob
    from repro.shard import messages as sm
    from repro.shard import shardmap as smap
    from repro.storage import records as sr

    protocol: Iterable[type] = (
        # shared primitives
        t.CommandId,
        t.Command,
        t.Reply,
        t.Membership,
        t.Configuration,
        t.VirtualLogPosition,
        t.Decision,
        Ballot,
        # engine inner messages
        m.Prepare,
        m.Promise,
        m.PrepareNack,
        m.Accept,
        m.Accepted,
        m.AcceptNack,
        m.Decide,
        m.Heartbeat,
        m.HeartbeatAck,
        m.ProposeForward,
        m.CatchupRequest,
        m.CatchupReply,
        # engine multiplexing envelope + fillers
        InstanceMessage,
        Noop,
        Batch,
        # client protocol
        cl.ClientRequest,
        cl.ClientReply,
        cl.RequestBatch,
        cl.ReplyBatch,
        cl.Redirect,
        # reconfiguration protocol
        cmd.ReconfigCommand,
        cmd.ReconfigRequest,
        rc.EpochAnnounce,
        rc.ObserverSubscribe,
        rc.ObserverBootstrap,
        rc.ObserverUpdate,
        # state transfer
        st.SnapshotRequest,
        st.SnapshotReply,
        st.SnapshotUnavailable,
        st.DirtySnapshotReply,
        st.SnapshotChunkRequest,
        st.SnapshotChunkReply,
        # fault-injection admin protocol (serve --chaos only)
        ch.ChaosCommand,
        ch.ChaosAck,
        # observability admin protocol (the #metrics endpoint)
        ob.MetricsRequest,
        ob.MetricsSnapshot,
        # shard protocol: the map itself, fetch/route, redirects, admin
        smap.KeyRange,
        smap.ShardAssignment,
        smap.GroupInfo,
        smap.ShardMap,
        sm.ShardMapRequest,
        sm.ShardMapReply,
        sm.RouteRequest,
        sm.RouteReply,
        sm.WrongShard,
        sm.SplitShard,
        sm.MoveShard,
        sm.ShardAck,
        # durable storage records (WAL + checkpoints; disk, not wire)
        sr.WalPromise,
        sr.WalAccept,
        sr.WalDecide,
        sr.WalEpochOpen,
        sr.WalDirtyOverlap,
        sr.CheckpointRecord,
    )
    for cls in protocol:
        register(cls)
    # The batch payload is the one value that crosses many envelopes per
    # commit; everything else on the wire is either small or unique.
    _CACHEABLE.add(Batch)


# ---------------------------------------------------------------------------
# Recursive value encoding
# ---------------------------------------------------------------------------


def _encode(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    wire_name = _BY_TYPE.get(type(value))
    if wire_name is not None:
        return {
            "~d": wire_name,
            "~f": {f.name: _encode(getattr(value, f.name)) for f in fields(value)},
        }
    if isinstance(value, tuple):
        return {"~t": [_encode(item) for item in value]}
    if isinstance(value, list):
        return [_encode(item) for item in value]
    if isinstance(value, frozenset):
        return {"~fs": _encode_sorted(value)}
    if isinstance(value, set):
        return {"~set": _encode_sorted(value)}
    if isinstance(value, dict):
        return {"~m": [[_encode(k), _encode(v)] for k, v in value.items()]}
    raise CodecError(f"unencodable payload of type {type(value).__name__}: {value!r}")


def _encode_sorted(items: Iterable[Any]) -> list[Any]:
    encoded = [_encode(item) for item in items]
    encoded.sort(key=lambda e: json.dumps(e, separators=(",", ":"), sort_keys=True))
    return encoded


def _decode(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_decode(item) for item in value]
    if isinstance(value, dict):
        if "~d" in value:
            cls = registered_type(value["~d"])
            kwargs = {name: _decode(item) for name, item in value["~f"].items()}
            return cls(**kwargs)
        if "~t" in value:
            return tuple(_decode(item) for item in value["~t"])
        if "~fs" in value:
            return frozenset(_decode(item) for item in value["~fs"])
        if "~set" in value:
            return {_decode(item) for item in value["~set"]}
        if "~m" in value:
            return {_decode(k): _decode(v) for k, v in value["~m"]}
        raise CodecError(f"untagged JSON object in wire payload: {value!r}")
    raise CodecError(f"unexpected JSON value: {value!r}")


# ---------------------------------------------------------------------------
# Binary value encoding (the fast path)
# ---------------------------------------------------------------------------

# One tag byte per value. All tags are < 0x20, so a binary payload can
# never be mistaken for UTF-8 JSON (which starts with a printable char).
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_LIST = 0x06
_T_TUPLE = 0x07
_T_SET = 0x08
_T_FROZENSET = 0x09
_T_DICT = 0x0A
_T_DATACLASS = 0x0B

_PACK_FLOAT = struct.Struct("!d").pack
_UNPACK_FLOAT = struct.Struct("!d").unpack_from

#: decode-side intern table for short wire strings (bytes -> str).
_STR_CACHE: dict[bytes, str] = {}

#: interned wire tables, rebuilt if the registry grows:
#: (registry_size, types_by_id, type -> id, field-name tuples by id,
#:  fast constructors by id).
_TABLES: (
    tuple[int, list[type], dict[type, int], list[tuple[str, ...]], list[Callable]]
    | None
) = None


def _dataclass_builder(cls: type, names: tuple[str, ...]) -> Callable[[list], Any]:
    """A fast ``decoded field list -> instance`` constructor for ``cls``.

    ``slots=True, frozen=True`` dataclasses pay one ``object.__setattr__``
    per field inside ``__init__``; binding the slot descriptors' ``__set__``
    on a bare ``object.__new__`` instance skips the ``__init__`` frame and
    the per-field attribute-name lookup. Classes with a ``__post_init__``
    (or without slot descriptors for every field) keep the plain
    constructor, which runs whatever logic ``__init__`` carries.
    """
    if getattr(cls, "__post_init__", None) is not None:
        return lambda items: cls(*items)
    setters = []
    for name in names:
        descriptor = getattr(cls, name, None)
        if not hasattr(descriptor, "__set__"):
            return lambda items: cls(*items)
        setters.append(descriptor.__set__)
    # exec-specialize for the arity: no per-field loop at build time.
    env = {"_new": object.__new__, "_cls": cls}
    env.update({f"_s{i}": s for i, s in enumerate(setters)})
    body = "".join(f" _s{i}(o, items[{i}])\n" for i in range(len(setters)))
    code = f"def build(items):\n o = _new(_cls)\n{body} return o\n"
    exec(code, env)  # noqa: S102 - compile-time codegen over trusted input
    return env["build"]


def wire_tables() -> tuple[
    int, list[type], dict[type, int], list[tuple[str, ...]], list[Callable]
]:
    """The interned type/field tables the binary format encodes against.

    Derived deterministically from the registry (type ids are positions in
    the sorted wire-name list; field tables are dataclass declaration
    order), so two processes agree on the tables iff they registered the
    same protocol — which every ``repro`` process does at bootstrap.
    """
    global _TABLES, _CACHEABLE_TIDS
    _bootstrap()
    if _TABLES is None or _TABLES[0] != len(_REGISTRY):
        types = [_REGISTRY[name] for name in sorted(_REGISTRY)]
        ids = {cls: i for i, cls in enumerate(types)}
        field_table = [tuple(f.name for f in fields(cls)) for cls in types]
        builders = [
            _dataclass_builder(cls, names)
            for cls, names in zip(types, field_table)
        ]
        _TABLES = (len(_REGISTRY), types, ids, field_table, builders)
        _CACHEABLE_TIDS = frozenset(
            ids[cls] for cls in _CACHEABLE if cls in ids
        )
        _PAYLOAD_MEMO.clear()
    return _TABLES


def _write_varint(out: bytearray, n: int) -> None:
    while n >= 0x80:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    b = buf[pos]
    pos += 1
    if b < 0x80:
        return b, pos
    result = b & 0x7F
    shift = 7
    while True:
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if b < 0x80:
            return result, pos
        shift += 7


def _bencode(
    value: Any,
    out: bytearray,
    ids: dict[type, int],
    field_table: list[tuple[str, ...]],
) -> None:
    tid = ids.get(type(value))
    if tid is not None:
        if type(value) in _CACHEABLE:
            entry = _PAYLOAD_MEMO.get(type(value))
            if entry is not None and entry[0] is value:
                out += entry[1]
                return
            start = len(out)
            out.append(_T_DATACLASS)
            _write_varint(out, tid)
            for name in field_table[tid]:
                _bencode(getattr(value, name), out, ids, field_table)
            _PAYLOAD_MEMO[type(value)] = (value, bytes(out[start:]))
            return
        out.append(_T_DATACLASS)
        _write_varint(out, tid)
        for name in field_table[tid]:
            _bencode(getattr(value, name), out, ids, field_table)
        return
    t = type(value)
    if t is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _write_varint(out, len(raw))
        out += raw
    elif t is int:
        out.append(_T_INT)
        # zigzag keeps negative magnitudes short without fixed width
        _write_varint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))
    elif t is bool:
        out.append(_T_TRUE if value else _T_FALSE)
    elif value is None:
        out.append(_T_NONE)
    elif t is float:
        out.append(_T_FLOAT)
        out += _PACK_FLOAT(value)
    elif t is tuple or t is list:
        out.append(_T_TUPLE if t is tuple else _T_LIST)
        _write_varint(out, len(value))
        for item in value:
            _bencode(item, out, ids, field_table)
    elif t is dict:
        out.append(_T_DICT)
        _write_varint(out, len(value))
        for key, item in value.items():
            _bencode(key, out, ids, field_table)
            _bencode(item, out, ids, field_table)
    elif t is set or t is frozenset:
        out.append(_T_FROZENSET if t is frozenset else _T_SET)
        _write_varint(out, len(value))
        encoded: list[bytes] = []
        for item in value:
            chunk = bytearray()
            _bencode(item, chunk, ids, field_table)
            encoded.append(bytes(chunk))
        encoded.sort()  # deterministic bytes regardless of set iteration order
        for chunk in encoded:
            out += chunk
    elif isinstance(value, (str, bool, int, float, tuple, list, dict, set, frozenset)):
        # subclasses (NewType aliases are plain str/int at runtime, but be
        # permissive the same way the JSON encoder's isinstance checks are)
        _bencode(
            str(value) if isinstance(value, str) else
            bool(value) if isinstance(value, bool) else
            int(value) if isinstance(value, int) else
            float(value) if isinstance(value, float) else
            tuple(value) if isinstance(value, tuple) else
            list(value) if isinstance(value, list) else
            dict(value) if isinstance(value, dict) else
            frozenset(value) if isinstance(value, frozenset) else
            set(value),
            out, ids, field_table,
        )
    else:
        raise CodecError(
            f"unencodable payload of type {type(value).__name__}: {value!r}"
        )


def _bdecode(
    buf: bytes,
    start: int,
    types: list[type],
    field_table: list[tuple[str, ...]],
    builders: list[Callable],
) -> tuple[Any, int]:
    """Decode one value at ``start``; returns ``(value, end_offset)``.

    Iterative with an explicit container stack (instead of one Python
    call per value) and hand-inlined varint reads: this is the live
    transport's per-message hot path, and call overhead is the dominant
    cost of a recursive decoder.

    Each frame is ``[kind, need, items, tid]``: a container waiting for
    ``need`` more values. ``kind`` reuses the wire tags. The innermost
    frame lives in the local ``top`` (parents on ``stack``), so the
    per-value feed path indexes no lists.
    """
    pos = start
    n_types = len(types)
    stack: list[list] = []
    top: list | None = None
    while True:
        tag = buf[pos]
        pos += 1
        # -- one value header: scalars complete immediately, containers
        #    push a frame and loop back for their elements.
        if tag == _T_DATACLASS:
            node_start = pos - 1  # the tag byte, for the decode-side memo
            b = buf[pos]
            pos += 1
            if b < 0x80:
                tid = b
            else:
                tid = b & 0x7F
                shift = 7
                while b >= 0x80:
                    b = buf[pos]
                    pos += 1
                    tid |= (b & 0x7F) << shift
                    shift += 7
            if tid >= n_types:
                raise CodecError(f"unknown binary type id {tid}")
            need = len(field_table[tid])
            if need:
                if top is not None:
                    stack.append(top)
                top = [_T_DATACLASS, need, [], tid, node_start]
                continue
            value = builders[tid]([])
        elif tag == _T_INT:
            b = buf[pos]
            pos += 1
            if b < 0x80:
                u = b
            else:
                u = b & 0x7F
                shift = 7
                while b >= 0x80:
                    b = buf[pos]
                    pos += 1
                    u |= (b & 0x7F) << shift
                    shift += 7
            value = (u >> 1) if not (u & 1) else -((u + 1) >> 1)
        elif tag == _T_STR:
            b = buf[pos]
            pos += 1
            if b < 0x80:
                n = b
            else:
                n = b & 0x7F
                shift = 7
                while b >= 0x80:
                    b = buf[pos]
                    pos += 1
                    n |= (b & 0x7F) << shift
                    shift += 7
            raw = buf[pos : pos + n]
            pos += n
            # Short strings repeat constantly on the wire (node ids, op
            # names, keys): intern them so steady-state decode skips the
            # utf-8 codec. Bounded; full reset beats LRU bookkeeping.
            value = _STR_CACHE.get(raw)
            if value is None:
                value = raw.decode("utf-8")
                if n <= 32:
                    if len(_STR_CACHE) >= 8192:
                        _STR_CACHE.clear()
                    _STR_CACHE[raw] = value
        elif tag == _T_NONE:
            value = None
        elif tag == _T_TRUE:
            value = True
        elif tag == _T_FALSE:
            value = False
        elif tag == _T_FLOAT:
            value = _UNPACK_FLOAT(buf, pos)[0]
            pos += 8
        elif tag <= _T_DICT:  # LIST / TUPLE / SET / FROZENSET / DICT
            n = buf[pos]
            pos += 1
            if n >= 0x80:
                b = n
                n = b & 0x7F
                shift = 7
                while b >= 0x80:
                    b = buf[pos]
                    pos += 1
                    n |= (b & 0x7F) << shift
                    shift += 7
            if tag == _T_DICT:
                n *= 2  # a dict needs key and value per entry
            if n:
                if top is not None:
                    stack.append(top)
                top = [tag, n, [], 0]
                continue
            value = (
                [] if tag == _T_LIST
                else () if tag == _T_TUPLE
                else set() if tag == _T_SET
                else frozenset() if tag == _T_FROZENSET
                else {}
            )
        else:
            raise CodecError(f"unknown binary tag 0x{tag:02x}")
        # -- feed the completed value upward, building any containers it
        #    completes along the way. ``top[1]`` counts down to zero.
        while True:
            if top is None:
                return value, pos
            top[2].append(value)
            top[1] -= 1
            if top[1]:
                break
            kind = top[0]
            items = top[2]
            if kind == _T_DATACLASS:
                tid = top[3]
                value = builders[tid](items)
                if tid in _CACHEABLE_TIDS:
                    # A decoded batch is about to be re-encoded into this
                    # replica's WAL records; remember its source bytes so
                    # those encodes become splices.
                    _PAYLOAD_MEMO[types[tid]] = (
                        value, bytes(buf[top[4] : pos])
                    )
            elif kind == _T_LIST:
                value = items
            elif kind == _T_TUPLE:
                value = tuple(items)
            elif kind == _T_SET:
                value = set(items)
            elif kind == _T_FROZENSET:
                value = frozenset(items)
            else:  # _T_DICT: flat [k1, v1, k2, v2, ...] in insertion order
                it = iter(items)
                value = dict(zip(it, it))
            top = stack.pop() if stack else None


# ---------------------------------------------------------------------------
# Payload and frame APIs
# ---------------------------------------------------------------------------


def _check_format(fmt: str | None) -> str:
    if fmt is None:
        return DEFAULT_WIRE_FORMAT
    if fmt not in WIRE_FORMATS:
        raise CodecError(f"unknown wire format {fmt!r}; choose from {WIRE_FORMATS}")
    return fmt


def encode_payload(payload: Any, fmt: str | None = None) -> bytes:
    """Encode one payload to canonical bytes (no frame header)."""
    _bootstrap()
    if _check_format(fmt) == "binary":
        _, _, ids, field_table, _ = wire_tables()
        out = bytearray()
        _bencode(payload, out, ids, field_table)
        return bytes(out)
    return json.dumps(_encode(payload), separators=(",", ":")).encode("utf-8")


def decode_payload(data: bytes) -> Any:
    """Decode one payload; the format is detected from the first byte."""
    _bootstrap()
    if not data:
        raise CodecError("empty payload")
    if data[0] < 0x20:  # a binary tag; JSON starts with a printable char
        _, types, _, field_table, builders = wire_tables()
        try:
            value, end = _bdecode(data, 0, types, field_table, builders)
        except (IndexError, struct.error, UnicodeDecodeError, TypeError) as exc:
            raise CodecError(f"malformed binary payload: {exc}") from exc
        if end != len(data):
            raise CodecError(f"{len(data) - end} trailing bytes after binary payload")
        return value
    try:
        return _decode(json.loads(data.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed json payload: {exc}") from exc


def frame_format(body: bytes) -> str:
    """Which wire format a frame body is in (``"json"`` or ``"binary"``)."""
    return "binary" if body[:1] == bytes((BINARY_MAGIC,)) else "json"


def encode_frame(
    sender: NodeId, dest: NodeId, payload: Any, fmt: str | None = None
) -> bytes:
    """One wire frame: 4-byte big-endian length + envelope body."""
    _bootstrap()
    if _check_format(fmt) == "binary":
        _, _, ids, field_table, _ = wire_tables()
        out = bytearray(4)  # length prefix patched in below
        out.append(BINARY_MAGIC)
        for node in (sender, dest):
            raw = str(node).encode("utf-8")
            _write_varint(out, len(raw))
            out += raw
        _bencode(payload, out, ids, field_table)
        body_len = len(out) - 4
        if body_len > MAX_FRAME_BYTES:
            raise CodecError(f"frame body of {body_len} bytes exceeds MAX_FRAME_BYTES")
        out[0:4] = body_len.to_bytes(4, "big")
        return bytes(out)
    body = json.dumps(
        {"s": str(sender), "d": str(dest), "p": _encode(payload)},
        separators=(",", ":"),
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame body of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return len(body).to_bytes(4, "big") + body


def encode_frame_precoded(
    sender: NodeId, dest: NodeId, payload_bytes: bytes, fmt: str | None = None
) -> bytes:
    """Frame an already-encoded payload (from :func:`encode_payload`).

    Broadcast fast path: a payload fanned out to N destinations is
    encoded once and framed N times, skipping the recursive encode for
    all but the first copy. Byte-identical to :func:`encode_frame` for
    the same payload (pinned by a codec parity test).
    """
    _bootstrap()
    if _check_format(fmt) == "binary":
        out = bytearray(4)  # length prefix patched in below
        out.append(BINARY_MAGIC)
        for node in (sender, dest):
            raw = str(node).encode("utf-8")
            _write_varint(out, len(raw))
            out += raw
        out += payload_bytes
        body_len = len(out) - 4
        if body_len > MAX_FRAME_BYTES:
            raise CodecError(f"frame body of {body_len} bytes exceeds MAX_FRAME_BYTES")
        out[0:4] = body_len.to_bytes(4, "big")
        return bytes(out)
    prefix = json.dumps(
        {"s": str(sender), "d": str(dest)}, separators=(",", ":")
    ).encode("utf-8")
    body = prefix[:-1] + b',"p":' + payload_bytes + b"}"
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame body of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return len(body).to_bytes(4, "big") + body


def decode_frame_body(body: bytes) -> tuple[NodeId, NodeId, Any]:
    """Decode a frame body (the bytes after the length prefix).

    Accepts both wire formats; the first byte says which one was used.
    """
    _bootstrap()
    if not body:
        raise CodecError("empty frame body")
    if body[0] == BINARY_MAGIC:
        _, types, _, field_table, builders = wire_tables()
        try:
            pos = 1
            n, pos = _read_varint(body, pos)
            sender = body[pos : pos + n].decode("utf-8")
            pos += n
            n, pos = _read_varint(body, pos)
            dest = body[pos : pos + n].decode("utf-8")
            pos += n
            payload, end = _bdecode(body, pos, types, field_table, builders)
        except (IndexError, struct.error, UnicodeDecodeError, TypeError) as exc:
            raise CodecError(f"malformed binary frame: {exc}") from exc
        if end != len(body):
            raise CodecError(f"{len(body) - end} trailing bytes after binary frame")
        return NodeId(sender), NodeId(dest), payload
    try:
        envelope = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"malformed JSON frame: {exc}") from exc
    return (
        NodeId(envelope["s"]),
        NodeId(envelope["d"]),
        _decode(envelope["p"]),
    )


def frame_length(header: bytes) -> int:
    """Parse and validate the 4-byte length prefix."""
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    return length


_OVERHEAD: dict[str, int] = {}


def frame_overhead(fmt: str | None = None) -> int:
    """Per-frame overhead of the given format, measured not guessed.

    Computed from an actual encoded envelope (length prefix + sender/dest
    ids of a typical ``n1`` -> ``n2`` frame), so size accounting stays
    honest whichever codec is active instead of assuming the historical
    hardcoded 36 bytes of the JSON envelope.
    """
    fmt = _check_format(fmt)
    cached = _OVERHEAD.get(fmt)
    if cached is None:
        frame = encode_frame(NodeId("n1"), NodeId("n2"), None, fmt)
        cached = len(frame) - len(encode_payload(None, fmt))
        _OVERHEAD[fmt] = cached
    return cached


def wire_size(payload: Any, fmt: str | None = None) -> int:
    """Exact bytes this payload would occupy on the wire, frame included."""
    return frame_overhead(fmt) + len(encode_payload(payload, fmt))


def estimate_size(payload: Any, fallback: int = DEFAULT_ESTIMATE) -> int:
    """Best-effort :func:`wire_size`; ``fallback`` for unencodable payloads.

    This is the estimator :class:`repro.sim.network.Network` applies when a
    send does not specify an explicit (modelled) size.
    """
    try:
        return wire_size(payload)
    except (CodecError, TypeError, ValueError):
        return fallback


def payload_shape(payload: Any, depth: int = 3) -> Any:
    """A cheap hashable key describing a payload's size-relevant shape.

    Two payloads with the same shape encode to (nearly) the same number of
    bytes: strings are keyed by length, ints by bit length (a varint-size
    proxy), containers and registered dataclasses by their element shapes
    down to ``depth`` levels (deeper values collapse to a type+length
    summary). The simulator memoizes :func:`estimate_size` by this key so
    repeated sends of same-shaped payloads skip the full encode.

    Returns ``None`` for payloads the codec cannot encode (the caller
    should skip the cache and fall back directly).
    """
    t = type(payload)
    if payload is None or t is bool:
        return payload
    if t is int:
        return ("i", payload.bit_length())
    if t is float:
        return ("f",)
    if t is str:
        return ("s", len(payload))
    if depth <= 0:
        try:
            return ("?", t.__name__, len(payload))  # type: ignore[arg-type]
        except TypeError:
            return ("?", t.__name__, 0)
    _, _, ids, field_table, _ = wire_tables()
    tid = ids.get(t)
    if tid is not None:
        return (
            tid,
            tuple(
                payload_shape(getattr(payload, name), depth - 1)
                for name in field_table[tid]
            ),
        )
    if t is tuple or t is list or t is set or t is frozenset:
        return (
            t.__name__,
            tuple(payload_shape(item, depth - 1) for item in payload),
        )
    if t is dict:
        return (
            "m",
            tuple(
                (payload_shape(k, depth - 1), payload_shape(v, depth - 1))
                for k, v in payload.items()
            ),
        )
    return None


__all__ = [
    "BINARY_MAGIC",
    "CodecError",
    "DEFAULT_ESTIMATE",
    "DEFAULT_WIRE_FORMAT",
    "MAX_FRAME_BYTES",
    "WIRE_FORMATS",
    "decode_frame_body",
    "decode_payload",
    "encode_frame",
    "encode_frame_precoded",
    "encode_payload",
    "estimate_size",
    "frame_format",
    "frame_length",
    "frame_overhead",
    "payload_shape",
    "register",
    "registered_names",
    "registered_type",
    "wire_size",
]
