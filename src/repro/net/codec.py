"""Wire codec: every protocol payload <-> length-prefixed JSON frames.

The simulator passes payload dataclasses between processes by reference;
the live runtime cannot, so this module gives each protocol dataclass a
registered wire name and a recursive, loss-free JSON encoding:

* registered dataclasses  -> ``{"~d": <name>, "~f": {field: value, ...}}``
* tuples                  -> ``{"~t": [...]}`` (decoded back to tuples)
* frozensets / sets       -> ``{"~fs": [...]}`` / ``{"~set": [...]}``
  (elements sorted by encoding, so output bytes are deterministic)
* dicts                   -> ``{"~m": [[key, value], ...]}`` (preserves
  non-string keys and insertion order)
* ``None``/bool/int/float/str pass through natively.

Because *every* container is tagged, tag dictionaries are the only JSON
objects the format produces — there is no collision with application data.

A frame on the wire is a 4-byte big-endian length followed by the UTF-8
JSON body ``{"s": sender, "d": dest, "p": payload}``.

The codec doubles as the **payload-size estimator** for the simulator:
:func:`estimate_size` returns the byte count the live transport would put
on the wire for a payload, so simulated byte accounting (the T4
message-cost experiment) reflects real frame sizes instead of a hardcoded
256-byte default. Unencodable payloads (bare test objects, baseline-only
messages) fall back to that legacy default rather than failing.
"""

from __future__ import annotations

import json
from dataclasses import fields, is_dataclass
from typing import Any, Callable, Iterable

from repro.errors import ReproError
from repro.types import NodeId


class CodecError(ReproError):
    """Payload cannot be encoded/decoded by the wire codec."""


#: fallback estimate for payloads outside the registered protocol
#: (kept equal to the historical hardcoded default).
DEFAULT_ESTIMATE = 256

#: per-frame overhead: 4-byte length prefix plus the envelope keys and
#: sender/dest ids of a typical frame.
FRAME_OVERHEAD = 36

#: refuse frames larger than this (corrupt length prefix / abuse guard).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_REGISTRY: dict[str, type] = {}
_BY_TYPE: dict[type, str] = {}
_bootstrapped = False


def register(cls: type, name: str | None = None) -> type:
    """Register a dataclass under a wire name (idempotent; returns ``cls``)."""
    if not is_dataclass(cls):
        raise CodecError(f"{cls!r} is not a dataclass")
    wire_name = name or cls.__name__
    existing = _REGISTRY.get(wire_name)
    if existing is not None and existing is not cls:
        raise CodecError(f"wire name {wire_name!r} already taken by {existing!r}")
    _REGISTRY[wire_name] = cls
    _BY_TYPE[cls] = wire_name
    return cls


def registered_names() -> list[str]:
    """Sorted wire names of every registered payload type."""
    _bootstrap()
    return sorted(_REGISTRY)


def registered_type(name: str) -> type:
    _bootstrap()
    cls = _REGISTRY.get(name)
    if cls is None:
        raise CodecError(f"unknown wire type {name!r}")
    return cls


def _bootstrap() -> None:
    """Register the whole protocol surface (lazy: avoids import cycles)."""
    global _bootstrapped
    if _bootstrapped:
        return
    _bootstrapped = True

    from repro import types as t
    from repro.consensus import messages as m
    from repro.consensus.ballot import Ballot
    from repro.consensus.interface import Batch, InstanceMessage, Noop
    from repro.core import client as cl
    from repro.core import command as cmd
    from repro.core import reconfig as rc
    from repro.core import state_transfer as st

    protocol: Iterable[type] = (
        # shared primitives
        t.CommandId,
        t.Command,
        t.Reply,
        t.Membership,
        t.Configuration,
        t.VirtualLogPosition,
        t.Decision,
        Ballot,
        # engine inner messages
        m.Prepare,
        m.Promise,
        m.PrepareNack,
        m.Accept,
        m.Accepted,
        m.AcceptNack,
        m.Decide,
        m.Heartbeat,
        m.HeartbeatAck,
        m.ProposeForward,
        m.CatchupRequest,
        m.CatchupReply,
        # engine multiplexing envelope + fillers
        InstanceMessage,
        Noop,
        Batch,
        # client protocol
        cl.ClientRequest,
        cl.ClientReply,
        cl.Redirect,
        # reconfiguration protocol
        cmd.ReconfigCommand,
        cmd.ReconfigRequest,
        rc.EpochAnnounce,
        rc.ObserverSubscribe,
        rc.ObserverBootstrap,
        rc.ObserverUpdate,
        # state transfer
        st.SnapshotRequest,
        st.SnapshotReply,
        st.SnapshotUnavailable,
        st.SnapshotChunkRequest,
        st.SnapshotChunkReply,
    )
    for cls in protocol:
        register(cls)


# ---------------------------------------------------------------------------
# Recursive value encoding
# ---------------------------------------------------------------------------


def _encode(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    wire_name = _BY_TYPE.get(type(value))
    if wire_name is not None:
        return {
            "~d": wire_name,
            "~f": {f.name: _encode(getattr(value, f.name)) for f in fields(value)},
        }
    if isinstance(value, tuple):
        return {"~t": [_encode(item) for item in value]}
    if isinstance(value, list):
        return [_encode(item) for item in value]
    if isinstance(value, frozenset):
        return {"~fs": _encode_sorted(value)}
    if isinstance(value, set):
        return {"~set": _encode_sorted(value)}
    if isinstance(value, dict):
        return {"~m": [[_encode(k), _encode(v)] for k, v in value.items()]}
    raise CodecError(f"unencodable payload of type {type(value).__name__}: {value!r}")


def _encode_sorted(items: Iterable[Any]) -> list[Any]:
    encoded = [_encode(item) for item in items]
    encoded.sort(key=lambda e: json.dumps(e, separators=(",", ":"), sort_keys=True))
    return encoded


def _decode(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_decode(item) for item in value]
    if isinstance(value, dict):
        if "~d" in value:
            cls = registered_type(value["~d"])
            kwargs = {name: _decode(item) for name, item in value["~f"].items()}
            return cls(**kwargs)
        if "~t" in value:
            return tuple(_decode(item) for item in value["~t"])
        if "~fs" in value:
            return frozenset(_decode(item) for item in value["~fs"])
        if "~set" in value:
            return {_decode(item) for item in value["~set"]}
        if "~m" in value:
            return {_decode(k): _decode(v) for k, v in value["~m"]}
        raise CodecError(f"untagged JSON object in wire payload: {value!r}")
    raise CodecError(f"unexpected JSON value: {value!r}")


# ---------------------------------------------------------------------------
# Payload and frame APIs
# ---------------------------------------------------------------------------


def encode_payload(payload: Any) -> bytes:
    """Encode one payload to canonical JSON bytes (no frame header)."""
    _bootstrap()
    return json.dumps(_encode(payload), separators=(",", ":")).encode("utf-8")


def decode_payload(data: bytes) -> Any:
    _bootstrap()
    return _decode(json.loads(data.decode("utf-8")))


def encode_frame(sender: NodeId, dest: NodeId, payload: Any) -> bytes:
    """One wire frame: 4-byte big-endian length + JSON envelope."""
    _bootstrap()
    body = json.dumps(
        {"s": str(sender), "d": str(dest), "p": _encode(payload)},
        separators=(",", ":"),
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame body of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return len(body).to_bytes(4, "big") + body


def decode_frame_body(body: bytes) -> tuple[NodeId, NodeId, Any]:
    """Decode a frame body (the bytes after the length prefix)."""
    _bootstrap()
    envelope = json.loads(body.decode("utf-8"))
    return (
        NodeId(envelope["s"]),
        NodeId(envelope["d"]),
        _decode(envelope["p"]),
    )


def frame_length(header: bytes) -> int:
    """Parse and validate the 4-byte length prefix."""
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    return length


def wire_size(payload: Any) -> int:
    """Exact bytes this payload would occupy on the wire, frame included."""
    return FRAME_OVERHEAD + len(encode_payload(payload))


def estimate_size(payload: Any, fallback: int = DEFAULT_ESTIMATE) -> int:
    """Best-effort :func:`wire_size`; ``fallback`` for unencodable payloads.

    This is the estimator :class:`repro.sim.network.Network` applies when a
    send does not specify an explicit (modelled) size.
    """
    try:
        return wire_size(payload)
    except (CodecError, TypeError, ValueError):
        return fallback


__all__ = [
    "CodecError",
    "DEFAULT_ESTIMATE",
    "FRAME_OVERHEAD",
    "MAX_FRAME_BYTES",
    "decode_frame_body",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "estimate_size",
    "frame_length",
    "register",
    "registered_names",
    "registered_type",
    "wire_size",
]
