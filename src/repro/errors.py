"""Exception hierarchy for the library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with one clause. Simulation-configuration mistakes
raise eagerly (fail fast) rather than corrupting a run.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulator (e.g., scheduling in the past)."""


class NetworkError(ReproError):
    """Invalid network configuration or addressing (e.g., unknown endpoint)."""


class ProtocolError(ReproError):
    """A protocol implementation detected an internal inconsistency.

    These indicate bugs (safety violations), never expected runtime events,
    and therefore abort the simulation instead of being swallowed.
    """


class AgreementViolation(ProtocolError):
    """Two replicas decided different values for the same slot."""


class ConfigurationError(ReproError):
    """Invalid cluster or experiment configuration."""


class StateTransferError(ReproError):
    """State transfer could not complete (no live source, bad snapshot)."""


class VerificationError(ReproError):
    """A correctness oracle (invariant or linearizability check) failed."""


class HistoryError(VerificationError):
    """A recorded operation history is malformed (unmatched call/return)."""
