"""Replicated lock service (Chubby-flavoured, lease-free).

Operations:

* ``"acquire" (lock, owner)`` — grants if free or already held by owner;
  returns success bool.
* ``"release" (lock, owner)`` — releases if held by owner; returns bool.
* ``"holder" (lock,)`` — returns the current owner or ``None``.

The mutual-exclusion property — between a successful acquire and the
matching release, no other owner's acquire on the same lock succeeds — is
checkable purely from acknowledged replies, giving another cheap
whole-history oracle that stresses reply correctness (not just log
agreement) through reconfigurations.
"""

from __future__ import annotations

from typing import Any

from repro.core.statemachine import StateMachine
from repro.errors import ProtocolError
from repro.types import Command


class LockServiceStateMachine(StateMachine):
    """Deterministic lock table."""

    def __init__(self):
        self._holders: dict[str, str] = {}

    def apply(self, command: Command) -> Any:
        op = command.op
        args = command.args
        if op == "acquire":
            lock, owner = args
            holder = self._holders.get(lock)
            if holder is None or holder == owner:
                self._holders[lock] = owner
                return True
            return False
        if op == "release":
            lock, owner = args
            if self._holders.get(lock) == owner:
                del self._holders[lock]
                return True
            return False
        if op == "holder":
            (lock,) = args
            return self._holders.get(lock)
        raise ProtocolError(f"unknown lock operation {op!r}")

    def snapshot(self) -> Any:
        return dict(self._holders)

    def restore(self, snapshot: Any) -> None:
        self._holders = dict(snapshot)

    def snapshot_bytes(self) -> int:
        return 16 + 48 * len(self._holders)
