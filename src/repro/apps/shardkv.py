"""Shard-aware KV store: ownership enforcement inside the replicated log.

:class:`ShardedKvStateMachine` wraps the plain
:class:`~repro.apps.kvstore.KvStateMachine` with a notion of which hash
ranges this *group* currently owns. The crucial property: ownership
changes are themselves **replicated commands** (``shard_retire`` /
``shard_install``), so within one group they are totally ordered against
every read and write in the group's virtual log. That single fact is the
whole cutover safety argument:

* every op on a key that serializes *before* the retire command executes
  normally against the old owner;
* the retire command atomically stops service for the range **and**
  captures its items — there is no drain window to reason about, the
  log position of the retire *is* the drain;
* every later op on the range gets a :class:`~repro.shard.messages.WrongShard`
  reply value carrying a forwarding hint, and never mutates state;
* the install command at the target group atomically starts service for
  the range with exactly the captured items.

Because the director only installs after the retire's reply returns, the
install strictly follows the retire in real time, so per-key histories
across the two groups remain linearizable (verified live by
:mod:`repro.shard.scenario` with the Wing–Gong oracle).

Shard state (owned ranges, forwarding hints, map version) is part of the
snapshot, so it survives group-internal reconfigurations, state transfer
to joiners, and durable recovery — a replica can never "forget" that a
range moved away, which is the amnesia that would break the argument.
"""

from __future__ import annotations

from typing import Any

from repro.apps.kvstore import KvStateMachine
from repro.core.statemachine import StateMachine
from repro.errors import ProtocolError
from repro.shard.messages import WrongShard
from repro.shard.shardmap import HASH_SPACE, key_point
from repro.types import Command

#: KV operations whose first argument is the routing key.
KEYED_OPS = ("get", "set", "delete", "cas")

#: administrative operations understood by the sharded wrapper.
SHARD_OPS = ("shard_retire", "shard_install", "shard_info")


class ShardedKvStateMachine(StateMachine):
    """A KV store that serves only the hash ranges its group owns."""

    def __init__(
        self,
        group: str = "g0",
        owned: tuple[tuple[int, int], ...] = ((0, HASH_SPACE),),
        version: int = 1,
        value_bytes: int = 64,
    ):
        self.inner = KvStateMachine(value_bytes)
        self.group = str(group)
        self.version = int(version)
        #: sorted, disjoint (lo, hi) ranges this group currently serves.
        self.owned: tuple[tuple[int, int], ...] = tuple(sorted(owned))
        #: retired ranges -> (target group, map version of the move);
        #: the source of WrongShard forwarding hints.
        self.forwards: dict[tuple[int, int], tuple[str, int]] = {}

    # -- apply --------------------------------------------------------------

    def apply(self, command: Command) -> Any:
        op, args = command.op, command.args
        if op == "shard_retire":
            return self._retire(*args)
        if op == "shard_install":
            return self._install(*args)
        if op == "shard_info":
            return self._info()
        if op in KEYED_OPS:
            key = str(args[0])
            point = key_point(key)
            if not self._owns(point):
                return self._wrong_shard(key, point)
        # Owned keys, scans, and unknown ops all go to the inner store
        # (which raises ProtocolError for genuinely unknown operations).
        return self.inner.apply(command)

    def _owns(self, point: int) -> bool:
        for lo, hi in self.owned:
            if lo <= point < hi:
                return True
        return False

    def _wrong_shard(self, key: str, point: int) -> WrongShard:
        for (lo, hi), (target, version) in self.forwards.items():
            if lo <= point < hi:
                return WrongShard(key, point, version, self.group, target, lo, hi)
        # No hint: either this group never owned the point (stale client
        # map) or it is the target of a move whose install has not
        # executed yet. Zero-width range = "ask the director".
        return WrongShard(key, point, self.version, self.group, "", 0, 0)

    # -- ownership transfer -------------------------------------------------

    def _retire(self, lo: int, hi: int, version: int, target: str) -> Any:
        """Stop serving ``[lo, hi)``; capture and evict its items.

        The reply value carries the captured items: the director relays
        them to the target group's install command. Replies are cached by
        the dedup wrapper, so a retried retire returns the same capture
        instead of finding an already-emptied range.
        """
        lo, hi, version = int(lo), int(hi), int(version)
        self._carve(lo, hi)
        self.forwards[(lo, hi)] = (str(target), version)
        self.version = max(self.version, version)
        snapshot = self.inner.snapshot()
        moved = {k: v for k, v in snapshot.items() if lo <= key_point(k) < hi}
        if moved:
            self.inner.restore(
                {k: v for k, v in snapshot.items() if k not in moved}
            )
        return {"items": moved, "version": version, "count": len(moved)}

    def _carve(self, lo: int, hi: int) -> None:
        """Remove ``[lo, hi)`` from the owned set (must be a sub-range)."""
        for i, (own_lo, own_hi) in enumerate(self.owned):
            if own_lo <= lo and hi <= own_hi:
                keep = list(self.owned[:i])
                if own_lo < lo:
                    keep.append((own_lo, lo))
                if hi < own_hi:
                    keep.append((hi, own_hi))
                keep.extend(self.owned[i + 1:])
                self.owned = tuple(sorted(keep))
                return
        raise ProtocolError(
            f"group {self.group!r} does not own [{lo}, {hi}) "
            f"(owned: {list(self.owned)})"
        )

    def _install(self, lo: int, hi: int, version: int, items: Any) -> Any:
        """Start serving ``[lo, hi)`` with the items captured at retire."""
        lo, hi, version = int(lo), int(hi), int(version)
        table = dict(items) if items else {}
        merged = list(self.owned) + [(lo, hi)]
        merged.sort()
        coalesced: list[tuple[int, int]] = []
        for rng in merged:
            if coalesced and coalesced[-1][1] >= rng[0]:
                coalesced[-1] = (
                    coalesced[-1][0], max(coalesced[-1][1], rng[1])
                )
            else:
                coalesced.append(rng)
        self.owned = tuple(coalesced)
        self.forwards.pop((lo, hi), None)
        self.version = max(self.version, version)
        if table:
            self.inner.restore(self.inner.snapshot() | table)
        return {"installed": len(table), "version": version}

    def _info(self) -> Any:
        return {
            "group": self.group,
            "version": self.version,
            "owned": [list(r) for r in self.owned],
            "forwards": [
                [lo, hi, target, version]
                for (lo, hi), (target, version) in sorted(self.forwards.items())
            ],
            "keys": len(self.inner),
        }

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Any:
        return {
            "inner": self.inner.snapshot(),
            "shard": {
                "group": self.group,
                "version": self.version,
                "owned": tuple(self.owned),
                "forwards": dict(self.forwards),
            },
        }

    def restore(self, snapshot: Any) -> None:
        self.inner.restore(snapshot["inner"])
        shard = snapshot["shard"]
        self.group = shard["group"]
        self.version = int(shard["version"])
        self.owned = tuple(
            (int(lo), int(hi)) for lo, hi in sorted(shard["owned"])
        )
        self.forwards = {
            (int(lo), int(hi)): (str(target), int(version))
            for (lo, hi), (target, version) in shard["forwards"].items()
        }

    def snapshot_bytes(self) -> int:
        return self.inner.snapshot_bytes() + 64 + 24 * (
            len(self.owned) + len(self.forwards)
        )
