"""Replicated named counters.

Operations:

* ``"incr" (name, delta)`` — add ``delta``; returns the new value.
* ``"read" (name,)`` — returns the current value (0 if absent).
* ``"reset" (name,)`` — sets to 0; returns the previous value.

The whole-history invariant is trivial to state — the final value of each
counter equals the sum of acknowledged deltas — which makes counters the
cheapest exactly-once probe in the test suite: any lost or double-applied
increment shows up as an arithmetic mismatch.
"""

from __future__ import annotations

from typing import Any

from repro.core.statemachine import StateMachine
from repro.errors import ProtocolError
from repro.types import Command


class CounterStateMachine(StateMachine):
    """Deterministic counter table."""

    def __init__(self):
        self._counters: dict[str, int] = {}

    def value(self, name: str) -> int:
        return self._counters.get(name, 0)

    def apply(self, command: Command) -> Any:
        op = command.op
        args = command.args
        if op == "incr":
            name, delta = args
            self._counters[name] = self._counters.get(name, 0) + delta
            return self._counters[name]
        if op == "read":
            (name,) = args
            return self._counters.get(name, 0)
        if op == "reset":
            (name,) = args
            return self._counters.pop(name, 0)
        raise ProtocolError(f"unknown counter operation {op!r}")

    def snapshot(self) -> Any:
        return dict(self._counters)

    def restore(self, snapshot: Any) -> None:
        self._counters = dict(snapshot)

    def snapshot_bytes(self) -> int:
        return 16 + 32 * len(self._counters)
