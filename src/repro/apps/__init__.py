"""Replicated applications used as workloads and correctness probes.

Each application is a deterministic :class:`repro.core.statemachine.StateMachine`:

* :mod:`repro.apps.kvstore` — a string key/value store (get/set/delete/cas),
  the primary workload and the one the linearizability checker understands.
* :mod:`repro.apps.counter` — commutative counters; cheap sanity workload.
* :mod:`repro.apps.bank` — accounts with transfers; conservation-of-money
  is a strong whole-history invariant.
* :mod:`repro.apps.lockservice` — a lease-free lock table; mutual exclusion
  per key is directly checkable from replies.
"""

from repro.apps.bank import BankStateMachine
from repro.apps.counter import CounterStateMachine
from repro.apps.kvstore import KvStateMachine
from repro.apps.lockservice import LockServiceStateMachine

__all__ = [
    "BankStateMachine",
    "CounterStateMachine",
    "KvStateMachine",
    "LockServiceStateMachine",
]
