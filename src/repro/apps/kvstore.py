"""Replicated key/value store.

Operations (``Command.op`` / ``args``):

* ``"get" (key,)`` — returns the value or ``None``.
* ``"set" (key, value)`` — stores; returns ``"ok"``.
* ``"delete" (key,)`` — removes; returns whether the key existed.
* ``"cas" (key, expected, new)`` — compare-and-swap; returns success bool.
* ``"scan" (prefix,)`` — returns a sorted tuple of matching keys (read-heavy
  workloads use it as the "long read" operation).

This is the primary experiment workload: histories of get/set/cas are what
the linearizability checker in :mod:`repro.verify` consumes, and the store
size drives the state-transfer cost model (``value_bytes`` per entry).
"""

from __future__ import annotations

from typing import Any

from repro.core.statemachine import StateMachine
from repro.errors import ProtocolError
from repro.types import Command


class KvStateMachine(StateMachine):
    """Deterministic in-memory KV store."""

    def __init__(self, value_bytes: int = 64):
        self._data: dict[str, Any] = {}
        self.value_bytes = value_bytes
        self.applied_count = 0

    def __len__(self) -> int:
        return len(self._data)

    def apply(self, command: Command) -> Any:
        self.applied_count += 1
        op = command.op
        args = command.args
        if op == "get":
            (key,) = args
            return self._data.get(key)
        if op == "set":
            key, value = args
            self._data[key] = value
            return "ok"
        if op == "delete":
            (key,) = args
            return self._data.pop(key, None) is not None
        if op == "cas":
            key, expected, new = args
            if self._data.get(key) == expected:
                self._data[key] = new
                return True
            return False
        if op == "scan":
            (prefix,) = args
            return tuple(sorted(k for k in self._data if k.startswith(prefix)))
        raise ProtocolError(f"unknown kv operation {op!r}")

    def snapshot(self) -> Any:
        return dict(self._data)

    def restore(self, snapshot: Any) -> None:
        self._data = dict(snapshot)

    def snapshot_bytes(self) -> int:
        # Keys are short; the configured per-entry value size dominates.
        return 16 + (self.value_bytes + 24) * len(self._data)

    def preload(self, entries: int, value: Any = "x") -> None:
        """Fill the store directly (experiment setup, pre-replication)."""
        for i in range(entries):
            self._data[f"pre{i}"] = value
