"""Replicated bank: accounts with transfers.

Operations:

* ``"open" (account, balance)`` — create an account; returns ``"ok"`` or
  ``"exists"``.
* ``"deposit" (account, amount)`` — returns the new balance, or ``None``
  for an unknown account.
* ``"withdraw" (account, amount)`` — refuses overdrafts; returns the new
  balance or ``None``.
* ``"transfer" (src, dst, amount)`` — atomic move; returns success bool.
* ``"balance" (account,)`` — returns the balance or ``None``.
* ``"total" ()`` — sum of all balances.

The conservation invariant — total money changes only by acknowledged
opens/deposits/withdrawals, never by transfers — holds across any mix of
crashes, retries and reconfigurations, making the bank the strongest
application-level oracle for the failure-injection tests.
"""

from __future__ import annotations

from typing import Any

from repro.core.statemachine import StateMachine
from repro.errors import ProtocolError
from repro.types import Command


class BankStateMachine(StateMachine):
    """Deterministic account table with atomic transfers."""

    def __init__(self):
        self._accounts: dict[str, int] = {}

    def total(self) -> int:
        return sum(self._accounts.values())

    def apply(self, command: Command) -> Any:
        op = command.op
        args = command.args
        if op == "open":
            account, balance = args
            if account in self._accounts:
                return "exists"
            self._accounts[account] = balance
            return "ok"
        if op == "deposit":
            account, amount = args
            if account not in self._accounts:
                return None
            self._accounts[account] += amount
            return self._accounts[account]
        if op == "withdraw":
            account, amount = args
            balance = self._accounts.get(account)
            if balance is None or balance < amount:
                return None
            self._accounts[account] = balance - amount
            return self._accounts[account]
        if op == "transfer":
            src, dst, amount = args
            if (
                src not in self._accounts
                or dst not in self._accounts
                or self._accounts[src] < amount
            ):
                return False
            self._accounts[src] -= amount
            self._accounts[dst] += amount
            return True
        if op == "balance":
            (account,) = args
            return self._accounts.get(account)
        if op == "total":
            return self.total()
        raise ProtocolError(f"unknown bank operation {op!r}")

    def snapshot(self) -> Any:
        return dict(self._accounts)

    def restore(self, snapshot: Any) -> None:
        self._accounts = dict(snapshot)

    def snapshot_bytes(self) -> int:
        return 16 + 40 * len(self._accounts)
