"""Command-line interface: run the paper's experiments from a terminal.

Usage::

    python -m repro list                 # experiments with one-line summaries
    python -m repro run T2               # regenerate one table/figure
    python -m repro run F2 --quick       # smaller parameters, faster
    python -m repro demo                 # 30-second guided tour

The heavy lifting lives in :mod:`repro.bench.experiments`; this module is
argument parsing plus a curated "quick" parameter set per experiment so a
first-time user sees output in seconds.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS

#: reduced parameter sets for --quick runs (still shape-preserving).
QUICK_ARGS: dict[str, dict] = {
    "T1": {"sizes": (3, 5), "run_for": 1.5},
    "F1": {"preload": 30_000, "run_for": 4.0},
    "T2": {"preloads": (1_000, 60_000)},
    "F2": {"intervals": (1.0, 0.25), "rounds": 4},
    "T3": {"preload": 10_000},
    "F3": {"rounds": 3, "preload": 20_000},
    "T4": {"ops": 200},
    "F4": {"depths": (1, None), "rounds": 4},
    "T5": {"preload": 5_000},
    "F5": {"preloads": (10_000, 80_000)},
    "T6": {"timeouts": (0.05, 0.2)},
    "T7": {"read_ratios": (0.9,)},
    "T8": {"delays_ms": (0.0, 2.0), "clients": 8},
}

_SUMMARIES = {
    "T1": "steady-state overhead of the composition (cluster-size sweep)",
    "F1": "throughput timeline through one migration",
    "T2": "hand-off latency vs state size (the headline claim)",
    "F2": "reconfiguration storms: liveness under bursts",
    "T3": "crash + replacement availability",
    "F3": "client latency percentiles under periodic reconfiguration",
    "T4": "message & byte cost per op / per reconfiguration",
    "F4": "ablation: speculation pipeline depth",
    "T5": "block-agnosticism: multi-paxos vs sequencer blocks",
    "F5": "warm standby (observer) promotion vs cold join",
    "T6": "failure-detector sensitivity ablation",
    "T7": "leader-lease local reads vs ordered reads",
    "T8": "leader-side batching ablation",
}


def _cmd_list() -> int:
    print("experiments (run with: python -m repro run <ID>):")
    for name in sorted(ALL_EXPERIMENTS):
        print(f"  {name:4} {_SUMMARIES.get(name, '')}")
    return 0


def _cmd_run(name: str, quick: bool, seed: int | None) -> int:
    key = name.upper()
    experiment = ALL_EXPERIMENTS.get(key)
    if experiment is None:
        print(f"unknown experiment {name!r}; try: python -m repro list", file=sys.stderr)
        return 2
    kwargs = dict(QUICK_ARGS.get(key, {})) if quick else {}
    if seed is not None:
        kwargs["seed"] = seed
    started = time.time()
    output = experiment(**kwargs)
    output.print()
    print(f"\n[{key} completed in {time.time() - started:.1f}s"
          f"{' (quick parameters)' if quick else ''}]")
    return 0


def _cmd_demo() -> int:
    from repro.apps.kvstore import KvStateMachine
    from repro.core.client import ClientParams
    from repro.core.service import ReplicatedService
    from repro.sim.runner import Simulator

    print("demo: 3-replica KV service, live replacement of one replica\n")
    sim = Simulator(seed=7)
    service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
    plan = iter(
        [("set", (f"key-{i}", i), 64) for i in range(50)]
        + [("get", (f"key-{i}",), 32) for i in range(50)]
    )
    client = service.make_client(
        "you", lambda: next(plan, None), ClientParams(start_delay=0.1)
    )
    service.reconfigure_at(0.3, ["n1", "n2", "n4"])
    sim.run_until(lambda: client.finished, timeout=30.0)
    reads_ok = sum(
        1
        for record in client.records
        if record.op == "get" and record.value == int(str(record.args[0]).split("-")[1])
    )
    print(f"  50 writes acknowledged, then n3 -> n4 swapped in live")
    print(f"  50 reads after the swap: {reads_ok} correct")
    print(f"  epochs used: {service.newest_epoch() + 1}")
    print("\nNext: python -m repro run T2 --quick   (the headline result)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reconfigurable SMR from non-reconfigurable building blocks "
        "(PODC 2012) — experiment runner",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id, e.g. T2 or F4")
    run.add_argument("--quick", action="store_true", help="smaller, faster parameters")
    run.add_argument("--seed", type=int, default=None, help="override the seed")
    sub.add_parser("demo", help="a 30-second guided tour")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.quick, args.seed)
    if args.command == "demo":
        return _cmd_demo()
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
