"""Command-line interface: run the paper's experiments from a terminal.

Usage::

    python -m repro list                 # experiments with one-line summaries
    python -m repro run T2               # regenerate one table/figure
    python -m repro run F2 --quick       # smaller parameters, faster
    python -m repro demo                 # 30-second guided tour
    python -m repro cluster --replicas 3 # live TCP cluster on localhost
    python -m repro serve --node n1 ...  # one live replica (used by cluster)

The heavy lifting lives in :mod:`repro.bench.experiments`; this module is
argument parsing plus a curated "quick" parameter set per experiment so a
first-time user sees output in seconds.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS

#: reduced parameter sets for --quick runs (still shape-preserving).
QUICK_ARGS: dict[str, dict] = {
    "T1": {"sizes": (3, 5), "run_for": 1.5},
    "F1": {"preload": 30_000, "run_for": 4.0},
    "T2": {"preloads": (1_000, 60_000)},
    "F2": {"intervals": (1.0, 0.25), "rounds": 4},
    "T3": {"preload": 10_000},
    "F3": {"rounds": 3, "preload": 20_000},
    "T4": {"ops": 200},
    "F4": {"depths": (1, None), "rounds": 4},
    "T5": {"preload": 5_000},
    "F5": {"preloads": (10_000, 80_000)},
    "T6": {"timeouts": (0.05, 0.2)},
    "T7": {"read_ratios": (0.9,)},
    "T8": {"delays_ms": (0.0, 2.0), "clients": 8},
}

_SUMMARIES = {
    "T1": "steady-state overhead of the composition (cluster-size sweep)",
    "F1": "throughput timeline through one migration",
    "T2": "hand-off latency vs state size (the headline claim)",
    "F2": "reconfiguration storms: liveness under bursts",
    "T3": "crash + replacement availability",
    "F3": "client latency percentiles under periodic reconfiguration",
    "T4": "message & byte cost per op / per reconfiguration",
    "F4": "ablation: speculation pipeline depth",
    "T5": "block-agnosticism: multi-paxos vs sequencer blocks",
    "F5": "warm standby (observer) promotion vs cold join",
    "T6": "failure-detector sensitivity ablation",
    "T7": "leader-lease local reads vs ordered reads",
    "T8": "leader-side batching ablation",
}


def _cmd_list() -> int:
    print("experiments (run with: python -m repro run <ID>):")
    for name in sorted(ALL_EXPERIMENTS):
        print(f"  {name:4} {_SUMMARIES.get(name, '')}")
    return 0


def _cmd_run(name: str, quick: bool, seed: int | None) -> int:
    key = name.upper()
    experiment = ALL_EXPERIMENTS.get(key)
    if experiment is None:
        print(f"unknown experiment {name!r}; try: python -m repro list", file=sys.stderr)
        return 2
    kwargs = dict(QUICK_ARGS.get(key, {})) if quick else {}
    if seed is not None:
        kwargs["seed"] = seed
    started = time.time()
    output = experiment(**kwargs)
    output.print()
    print(f"\n[{key} completed in {time.time() - started:.1f}s"
          f"{' (quick parameters)' if quick else ''}]")
    return 0


def _cmd_demo() -> int:
    from repro.apps.kvstore import KvStateMachine
    from repro.core.client import ClientParams
    from repro.core.service import ReplicatedService
    from repro.sim.runner import Simulator

    print("demo: 3-replica KV service, live replacement of one replica\n")
    sim = Simulator(seed=7)
    service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
    plan = iter(
        [("set", (f"key-{i}", i), 64) for i in range(50)]
        + [("get", (f"key-{i}",), 32) for i in range(50)]
    )
    client = service.make_client(
        "you", lambda: next(plan, None), ClientParams(start_delay=0.1)
    )
    service.reconfigure_at(0.3, ["n1", "n2", "n4"])
    sim.run_until(lambda: client.finished, timeout=30.0)
    reads_ok = sum(
        1
        for record in client.records
        if record.op == "get" and record.value == int(str(record.args[0]).split("-")[1])
    )
    print(f"  50 writes acknowledged, then n3 -> n4 swapped in live")
    print(f"  50 reads after the swap: {reads_ok} correct")
    print(f"  epochs used: {service.newest_epoch() + 1}")
    print("\nNext: python -m repro run T2 --quick   (the headline result)")
    return 0


#: application registry for the live commands (name -> factory).
def _app_factory(name: str):
    from repro.apps.bank import BankStateMachine
    from repro.apps.counter import CounterStateMachine
    from repro.apps.kvstore import KvStateMachine
    from repro.apps.lockservice import LockServiceStateMachine
    from repro.shard.metadir import MetaDirStateMachine

    apps = {
        "kv": KvStateMachine,
        "counter": CounterStateMachine,
        "bank": BankStateMachine,
        "lock": LockServiceStateMachine,
        "metadir": MetaDirStateMachine,
    }
    factory = apps.get(name)
    if factory is None:
        raise SystemExit(f"unknown app {name!r}; choose from {sorted(apps)}")
    return factory


def _parse_group_peers(
    specs: list[str],
) -> dict[str, dict[str, tuple[str, int]]]:
    """Parse repeated ``--peers`` values, optionally group-labelled.

    Each value is either a plain address book (``n1=host:port,...``) or
    one prefixed with a group label (``g1:n1=host:port,...``). Plain
    books land under the empty label, so single-cluster invocations keep
    their old shape while sharded ones get per-group snapshots.
    """
    groups: dict[str, dict[str, tuple[str, int]]] = {}
    for spec in specs:
        head, sep, rest = spec.partition(":")
        if sep and "=" not in head:
            label, book = head, rest
        else:
            label, book = "", spec
        groups.setdefault(label, {}).update(_parse_peers(book))
    return groups


def _parse_peers(spec: str) -> dict[str, tuple[str, int]]:
    """Parse ``n1=127.0.0.1:9101,n2=...`` into an address book."""
    book: dict[str, tuple[str, int]] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        try:
            name, address = entry.split("=", 1)
            host, port = address.rsplit(":", 1)
            book[name] = (host, int(port))
        except ValueError:
            raise SystemExit(f"bad --peers entry {entry!r} (want name=host:port)")
    if not book:
        raise SystemExit("--peers must name at least one replica")
    return book


def _cmd_serve(args: "argparse.Namespace") -> int:
    """Run one live replica process until SIGINT/SIGTERM."""
    from repro.consensus.multipaxos import MultiPaxosEngine, PaxosParams
    from repro.core.reconfig import ReconfigParams, ReconfigurableReplica
    from repro.net.runtime import LiveRuntime
    from repro.net.transport import LinkPolicy, TcpTransport
    from repro.types import Configuration, Membership, NodeId

    addresses = _parse_peers(args.peers)
    if args.node not in addresses:
        raise SystemExit(f"--node {args.node!r} is not in --peers")
    host, port = addresses[args.node]
    if args.port is not None:
        host, port = args.host, args.port

    transport = TcpTransport(
        addresses,
        wire_format=args.wire,
        # Seeded per replica so injected link loss draws are reproducible.
        link_policy=LinkPolicy(seed=args.seed),
    )
    runtime = LiveRuntime(
        transport, seed=args.seed, echo_trace=args.verbose, uvloop=args.uvloop
    )
    storage = None
    if args.data_dir:
        from repro.storage import ReplicaStore

        storage = ReplicaStore(
            args.data_dir, fsync=args.fsync, metrics=runtime.metrics
        )
    if args.chaos:
        from repro.net.chaos import install_chaos_endpoint

        status = None
        if storage is not None:
            status = storage.status  # recovery status for the controller
        install_chaos_endpoint(transport, args.node, status=status)
    if not args.no_metrics:
        from repro.net.observe import install_metrics_endpoint

        # Read-only, so on by default (unlike the chaos endpoint).
        install_metrics_endpoint(
            transport, args.node, runtime.metrics, lambda: runtime.now
        )
    suspect_min = args.suspect_timeout / 1000.0
    engine_params = PaxosParams(
        batch_delay=args.batch_delay / 1000.0,
        batch_max=args.batch_max,
        window=args.window,
        lease_duration=args.lease_duration / 1000.0,
        suspect_timeout_min=suspect_min,
        suspect_timeout_max=2.0 * suspect_min,
    )
    params_kwargs = {}
    if args.app == "metadir":
        from repro.shard.metadir import METADIR_READ_OPS

        # Director reads (map/intent/history) ride the lease fast path
        # when the metadir group is served with --read-mode.
        params_kwargs["read_only_ops"] = (
            ReconfigParams.__dataclass_fields__["read_only_ops"].default
            | METADIR_READ_OPS
        )
    params = ReconfigParams(
        engine_factory=MultiPaxosEngine.factory(engine_params),
        checkpoint_interval=args.checkpoint_interval,
        read_mode=args.read_mode,
        staleness_bound=args.staleness_bound / 1000.0,
        handoff=args.handoff,
        **params_kwargs,
    )
    app_factory = _app_factory(args.app)
    if args.shard_group:
        if args.app != "kv":
            raise SystemExit("--shard-group requires --app kv")
        from repro.apps.shardkv import ShardedKvStateMachine
        from repro.shard.shardmap import parse_ranges

        shard_group = args.shard_group
        shard_owned = parse_ranges(args.shard_ranges)
        shard_version = args.shard_version

        def app_factory() -> ShardedKvStateMachine:  # type: ignore[misc]
            return ShardedKvStateMachine(
                group=shard_group, owned=shard_owned, version=shard_version
            )

    initial_config = None
    if args.initial:
        members = [m.strip() for m in args.initial.split(",") if m.strip()]
        if args.node in members:
            initial_config = Configuration(0, Membership.from_iter(members))
    replica = ReconfigurableReplica(
        runtime,
        NodeId(args.node),
        app_factory,
        params,
        initial_config=initial_config,
        storage=storage,
    )
    if args.app == "metadir":
        from repro.shard.metadir import (
            IntentDriver,
            MetaDirStateMachine,
            install_director_endpoint,
        )

        def _metadir_machine():
            inner = getattr(replica.state, "inner", None)
            return inner if isinstance(inner, MetaDirStateMachine) else None

        install_director_endpoint(transport, args.node, _metadir_machine)
        if args.metadir_driver:
            driver = IntentDriver(
                args.node,
                replica,
                addresses,
                wire_format=args.wire,
                poll=args.metadir_poll / 1000.0,
                hold=args.metadir_hold / 1000.0,
                takeover=args.metadir_takeover / 1000.0,
            )
            driver.start()
    if storage is not None:
        stat = storage.status()
        boot = "recovered" if stat["recovered"] else "fresh"
        print(f"[{args.node}] durable {boot}: "
              f"{stat['wal_records']} WAL records, "
              f"epoch {replica.exec_epoch} at vindex {replica.virtual_index}, "
              f"torn_bytes={stat['torn_bytes']} "
              f"({stat['recovery_seconds'] * 1000:.1f}ms, fsync="
              f"{'on' if storage.fsync else 'off'})",
              flush=True)
    shard_note = ""
    if args.shard_group:
        shard_note = (f", shard={args.shard_group} "
                      f"ranges={args.shard_ranges or '(none)'}")
    commit_note = ""
    if engine_params.batch_delay > 0 or engine_params.window > 0:
        commit_note = (f", batch={args.batch_delay:g}ms"
                       f"/max{engine_params.batch_max}"
                       f", window={engine_params.window or 'unbounded'}")
    handoff_note = ", handoff=dirty" if args.handoff == "dirty" else ""
    read_note = ""
    if args.read_mode != "log":
        bound = (f"lease={args.lease_duration:g}ms" if args.read_mode == "lease"
                 else f"staleness<={args.staleness_bound:g}ms")
        read_note = f", reads={args.read_mode} ({bound})"
    print(f"[{args.node}] serving on {host}:{port} "
          f"(app={args.app}, member={'yes' if initial_config else 'standby'}"
          f", loop={runtime.loop_impl}{commit_note}{read_note}"
          f"{handoff_note}{shard_note})",
          flush=True)
    runtime.run(host, port)
    return 0


def _cmd_cluster(args: "argparse.Namespace") -> int:
    """Launch a live localhost cluster, run a workload, reconfigure, stop."""
    from repro.net.client import LiveClient
    from repro.net.cluster import LocalCluster

    cluster = LocalCluster(
        replicas=args.replicas,
        base_port=args.base_port,
        app=args.app,
        seed=args.seed,
        wire=args.wire,
        verbose=args.verbose,
    )
    print(f"starting {args.replicas} replicas: {', '.join(cluster.initial)} "
          f"(logs in {cluster.log_dir})")
    with cluster:
        cluster.start()
        client = LiveClient(
            "cli", cluster.addresses, view=cluster.initial,
            wire_format=args.wire,
        )
        with client:
            print(f"cluster up; submitting {args.ops} commands ...")
            for i in range(args.ops):
                reply = client.submit("set", (f"key-{i}", i))
                if args.verbose:
                    print(f"  set key-{i} -> ok "
                          f"(epoch {reply.epoch}, slot {reply.virtual_index})")
            check = client.submit("get", (f"key-{args.ops - 1}",), size=32)
            if check.value != args.ops - 1:
                print(f"FAIL: read back {check.value!r}, "
                      f"expected {args.ops - 1}", file=sys.stderr)
                return 1
            print(f"{args.ops} writes committed; read-back verified "
                  f"(epoch {check.epoch})")
            if not args.no_reconfigure:
                joiner = cluster.reserved()[0]
                target = cluster.initial[1:] + [joiner]
                print(f"reconfiguring {cluster.initial} -> {target} ...")
                cluster.spawn(joiner)
                cluster.wait_ready([joiner])
                ack = client.reconfigure(target)
                print(f"reconfiguration acknowledged: {ack.value} ")
                after = client.submit("get", (f"key-{args.ops - 1}",), size=32)
                if after.value != args.ops - 1:
                    print(f"FAIL: post-reconfig read {after.value!r}",
                          file=sys.stderr)
                    return 1
                print(f"state survived the hand-off "
                      f"(read served in epoch {after.epoch})")
    print("cluster shut down cleanly")
    return 0


def _cmd_shard_cluster(args: "argparse.Namespace") -> int:
    """Launch a sharded multi-group cluster and drive a keyspace across it.

    Writes ``--ops`` keys through a ShardClient, prints how the keyspace
    spread over the groups, optionally splits the busiest group into a
    spare under continued traffic, and verifies every key reads back
    correctly from wherever it ended up.
    """
    from repro.shard.cluster import ShardedCluster

    cluster = ShardedCluster(
        args.groups,
        replicas_per_group=args.replicas_per_group,
        spare_groups=args.spare_groups,
        seed=args.seed,
        wire=args.wire,
        verbose=args.verbose,
        director_replicas=args.director_replicas,
    )
    total = args.groups + args.spare_groups
    print(f"starting {total} groups x {args.replicas_per_group} replicas "
          f"({args.groups} serving, {args.spare_groups} spare; "
          f"logs in {cluster.log_dir})")
    with cluster:
        cluster.start()
        shard_map = cluster.shard_map
        if args.director_replicas >= 1:
            book = cluster.director_addresses()
            endpoints = ", ".join(
                f"{name}@{host}:{port}"
                for name, (host, port) in sorted(book.items())
            )
            print(f"replicated director ({len(book)} replicas: {endpoints}); "
                  f"map v{shard_map.version}:")
        else:
            print(f"director on {cluster.director_address()[0]}:"
                  f"{cluster.director_address()[1]}; map v{shard_map.version}:")
        for assignment in shard_map.assignments:
            print(f"  {assignment.range} -> {assignment.group}")
        keys = [f"key-{i:04d}" for i in range(args.ops)]
        with cluster.client("cli") as client:
            print(f"writing {args.ops} keys through the shard router ...")
            for i, key in enumerate(keys):
                client.submit("set", (key, i))
            spread = cluster.shard_map.spread(keys)
            print("keys per group: "
                  + ", ".join(f"{g}={n}" for g, n in sorted(spread.items())))
            starved = [
                g for g in cluster.serving
                if spread.get(g, 0) == 0 and args.ops >= 8 * args.groups
            ]
            if starved:
                print(f"FAIL: serving groups own no keys: {starved}",
                      file=sys.stderr)
                return 1
            if args.split:
                target = (cluster.spares[0] if cluster.spares
                          else min(spread, key=lambda g: (spread[g], g)))
                source = max(spread, key=lambda g: (spread[g], g))
                print(f"splitting {source} into {target} ...")
                new_map = cluster.split(source, target=target)
                print(f"map now v{new_map.version}:")
                for assignment in new_map.assignments:
                    print(f"  {assignment.range} -> {assignment.group}")
            print("verifying read-back of every key ...")
            for i, key in enumerate(keys):
                reply = client.submit("get", (key,), size=32)
                if reply.value != i:
                    print(f"FAIL: {key} read back {reply.value!r}, "
                          f"expected {i}", file=sys.stderr)
                    return 1
        if not args.no_metrics:
            from repro.net.observe import group_summary_table, poll_groups

            fetched, errors = poll_groups(
                cluster.group_endpoints(), wire_format=args.wire
            )
            print(group_summary_table(fetched).render())
            for error in errors:
                print(f"note: {error}", file=sys.stderr)
    print("sharded cluster shut down cleanly")
    return 0


def _cmd_shard_route(args: "argparse.Namespace") -> int:
    """Ask a shard director where keys live (and show the map)."""
    from repro.shard.client import ShardClientError, fetch_shard_map
    from repro.shard.shardmap import key_point

    try:
        host, port_text = args.director.rsplit(":", 1)
        address = (host, int(port_text))
    except ValueError:
        raise SystemExit(f"bad --director {args.director!r} (want host:port)")
    try:
        shard_map = fetch_shard_map(
            address, timeout=args.timeout, wire_format=args.wire
        )
    except ShardClientError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"shard map v{shard_map.version} "
          f"({len(shard_map.assignments)} ranges, "
          f"{len(shard_map.groups)} groups):")
    for assignment in shard_map.assignments:
        info = shard_map.group_info(assignment.group)
        print(f"  {assignment.range} -> {assignment.group} "
              f"[{','.join(info.members)}]")
    for key in args.keys:
        point = key_point(key)
        print(f"  {key!r} -> point {point} -> "
              f"{shard_map.group_for_point(point)}")
    return 0


def _cmd_metrics(args: "argparse.Namespace") -> int:
    """Poll a live cluster's ``#metrics`` endpoints and render the snapshots.

    With ``--demo``, spins up a throwaway 3-replica cluster, drives it
    through a live reconfiguration, and renders the resulting snapshot —
    which must show per-epoch commit counts and at least one complete
    decided → cut → transfer → first-commit span (exit code 0 iff it does).
    """
    import json

    from repro.net.observe import render_snapshots

    def snapshot_json(snapshots) -> str:
        return json.dumps(
            {
                node: {
                    "now": s.now, "counters": s.counters, "gauges": s.gauges,
                    "histograms": s.histograms, "spans": s.spans,
                }
                for node, s in sorted(snapshots.items())
            },
            indent=2, sort_keys=True,
        )

    if args.demo:
        from repro.net.observe import run_metrics_demo

        report = run_metrics_demo(seed=args.seed, wire=args.wire,
                                  verbose=args.verbose)
        for line in report.lines():
            print(line)
        if report.snapshots:
            print()
            print(render_snapshots(report.snapshots))
        if args.json_out and report.snapshots:
            with open(args.json_out, "w") as handle:
                handle.write(snapshot_json(report.snapshots) + "\n")
            print(f"snapshot JSON written to {args.json_out}")
        return 0 if report.ok else 1
    if not args.peers:
        print("--peers required (or use --demo)", file=sys.stderr)
        return 2
    groups = _parse_group_peers(args.peers)
    if set(groups) == {""}:
        # Single unlabelled cluster: the original one-cluster behaviour.
        from repro.net.observe import poll_cluster

        fetched, errors = poll_cluster(groups[""], wire_format=args.wire)
        snapshots = {node: f.snapshot for node, f in fetched.items()}
        if args.json:
            print(snapshot_json(snapshots))
        elif snapshots:
            print(render_snapshots(snapshots))
        if args.json_out and snapshots:
            with open(args.json_out, "w") as handle:
                handle.write(snapshot_json(snapshots) + "\n")
        for error in errors:
            print(f"note: {error}", file=sys.stderr)
        return 0 if snapshots else 1
    # Labelled groups: one call polls every shard and aggregates.
    from repro.net.observe import poll_groups, render_group_snapshots

    grouped, errors = poll_groups(groups, wire_format=args.wire)
    got_any = any(grouped.values())

    def grouped_json() -> str:
        return json.dumps(
            {
                label: json.loads(
                    snapshot_json(
                        {n: f.snapshot for n, f in grouped[label].items()}
                    )
                )
                for label in sorted(grouped)
            },
            indent=2, sort_keys=True,
        )

    if args.json:
        print(grouped_json())
    elif got_any:
        print(render_group_snapshots(grouped))
    if args.json_out and got_any:
        with open(args.json_out, "w") as handle:
            handle.write(grouped_json() + "\n")
    for error in errors:
        print(f"note: {error}", file=sys.stderr)
    return 0 if got_any else 1


def _cmd_top(args: "argparse.Namespace") -> int:
    """Repeatedly poll one or many clusters and render snapshot tables.

    With group-labelled ``--peers`` (``g1:n1=host:port,...``, repeated),
    every poll aggregates the shards into one summary table plus
    per-group detail; unlabelled peers keep the single-cluster view.
    """
    from repro.net.observe import (
        poll_cluster,
        poll_groups,
        render_group_snapshots,
        render_snapshots,
    )

    groups = _parse_group_peers(args.peers)
    sharded = set(groups) != {""}
    for iteration in range(args.iterations):
        if iteration:
            time.sleep(args.interval)
        print(f"--- poll {iteration + 1}/{args.iterations} ---")
        if sharded:
            grouped, errors = poll_groups(groups, wire_format=args.wire)
            got_any = any(grouped.values())
            if got_any:
                print(render_group_snapshots(grouped))
        else:
            fetched, errors = poll_cluster(groups[""], wire_format=args.wire)
            snapshots = {node: f.snapshot for node, f in fetched.items()}
            got_any = bool(snapshots)
            if got_any:
                print(render_snapshots(snapshots))
        for error in errors:
            print(f"note: {error}", file=sys.stderr)
        if not got_any:
            return 1
    return 0


def _cmd_chaos(args: "argparse.Namespace") -> int:
    """Seeded fault injection against a live cluster, verified.

    Runs the canonical crash + restart + leader-partition schedule while
    a workload client records a history, cuts an epoch that votes the
    partitioned leader out mid-partition, then feeds the recorded history
    through the linearizability checker. Exit code 0 iff the history is
    linearizable and the reconfiguration committed.
    """
    from repro.net.chaos import run_chaos_scenario

    report = run_chaos_scenario(
        replicas=args.replicas,
        seed=args.seed,
        wire=args.wire,
        scale=args.scale,
        verbose=args.verbose,
        durable=args.durable,
        batching=args.batch,
        read_mode=args.read_mode,
    )
    for line in report.lines():
        print(line)
    if args.history:
        from repro.verify.histories import dump_jsonl

        dump_jsonl(report.history, args.history)
        print(f"history written to {args.history}")
    if args.timeline:
        report.write_timeline(args.timeline)
        print(f"fault-aligned timeline written to {args.timeline}")
    if args.recovery_out:
        report.write_recovery(args.recovery_out)
        print(f"recovery metrics written to {args.recovery_out}")
    if args.smoke and report.elapsed >= 60.0:
        print(f"FAIL: smoke chaos run took {report.elapsed:.1f}s (>= 60s)",
              file=sys.stderr)
        return 1
    if not report.ok:
        print("FAIL: chaos scenario did not verify", file=sys.stderr)
        return 1
    print("chaos scenario verified: history linearizable under "
          "crash+partition+reconfigure")
    return 0


def _cmd_storm(args: "argparse.Namespace") -> int:
    """One seeded reconfiguration storm against a live cluster, verified.

    Runs the chosen storm plan (back-to-back RECONFIGUREs, rolling
    replacement, or joins racing crashes) while a workload client records
    a history, then feeds it through the linearizability checker. Exit
    code 0 iff the history verifies and every planned RECONFIGURE was
    acknowledged.
    """
    from repro.net.storm import build_storm_plan, run_storm_scenario

    if args.plan_only:
        plan = build_storm_plan(
            args.scenario, replicas=args.replicas, seed=args.seed,
            scale=args.scale,
        )
        print(plan.to_json())
        return 0
    report = run_storm_scenario(
        args.scenario,
        replicas=args.replicas,
        seed=args.seed,
        scale=args.scale,
        handoff=args.handoff,
        read_mode=args.read_mode,
        wire=args.wire,
        durable=args.durable,
        verbose=args.verbose,
    )
    for line in report.lines():
        print(line)
    if args.history:
        from repro.verify.histories import dump_jsonl

        dump_jsonl(report.chaos.history, args.history)
        print(f"history written to {args.history}")
    if args.timeline:
        report.write_timeline(args.timeline)
        print(f"fault-aligned storm timeline written to {args.timeline}")
    if args.smoke and report.chaos.elapsed >= 60.0:
        print(f"FAIL: smoke storm run took {report.chaos.elapsed:.1f}s "
              "(>= 60s)", file=sys.stderr)
        return 1
    if not report.ok:
        print("FAIL: storm scenario did not verify", file=sys.stderr)
        return 1
    print(f"storm scenario verified: history linearizable under the "
          f"{args.scenario} plan with {args.handoff} hand-off")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reconfigurable SMR from non-reconfigurable building blocks "
        "(PODC 2012) — experiment runner",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id, e.g. T2 or F4")
    run.add_argument("--quick", action="store_true", help="smaller, faster parameters")
    run.add_argument("--seed", type=int, default=None, help="override the seed")
    sub.add_parser("demo", help="a 30-second guided tour")

    serve = sub.add_parser("serve", help="run one live replica over TCP")
    serve.add_argument("--node", required=True, help="this replica's name")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help="listen port (default: from --peers)")
    serve.add_argument("--peers", required=True,
                       help="address book: n1=host:port,n2=host:port,...")
    serve.add_argument("--app", default="kv", help="kv|counter|bank|lock")
    serve.add_argument("--initial", default="",
                       help="comma-separated epoch-0 members (omit for standby)")
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--wire", default=None, choices=["json", "binary"],
                       help="outbound wire format (default: binary; inbound "
                       "always auto-detects both)")
    serve.add_argument("--verbose", action="store_true",
                       help="stream the trace log to stderr")
    serve.add_argument("--chaos", action="store_true",
                       help="expose the fault-injection admin endpoint "
                       "(transport-level partitions/drops/delay/loss)")
    serve.add_argument("--no-metrics", action="store_true",
                       help="do not expose the read-only #metrics endpoint "
                       "(on by default)")
    serve.add_argument("--data-dir", default=None, metavar="DIR",
                       help="durable state directory (WAL + checkpoints); "
                       "reboots recover from it instead of cold-joining. "
                       "Omit for the in-memory/amnesiac behaviour")
    serve.add_argument("--fsync", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="fsync each WAL append (--no-fsync keeps "
                       "SIGKILL durability but not machine-crash "
                       "durability; much faster)")
    serve.add_argument("--checkpoint-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="period of durable state-machine checkpoints "
                       "(0 = only at epoch boundaries; needs --data-dir)")
    serve.add_argument("--batch-delay", type=float, default=0.0,
                       metavar="MS",
                       help="leader-side command batching: hold a batch "
                       "open up to this many milliseconds so concurrent "
                       "commands share one Paxos instance (0 = off)")
    serve.add_argument("--batch-max", type=int, default=32,
                       help="max commands per batch")
    serve.add_argument("--window", type=int, default=0,
                       help="proposer pipeline window: max Paxos instances "
                       "in flight concurrently; commands beyond it buffer "
                       "into the next batch (0 = unbounded)")
    serve.add_argument("--read-mode", default="log",
                       choices=["log", "lease", "follower"],
                       help="read path for read-only ops: log orders them "
                       "through consensus (default); lease serves them "
                       "locally at the leaseholding leader (linearizable, "
                       "no log round); follower serves them locally at any "
                       "caught-up member within --staleness-bound (bounded "
                       "staleness, NOT linearizable)")
    serve.add_argument("--lease-duration", type=float, default=80.0,
                       metavar="MS",
                       help="read-lease validity per acknowledged "
                       "heartbeat; must stay strictly below "
                       "--suspect-timeout. 0 disables leases")
    serve.add_argument("--suspect-timeout", type=float, default=100.0,
                       metavar="MS",
                       help="leader-failure suspicion floor; raising it "
                       "admits longer leases at the cost of slower "
                       "failover (the max stays at 2x the floor)")
    serve.add_argument("--staleness-bound", type=float, default=500.0,
                       metavar="MS",
                       help="follower mode: max leader silence before a "
                       "member refuses local reads")
    serve.add_argument("--handoff", default="clean",
                       choices=["clean", "dirty"],
                       help="epoch hand-off mode: clean waits for the "
                       "exact cut (orphan round trips, finished boundary "
                       "snapshots); dirty overlaps the outgoing epoch's "
                       "tail with the incoming one (seal-time re-proposal "
                       "of the sealed engine's queue + dirty boundary "
                       "serving to joiners)")
    serve.add_argument("--uvloop", default="auto",
                       choices=["auto", "on", "off"],
                       help="event loop: auto uses uvloop when installed "
                       "and silently falls back to asyncio (default), on "
                       "requires it, off never uses it")
    serve.add_argument("--shard-group", default="",
                       help="serve as one group of a sharded service: the "
                       "group's name (requires --app kv; wraps the store "
                       "in ownership enforcement)")
    serve.add_argument("--shard-ranges", default="", metavar="LO-HI[,...]",
                       help="hash ranges this group owns at boot "
                       "(empty = a spare group owning nothing)")
    serve.add_argument("--shard-version", type=int, default=1,
                       help="shard-map version the boot ownership is from")
    serve.add_argument("--metadir-driver", action="store_true",
                       help="run the intent driver (metadir app only): "
                       "rolls pending shard-admin intents forward against "
                       "the data groups")
    serve.add_argument("--metadir-hold", type=float, default=0.0,
                       metavar="MS",
                       help="driver test hook: pause between the retire "
                       "step and the install submit (widens the "
                       "killed-between-steps window the failover tests "
                       "aim at; 0 = no pause)")
    serve.add_argument("--metadir-poll", type=float, default=50.0,
                       metavar="MS",
                       help="driver poll period for pending intents")
    serve.add_argument("--metadir-takeover", type=float, default=1500.0,
                       metavar="MS",
                       help="a non-leader driver rolls an intent forward "
                       "after it has been pending this long (dead-leader "
                       "takeover bound)")

    cluster = sub.add_parser(
        "cluster", help="launch a live localhost cluster and drive it"
    )
    cluster.add_argument("--replicas", type=int, default=3)
    cluster.add_argument("--base-port", type=int, default=None,
                         help="first port (default: OS-assigned free ports)")
    cluster.add_argument("--app", default="kv", help="kv|counter|bank|lock")
    cluster.add_argument("--ops", type=int, default=20,
                         help="commands to commit before reconfiguring")
    cluster.add_argument("--no-reconfigure", action="store_true",
                         help="skip the live membership change")
    cluster.add_argument("--seed", type=int, default=42)
    cluster.add_argument("--wire", default=None, choices=["json", "binary"],
                         help="wire format for replicas and the driver client")
    cluster.add_argument("--verbose", action="store_true")

    shard_cluster = sub.add_parser(
        "shard-cluster",
        help="launch N reconfigurable-SMR groups behind a shard map "
        "and drive a keyspace across them",
    )
    shard_cluster.add_argument("--groups", type=int, default=3,
                               help="serving groups (each a full cluster)")
    shard_cluster.add_argument("--replicas-per-group", type=int, default=3)
    shard_cluster.add_argument("--spare-groups", type=int, default=0,
                               help="extra groups owning nothing, as "
                               "targets for --split")
    shard_cluster.add_argument("--ops", type=int, default=64,
                               help="keys to write through the router")
    shard_cluster.add_argument("--split", action="store_true",
                               help="split the busiest group mid-run and "
                               "verify the keyspace survives the cutover")
    shard_cluster.add_argument("--no-metrics", action="store_true",
                               help="skip the per-group metrics summary")
    shard_cluster.add_argument("--director-replicas", type=int, default=0,
                               help="replicate the director on its own "
                               "metadir group of this many replicas "
                               "(0 = classic in-process director); try 3")
    shard_cluster.add_argument("--seed", type=int, default=42)
    shard_cluster.add_argument("--wire", default=None,
                               choices=["json", "binary"])
    shard_cluster.add_argument("--verbose", action="store_true")

    shard_route = sub.add_parser(
        "shard-route",
        help="ask a shard director for its map and where keys live",
    )
    shard_route.add_argument("--director", required=True, metavar="HOST:PORT",
                             help="the director's map endpoint")
    shard_route.add_argument("keys", nargs="*", default=[],
                             help="keys to resolve (may be empty)")
    shard_route.add_argument("--timeout", type=float, default=2.0)
    shard_route.add_argument("--wire", default=None,
                             choices=["json", "binary"])

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault injection against a live cluster + "
        "linearizability verdict",
    )
    chaos.add_argument("--replicas", type=int, default=3)
    chaos.add_argument("--seed", type=int, default=42,
                       help="drives the schedule, workload, and link-loss "
                       "draws; same seed = same injection order")
    chaos.add_argument("--scale", type=float, default=1.0,
                       help="stretch factor for the schedule's offsets")
    chaos.add_argument("--wire", default=None, choices=["json", "binary"])
    chaos.add_argument("--smoke", action="store_true",
                       help="CI gate: also fail if the run takes >= 60s")
    chaos.add_argument("--history", default=None, metavar="PATH",
                       help="write the recorded client history as JSONL")
    chaos.add_argument("--timeline", default="CHAOS_timeline.json",
                       metavar="PATH",
                       help="write the fault-aligned hand-off timeline as "
                       "JSON (injections + reconfiguration span phases on "
                       "one timebase); empty string to skip")
    chaos.add_argument("--durable", action="store_true",
                       help="give every replica a --data-dir so the "
                       "schedule's restart recovers from checkpoint+WAL "
                       "instead of amnesia")
    chaos.add_argument("--recovery-out", default=None, metavar="PATH",
                       help="write the per-node wal/recovery metrics "
                       "snapshot as JSON (the CI artifact; needs --durable)")
    chaos.add_argument("--batch", action="store_true",
                       help="enable leader-side command batching + a "
                       "pipeline window on every replica, so the oracle "
                       "checks linearizability of the batched commit path")
    chaos.add_argument("--read-mode", default="log",
                       choices=["log", "lease", "follower"],
                       help="run every replica with this read path, so the "
                       "oracle checks e.g. lease reads while the schedule "
                       "partitions the leaseholder mid-RECONFIGURE")
    chaos.add_argument("--verbose", action="store_true")

    storm = sub.add_parser(
        "storm",
        help="seeded reconfiguration storm against a live cluster + "
        "linearizability verdict (overlap | rolling | joincrash | "
        "shard | director)",
    )
    storm.add_argument("scenario", nargs="?", default="overlap",
                       choices=["overlap", "rolling", "joincrash",
                                "shard", "director"],
                       help="which storm plan to run (default: overlap); "
                       "'director' SIGKILLs the replicated shard "
                       "director's claiming replica mid-move, 'shard' "
                       "races per-group membership churn against a "
                       "concurrent range move")
    storm.add_argument("--replicas", type=int, default=3)
    storm.add_argument("--seed", type=int, default=42,
                       help="drives the schedule, reconfigure timings, and "
                       "workload; same seed = same plan, byte for byte")
    storm.add_argument("--scale", type=float, default=1.0,
                       help="stretch factor for the plan's offsets")
    storm.add_argument("--handoff", default="clean",
                       choices=["clean", "dirty"],
                       help="epoch hand-off mode on every replica "
                       "(default: clean cut)")
    storm.add_argument("--read-mode", default=None,
                       choices=["log", "lease", "follower"],
                       help="run every replica with this read path during "
                       "the storm (default: serve default, ordered reads)")
    storm.add_argument("--wire", default=None, choices=["json", "binary"])
    storm.add_argument("--smoke", action="store_true",
                       help="CI gate: also fail if the run takes >= 60s")
    storm.add_argument("--plan-only", action="store_true",
                       help="print the seeded plan JSON and exit (no cluster)")
    storm.add_argument("--timeline", default="STORM_timeline.json",
                       metavar="PATH",
                       help="write the fault-aligned storm timeline as JSON "
                       "(injections + reconfigures + span phases on one "
                       "timebase); empty string to skip")
    storm.add_argument("--history", default=None, metavar="PATH",
                       help="write the recorded client history as JSONL")
    storm.add_argument("--durable", action="store_true",
                       help="give every replica a --data-dir so crashed "
                       "replicas recover from checkpoint+WAL")
    storm.add_argument("--verbose", action="store_true")

    metrics = sub.add_parser(
        "metrics",
        help="poll a live cluster's #metrics endpoints and render snapshots",
    )
    metrics.add_argument("--peers", action="append", default=[],
                         help="address book: n1=host:port,... — repeat "
                         "with group labels (g1:n1=host:port,...) to poll "
                         "several shards and aggregate in one call")
    metrics.add_argument("--demo", action="store_true",
                         help="self-contained: spin up a cluster, reconfigure "
                         "it, and show the resulting snapshot")
    metrics.add_argument("--json", action="store_true",
                         help="raw snapshot JSON instead of tables")
    metrics.add_argument("--json-out", default=None, metavar="PATH",
                         help="also write the snapshot JSON to PATH "
                         "(the CI artifact)")
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument("--wire", default=None, choices=["json", "binary"])
    metrics.add_argument("--verbose", action="store_true")

    top = sub.add_parser(
        "top", help="repeatedly poll a live cluster's metrics (watch mode)"
    )
    top.add_argument("--peers", action="append", required=True,
                     help="address book: n1=host:port,... — repeat with "
                     "group labels (g1:n1=host:port,...) for a sharded "
                     "service's aggregated view")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between polls")
    top.add_argument("--iterations", type=int, default=5,
                     help="how many polls before exiting")
    top.add_argument("--wire", default=None, choices=["json", "binary"])

    bench = sub.add_parser(
        "bench", help="reproducible micro/macro benchmarks"
    )
    bench_sub = bench.add_subparsers(dest="bench_target")
    wire = bench_sub.add_parser(
        "wire", help="codec ops/s + live 3-replica commit throughput, "
        "binary vs json; writes BENCH_wire.json"
    )
    wire.add_argument("--smoke", action="store_true",
                      help="small sizes for CI (<60s); still runs both codecs")
    wire.add_argument("--out", default="BENCH_wire.json",
                      help="output path (default: BENCH_wire.json)")
    wire.add_argument("--seed", type=int, default=42)
    wire.add_argument("--skip-live", action="store_true",
                      help="codec micro-benchmark only (no subprocesses)")
    wire.add_argument("--window", type=int, default=32,
                      help="client pipelining window for the live phase")
    commit = bench_sub.add_parser(
        "commit", help="live 3-replica durable commit-path sweep over "
        "{batching, fsync, window}; writes BENCH_commit.json"
    )
    commit.add_argument("--smoke", action="store_true",
                        help="CI gate: two cells only (<60s), checked "
                        "against the committed baseline's batching ratio")
    commit.add_argument("--out", default="BENCH_commit.json",
                        help="output path (default: BENCH_commit.json)")
    commit.add_argument("--baseline", default="BENCH_commit.json",
                        metavar="PATH",
                        help="committed baseline for the --smoke "
                        "regression gate")
    commit.add_argument("--seed", type=int, default=42)
    commit.add_argument("--window", type=int, default=None,
                        help="client pipelining window override for every "
                        "cell (default: per-cell values)")
    commit.add_argument("--wire", default=None, choices=["json", "binary"])
    read_bench = bench_sub.add_parser(
        "read", help="live 3-replica read-path sweep at a 95/5 mix: "
        "ordered vs lease vs follower reads, fsync on; "
        "writes BENCH_read.json"
    )
    read_bench.add_argument("--smoke", action="store_true",
                            help="CI gate: fewer ops (<60s), lease "
                            "throughput must stay >= 3x ordered")
    read_bench.add_argument("--out", default="BENCH_read.json",
                            help="output path (default: BENCH_read.json)")
    read_bench.add_argument("--seed", type=int, default=42)
    read_bench.add_argument("--window", type=int, default=None,
                            help="client pipelining window override")
    read_bench.add_argument("--wire", default=None,
                            choices=["json", "binary"])
    storm_bench = bench_sub.add_parser(
        "storm", help="reconfiguration storms, clean vs dirty hand-off: "
        "unavailability window + hand-off latency per cell; "
        "writes BENCH_storm.json"
    )
    storm_bench.add_argument("--smoke", action="store_true",
                             help="CI gate: joincrash cell only, dirty-cut "
                             "unavailability must not exceed clean-cut "
                             "beyond the noise floor")
    storm_bench.add_argument("--out", default="BENCH_storm.json",
                             help="output path (default: BENCH_storm.json)")
    storm_bench.add_argument("--seed", type=int, default=42)
    storm_bench.add_argument("--repeats", type=int, default=None,
                             help="fresh-cluster runs per cell "
                             "(default: 2 smoke, 3 full)")
    storm_bench.add_argument("--timeline-dir", default=None, metavar="DIR",
                             help="also write each run's fault-aligned "
                             "timeline JSON into DIR (the CI artifact)")
    storm_bench.add_argument("--wire", default=None,
                             choices=["json", "binary"])
    shard_bench = bench_sub.add_parser(
        "shard", help="aggregate throughput vs group count + "
        "split-under-load verdict; writes BENCH_shard.json"
    )
    shard_bench.add_argument("--smoke", action="store_true",
                             help="small sizes for CI (<60s): fewer "
                             "group counts, shorter measurement windows")
    shard_bench.add_argument("--out", default="BENCH_shard.json",
                             help="output path (default: BENCH_shard.json)")
    shard_bench.add_argument("--groups", default=None,
                             help="comma-separated group counts to sweep "
                             "(default: 1,2,4,8 or 1,3 with --smoke)")
    shard_bench.add_argument("--seed", type=int, default=42)
    shard_bench.add_argument("--wire", default=None,
                             choices=["json", "binary"])

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.quick, args.seed)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "storm":
        return _cmd_storm(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "shard-cluster":
        return _cmd_shard_cluster(args)
    if args.command == "shard-route":
        return _cmd_shard_route(args)
    if args.command == "bench":
        if args.bench_target == "wire":
            from repro.bench.wirebench import run_wire_bench

            return run_wire_bench(
                smoke=args.smoke, out=args.out, seed=args.seed,
                skip_live=args.skip_live, window=args.window,
            )
        if args.bench_target == "commit":
            from repro.bench.commitbench import run_commit_bench

            return run_commit_bench(
                smoke=args.smoke, out=args.out, seed=args.seed,
                baseline=args.baseline, wire=args.wire,
                window=args.window,
            )
        if args.bench_target == "read":
            from repro.bench.readbench import run_read_bench

            return run_read_bench(
                smoke=args.smoke, out=args.out, seed=args.seed,
                wire=args.wire, window=args.window,
            )
        if args.bench_target == "storm":
            from repro.bench.stormbench import run_storm_bench

            return run_storm_bench(
                smoke=args.smoke, out=args.out, seed=args.seed,
                wire=args.wire, repeats=args.repeats,
                timeline_dir=args.timeline_dir,
            )
        if args.bench_target == "shard":
            from repro.bench.shardbench import run_shard_bench

            group_counts = None
            if args.groups:
                group_counts = tuple(
                    int(part) for part in args.groups.split(",") if part
                )
            return run_shard_bench(
                smoke=args.smoke, out=args.out, seed=args.seed,
                wire=args.wire, group_counts=group_counts,
            )
        bench.print_help()
        return 1
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
