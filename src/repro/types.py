"""Shared primitive types used across the library.

The library models a message-passing distributed system. Nodes and clients
are identified by small, hashable identifiers; all protocol payloads are
plain, immutable Python values so that traces are easy to read and histories
are easy to replay deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, NewType

# Identifier of a server process (replica). Plain strings keep traces
# readable ("n1", "n2", ...) while remaining cheap to hash and compare.
NodeId = NewType("NodeId", str)

# Identifier of a client process.
ClientId = NewType("ClientId", str)

# Simulated time, in seconds. All simulator APIs speak seconds as floats;
# helpers in repro.metrics convert to milliseconds for reporting.
Time = float

# Epoch number in the configuration chain (0 is the initial configuration).
EpochId = int

# Slot index inside a single static SMR instance's log (0-based).
Slot = int


def node_id(raw: str) -> NodeId:
    """Coerce a raw string into a :data:`NodeId`."""
    return NodeId(raw)


def client_id(raw: str) -> ClientId:
    """Coerce a raw string into a :data:`ClientId`."""
    return ClientId(raw)


@dataclass(frozen=True, slots=True)
class CommandId:
    """Globally unique identity of a client command.

    A command keeps its identity across retries and across orphan
    re-proposal into later epochs, which is what makes exactly-once
    execution checkable: the pair ``(client, seq)`` never changes even when
    the command is resubmitted to a different static instance.
    """

    client: ClientId
    seq: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.client}:{self.seq}"


@dataclass(frozen=True, slots=True)
class Command:
    """An application command submitted by a client.

    ``op`` and ``args`` are interpreted by the replicated state machine
    (see :mod:`repro.core.statemachine`); the replication layers treat the
    command as opaque. ``size`` lets workloads model payload bytes for the
    network's bandwidth accounting without materialising real payloads.
    """

    cid: CommandId
    op: str
    args: tuple[Any, ...] = ()
    size: int = 64

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Command({self.cid}, {self.op}{self.args!r})"


@dataclass(frozen=True, slots=True)
class Reply:
    """Response returned to a client for one command."""

    cid: CommandId
    value: Any
    epoch: EpochId
    virtual_index: int


@dataclass(frozen=True, slots=True)
class Membership:
    """An immutable set of replica identifiers forming one configuration."""

    nodes: frozenset[NodeId]

    @classmethod
    def of(cls, *nodes: str) -> "Membership":
        return cls(frozenset(NodeId(n) for n in nodes))

    @classmethod
    def from_iter(cls, nodes: Any) -> "Membership":
        return cls(frozenset(NodeId(str(n)) for n in nodes))

    def __contains__(self, node: NodeId) -> bool:
        return node in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(sorted(self.nodes))

    @property
    def quorum_size(self) -> int:
        """Size of a majority quorum of this membership."""
        return len(self.nodes) // 2 + 1

    def with_added(self, node: NodeId) -> "Membership":
        return Membership(self.nodes | {node})

    def with_removed(self, node: NodeId) -> "Membership":
        return Membership(self.nodes - {node})

    def sorted_nodes(self) -> list[NodeId]:
        return sorted(self.nodes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "{" + ",".join(sorted(self.nodes)) + "}"


@dataclass(frozen=True, slots=True)
class Configuration:
    """One link of the configuration chain: an epoch and its member set."""

    epoch: EpochId
    members: Membership

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"C{self.epoch}{self.members}"


@dataclass(frozen=True, slots=True)
class VirtualLogPosition:
    """Position of a committed command in the cross-epoch virtual log.

    Ordering is lexicographic on ``(epoch, slot)``; the virtual log is the
    concatenation of the effective logs of successive epochs.
    """

    epoch: EpochId
    slot: Slot

    def __lt__(self, other: "VirtualLogPosition") -> bool:
        return (self.epoch, self.slot) < (other.epoch, other.slot)

    def __le__(self, other: "VirtualLogPosition") -> bool:
        return (self.epoch, self.slot) <= (other.epoch, other.slot)


@dataclass(slots=True)
class Decision:
    """A decided slot of one static SMR instance.

    ``payload`` is whatever was proposed: an application :class:`Command`, a
    reconfiguration request, or an internal no-op. Static instances emit
    decisions in slot order, gap-free.
    """

    slot: Slot
    payload: Any
    decided_at: Time = field(default=0.0)
