"""Sharded multi-group service: scale past one Paxos group.

One reconfigurable-SMR group tops out at a single leader's throughput,
so this package runs **N independent groups** side by side — each with
its own virtual log, epoch chain, and data directory — behind a
versioned :class:`~repro.shard.shardmap.ShardMap` that assigns key
ranges (in a stable hash space) to groups.

The pieces:

* :mod:`repro.shard.shardmap` — the map model: hash points, key ranges,
  assignments, and the pure map algebra (split / move / validate);
* :mod:`repro.shard.messages` — the shard wire protocol (map fetch,
  routing, ``WrongShard`` redirects, split/move admin commands);
* :mod:`repro.shard.director` — the map authority: a tiny TCP service
  owning the authoritative map and driving drain-and-cutover moves;
* :mod:`repro.shard.client` — the smart client: caches the map, fans
  requests out to per-group :class:`~repro.net.client.LiveClient`\\ s,
  and follows redirects so map changes propagate without a central hop;
* :mod:`repro.shard.cluster` — :class:`ShardedCluster`, composing one
  :class:`~repro.net.cluster.LocalCluster` per group plus a director;
* :mod:`repro.shard.scenario` — the split-under-load scenario, verified
  with the Wing–Gong linearizability oracle across the cutover.

Reconfiguration stays a **per-shard** operation: adding/removing a
replica touches one group's epoch chain only, which is what makes the
shards independently elastic (the FRAPPE scenario from PAPERS.md).
"""

from repro.shard.shardmap import (
    HASH_SPACE,
    GroupInfo,
    KeyRange,
    ShardAssignment,
    ShardError,
    ShardMap,
    key_point,
)

__all__ = [
    "HASH_SPACE",
    "GroupInfo",
    "KeyRange",
    "ShardAssignment",
    "ShardError",
    "ShardMap",
    "key_point",
]
