"""The shard director: map authority and drain-and-cutover driver.

A :class:`ShardDirector` owns the **authoritative** shard map and serves
it over a tiny threaded TCP endpoint speaking the normal frame codec:
:class:`~repro.shard.messages.ShardMapRequest` /
:class:`~repro.shard.messages.RouteRequest` for lookups, and
:class:`~repro.shard.messages.SplitShard` /
:class:`~repro.shard.messages.MoveShard` for the elastic operations.

It is deliberately *not* on the data path: clients cache the map and
talk straight to groups. The director is consulted when a cache misses
(first contact) or when a redirect carries no usable hint — so a dead
director degrades map *freshness*, never data availability.

A move runs the drain-and-cutover protocol against the groups' own logs:

1. ``shard_retire`` is submitted to the source group as a normal
   replicated command. Its log position is the drain: it atomically
   stops service for the range, records a forwarding hint, and returns
   the captured items.
2. ``shard_install`` is submitted to the target group with those items;
   its log position atomically starts service there.
3. Only then does the director swap in the new map (version + 1).

Between 1 and 3, clients chasing the range are bounced by WrongShard
hints (source → target) or by the director's still-old map; both resolve
within the client's redirect budget. Admin operations are serialized by
one lock — the map version chain is linear by construction.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from typing import Any

from repro.net import codec
from repro.shard.messages import (
    MoveShard,
    RouteRequest,
    RouteReply,
    ShardAck,
    ShardMapReply,
    ShardMapRequest,
    SplitShard,
)
from repro.shard.shardmap import ShardError, ShardMap, key_point
from repro.types import NodeId

#: wire name the director answers as (there is one per sharded service).
DIRECTOR_NODE = "shard-director"


class _DirectorServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _Handler(socketserver.BaseRequestHandler):
    """One connection: read frames, dispatch, reply in the same format."""

    def handle(self) -> None:  # pragma: no cover - exercised over sockets
        director: "ShardDirector" = self.server.director  # type: ignore[attr-defined]
        sock: socket.socket = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        buffer = b""
        while not director.closed:
            while len(buffer) >= 4:
                length = codec.frame_length(buffer[:4])
                if len(buffer) < 4 + length:
                    break
                body = buffer[4 : 4 + length]
                buffer = buffer[4 + length :]
                try:
                    fmt = codec.frame_format(body)
                    sender, _, payload = codec.decode_frame_body(body)
                    reply = director.dispatch(payload)
                except codec.CodecError:
                    return
                if reply is not None:
                    try:
                        sock.sendall(
                            codec.encode_frame(
                                NodeId(DIRECTOR_NODE), sender, reply, fmt
                            )
                        )
                    except OSError:
                        return
            try:
                chunk = sock.recv(65536)
            except OSError:
                return
            if not chunk:
                return
            buffer += chunk


class ShardDirector:
    """Authoritative shard map + the split/move admin service."""

    def __init__(
        self,
        shard_map: ShardMap,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        wire_format: str | None = None,
        request_timeout: float = 2.0,
    ):
        shard_map.validate()
        self._map = shard_map
        self.wire_format = wire_format
        self.request_timeout = request_timeout
        #: serializes split/move cutovers (the version chain is linear).
        self._admin_lock = threading.Lock()
        self._map_lock = threading.Lock()
        self.closed = False
        self._moves = 0
        self._server = _DirectorServer((host, port), _Handler)
        self._server.director = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="shard-director",
            daemon=True,
        )
        self._thread.start()

    # -- map access ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return (str(host), int(port))

    @property
    def shard_map(self) -> ShardMap:
        with self._map_lock:
            return self._map

    def _swap(self, new_map: ShardMap) -> None:
        with self._map_lock:
            if new_map.version <= self._map.version:  # pragma: no cover
                raise ShardError(
                    f"map version went backwards: {self._map.version} -> "
                    f"{new_map.version}"
                )
            self._map = new_map

    # -- wire dispatch ------------------------------------------------------

    def dispatch(self, payload: Any) -> Any:
        """Answer one decoded request payload (None = not ours, drop)."""
        if isinstance(payload, ShardMapRequest):
            return ShardMapReply(payload.cid, self.shard_map)
        if isinstance(payload, RouteRequest):
            shard_map = self.shard_map
            point = key_point(payload.key)
            return RouteReply(
                payload.cid, payload.key, point,
                shard_map.group_for_point(point), shard_map.version,
            )
        if isinstance(payload, SplitShard):
            return self._admin(
                payload.cid, "split",
                lambda: self.split(
                    payload.group,
                    at=None if payload.at < 0 else payload.at,
                    target=payload.target or None,
                ),
            )
        if isinstance(payload, MoveShard):
            return self._admin(
                payload.cid, "move",
                lambda: self.move(payload.lo, payload.hi, payload.target),
            )
        return None

    def _admin(self, cid: Any, op: str, action: Any) -> ShardAck:
        try:
            new_map = action()
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            return ShardAck(cid, op, False, f"{type(exc).__name__}: {exc}",
                            self.shard_map.version)
        return ShardAck(
            cid, op, True,
            f"version {new_map.version}: "
            + "; ".join(
                f"{a.group}{a.range}" for a in new_map.assignments
            ),
            new_map.version,
        )

    # -- elastic operations -------------------------------------------------

    def split(
        self,
        group: str,
        at: int | None = None,
        target: str | None = None,
        deadline: float = 30.0,
    ) -> ShardMap:
        """Split ``group``'s widest range and move the upper half away.

        ``at`` defaults to the midpoint; ``target`` defaults to the group
        owning the least of the hash space (ties broken by name), which
        is what makes repeated splits a crude rebalancer.
        """
        with self._admin_lock:
            shard_map = self.shard_map
            widest = shard_map.widest_range_of(group)
            point = widest.midpoint if at is None else at
            if not widest.contains(point) or point == widest.lo:
                raise ShardError(
                    f"split point {point} not inside {widest} (exclusive of lo)"
                )
            if target is None:
                owned = {info.name: 0 for info in shard_map.groups}
                for assignment in shard_map.assignments:
                    owned[assignment.group] += assignment.range.width
                target = min(
                    (name for name in owned if name != group),
                    key=lambda name: (owned[name], name),
                )
            return self._cutover(point, widest.hi, target, deadline)

    def move(
        self, lo: int, hi: int, target: str, deadline: float = 30.0
    ) -> ShardMap:
        """Move exactly ``[lo, hi)`` to ``target`` (drain-and-cutover)."""
        with self._admin_lock:
            return self._cutover(lo, hi, target, deadline)

    def publish_group(self, info: Any) -> ShardMap:
        """Publish a group's new membership (after add/remove replica)."""
        with self._admin_lock:
            new_map = self.shard_map.with_group(info)
            self._swap(new_map)
            return new_map

    def _cutover(
        self, lo: int, hi: int, target: str, deadline: float
    ) -> ShardMap:
        """The two-command move protocol; swaps the map on success."""
        from repro.net.client import LiveClient

        shard_map = self.shard_map
        source = shard_map.assignment_at(lo).group
        if source == target:
            raise ShardError(f"range [{lo}, {hi}) already owned by {target!r}")
        # Validates bounds/containment before any command is sent.
        new_map = shard_map.with_move(lo, hi, target)
        version = new_map.version
        self._moves += 1
        started = time.monotonic()

        source_info = shard_map.group_info(source)
        target_info = shard_map.group_info(target)
        with LiveClient(
            f"director-m{self._moves}-r",
            source_info.addresses,
            view=source_info.members,
            request_timeout=self.request_timeout,
            wire_format=self.wire_format,
        ) as retire_client:
            reply = retire_client.submit(
                "shard_retire", (lo, hi, version, target), deadline=deadline
            )
        capture = reply.value
        if not isinstance(capture, dict) or "items" not in capture:
            raise ShardError(
                f"retire of [{lo}, {hi}) at {source!r} failed: {capture!r}"
            )
        remaining = max(1.0, deadline - (time.monotonic() - started))
        with LiveClient(
            f"director-m{self._moves}-i",
            target_info.addresses,
            view=target_info.members,
            request_timeout=self.request_timeout,
            wire_format=self.wire_format,
        ) as install_client:
            installed = install_client.submit(
                "shard_install",
                (lo, hi, version, capture["items"]),
                deadline=remaining,
            )
        if not isinstance(installed.value, dict):
            raise ShardError(
                f"install of [{lo}, {hi}) at {target!r} failed: "
                f"{installed.value!r}"
            )
        self._swap(new_map)
        return new_map

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "ShardDirector":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
