"""The shard wire protocol (registered in the codec bootstrap).

Three conversations share these payloads:

* **map fetch / routing** — a client (or the ``repro shard-route`` CLI)
  asks the director for the authoritative map or for one key's home:
  :class:`ShardMapRequest` → :class:`ShardMapReply`,
  :class:`RouteRequest` → :class:`RouteReply`;
* **redirects** — a group that no longer owns a key answers the normal
  :class:`~repro.core.client.ClientReply` with a :class:`WrongShard`
  *value*. Riding inside the reply keeps the replica protocol untouched:
  the sharded state machine emits it like any other result, the codec
  round-trips it like any registered dataclass, and only the
  :class:`~repro.shard.client.ShardClient` interprets it;
* **elastic admin** — :class:`SplitShard` / :class:`MoveShard` ask the
  director to run a drain-and-cutover move; :class:`ShardAck` reports
  the outcome and the resulting map version.

Every request carries a :class:`~repro.types.CommandId` so replies can
be matched over a shared connection, mirroring the ``#chaos`` and
``#metrics`` admin protocols.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.shard.shardmap import ShardMap
from repro.types import CommandId


@dataclass(frozen=True, slots=True)
class ShardMapRequest:
    """Client -> director: send me the authoritative shard map."""

    cid: CommandId


@dataclass(frozen=True, slots=True)
class ShardMapReply:
    """Director -> client: the current map (version included within)."""

    cid: CommandId
    shard_map: ShardMap


@dataclass(frozen=True, slots=True)
class RouteRequest:
    """Client -> director: which group owns this key right now?"""

    cid: CommandId
    key: str


@dataclass(frozen=True, slots=True)
class RouteReply:
    """Director -> client: one key's hash point, owner, and map version."""

    cid: CommandId
    key: str
    point: int
    group: str
    version: int


@dataclass(frozen=True, slots=True)
class WrongShard:
    """Reply *value* from a group that does not own the requested key.

    ``version`` is the map version of the move that took (or will give)
    the range away; ``target`` names the new owner when the rejecting
    group knows it (the retire command records a forwarding hint), or is
    empty when it does not (e.g. the target group before its install
    command executes). ``lo``/``hi`` bound the moved range so a client
    can patch exactly that slice of its cached map without a central
    hop; a zero-width range means "no hint, refresh from the director".
    """

    key: str
    point: int
    version: int
    group: str
    target: str
    lo: int
    hi: int

    @property
    def has_hint(self) -> bool:
        return bool(self.target) and self.hi > self.lo


@dataclass(frozen=True, slots=True)
class SplitShard:
    """Admin -> director: split ``group``'s range and move half away.

    ``at`` is the split point; ``-1`` means the midpoint of the group's
    widest range. ``target`` is the receiving group; empty means "pick
    the serving-or-spare group owning the least of the space".
    """

    cid: CommandId
    group: str
    at: int
    target: str


@dataclass(frozen=True, slots=True)
class MoveShard:
    """Admin -> director: move exactly ``[lo, hi)`` to ``target``."""

    cid: CommandId
    lo: int
    hi: int
    target: str


@dataclass(frozen=True, slots=True)
class ShardAck:
    """Director -> admin: outcome of a split/move (and the new version)."""

    cid: CommandId
    op: str
    ok: bool
    detail: str
    version: int
