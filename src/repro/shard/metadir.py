"""The replicated director: the shard map as a state machine of its own.

The in-memory :class:`~repro.shard.director.ShardDirector` owns the map
behind a thread lock; kill that one process mid-``move`` and the service
is left with a half-finished drain-and-cutover — retire committed on the
source, install never submitted, map never swapped. This module applies
the paper's recipe to the control plane itself: the authoritative state
(the :class:`~repro.shard.shardmap.ShardMap` version chain plus a table
of in-flight admin *intents*) becomes a deterministic state machine
(:class:`MetaDirStateMachine`) replicated on its own reconfigurable
group — WAL-durable, reconfigurable, and lease-readable like any data
group.

Admin operations run as a **crash-resumable intent protocol**:

1. ``dir_begin`` commits an *intent* record to the director log. The
   intent captures the full plan — ``[lo, hi)``, source, target and the
   planned map version — computed against the committed map, and intents
   are serialized (one in flight), so the plan stays valid until the
   intent is archived.
2. Any director replica's :class:`IntentDriver` executes the
   drain-and-cutover steps against the data groups. Every step's
   command identity is **derived from the intent id** (client
   ``"metadir-i<id>-r"`` / ``"-i"``, seq 1), so a successor replaying a
   dead leader's steps hits the groups' dedup tables and gets the
   *original* replies back: a re-run retire returns the same captured
   items, a re-run install merges nothing new. Resume and roll-forward
   are literally the same code path.
3. ``dir_complete`` commits the completion record, which swaps the map
   (version + 1) and archives the intent. Completion is idempotent by
   intent id, so racing drivers cannot double-install a range.

The driver normally runs only on the group's current leader; a follower
whose clock says the intent has been pending past the takeover bound
drives it too, which is what rolls an orphaned move forward after the
leader is SIGKILLed between steps.

Clients need no new protocol: every metadir replica answers the classic
:class:`~repro.shard.messages.ShardMapRequest` /
:class:`~repro.shard.messages.RouteRequest` on its ordinary replica port
(see :func:`install_director_endpoint`), serving its locally-executed
copy of the map — stale by at most the replication lag, which the
version-gated client cache absorbs. Multi-endpoint failover lives in
:class:`~repro.shard.client.ShardClient`.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Callable

from repro.core.statemachine import StateMachine
from repro.shard.messages import (
    RouteReply,
    RouteRequest,
    ShardMapReply,
    ShardMapRequest,
)
from repro.shard.shardmap import GroupInfo, ShardError, ShardMap, key_point
from repro.types import Command, NodeId

#: wire name metadir replicas answer map lookups as (same name the
#: in-memory director uses, so ``fetch_shard_map`` works against both).
DIRECTOR_ENDPOINT = "shard-director"

#: read-only metadir operations, eligible for the lease/follower read
#: fast paths when the director group is served with ``--read-mode``.
METADIR_READ_OPS = frozenset(
    {"dir_map", "dir_intent", "dir_history", "dir_status"}
)

#: archived intents kept in the state machine (and its snapshots).
DONE_LIMIT = 64


def intent_client(intent_id: int, step: str) -> str:
    """The deterministic client identity for one step of one intent.

    This is the whole resumability trick: every driver that executes
    step ``step`` of intent ``intent_id`` — the leader that began it or
    the successor rolling it forward — submits under the same client
    name with seq 1, so the data group's dedup table returns the
    original reply instead of re-executing the command.
    """
    return f"metadir-i{intent_id}-{step}"


class MetaDirStateMachine(StateMachine):
    """Replicated director state: map version chain + intent table."""

    def __init__(self) -> None:
        #: the committed map; None until ``dir_init`` executes.
        self.shard_map: ShardMap | None = None
        #: the single in-flight intent (admin ops serialize), or None.
        self.active_intent: dict[str, Any] | None = None
        #: archived intents, newest last, bounded by DONE_LIMIT.
        self.done: list[dict[str, Any]] = []
        #: one entry per map version, in version order — the version
        #: chain the storm cell checks for linearity and gaplessness.
        self.chain: list[dict[str, Any]] = []
        self.next_intent_id = 1

    # -- apply --------------------------------------------------------------

    def apply(self, command: Command) -> Any:
        op, args = command.op, command.args
        handler = getattr(self, f"_{op}", None)
        if op.startswith("dir_") and handler is not None:
            return handler(*args)
        raise ShardError(f"unknown metadir operation {op!r}")

    # -- reads --------------------------------------------------------------

    def _dir_map(self) -> ShardMap | None:
        return self.shard_map

    def _dir_intent(self) -> dict[str, Any] | None:
        return self.active_intent

    def _dir_history(self) -> tuple[dict[str, Any], ...]:
        return tuple(self.chain)

    def _dir_status(self, intent_id: int) -> dict[str, Any]:
        intent_id = int(intent_id)
        if (
            self.active_intent is not None
            and self.active_intent["id"] == intent_id
        ):
            return dict(self.active_intent)
        for intent in reversed(self.done):
            if intent["id"] == intent_id:
                return dict(intent)
        return {"id": intent_id, "status": "unknown"}

    # -- map lifecycle ------------------------------------------------------

    def _dir_init(self, shard_map: ShardMap) -> dict[str, Any]:
        """Install the founding map (idempotent: first init wins)."""
        if self.shard_map is not None:
            return {"ok": True, "version": self.shard_map.version,
                    "already": True}
        shard_map.validate()
        self.shard_map = shard_map
        self._chain_entry("init", f"{len(shard_map.assignments)} ranges",
                          shard_map.version)
        return {"ok": True, "version": shard_map.version, "already": False}

    def _dir_publish(self, info: GroupInfo) -> dict[str, Any]:
        """Publish a group's new membership (single-step, no intent)."""
        if self.shard_map is None:
            return {"ok": False, "error": "no map installed"}
        try:
            self.shard_map = self.shard_map.with_group(info)
        except ShardError as exc:
            return {"ok": False, "error": str(exc)}
        self._chain_entry(
            "publish", f"{info.name} -> {list(info.members)}",
            self.shard_map.version,
        )
        return {"ok": True, "version": self.shard_map.version}

    # -- the intent protocol ------------------------------------------------

    def _dir_begin(self, kind: str, spec: dict[str, Any]) -> dict[str, Any]:
        """Commit an intent: plan the cutover against the committed map.

        Intents serialize — a second begin while one is in flight is
        refused, which is what keeps every plan valid until completion
        (only completions move assignments, and only publishes touch
        group infos).
        """
        if self.shard_map is None:
            return {"ok": False, "error": "no map installed"}
        if self.active_intent is not None:
            return {"ok": False, "error": "an intent is already in flight",
                    "active": dict(self.active_intent)}
        try:
            lo, hi, source, target = self._plan(str(kind), spec)
        except ShardError as exc:
            return {"ok": False, "error": str(exc)}
        intent = {
            "id": self.next_intent_id,
            "kind": str(kind),
            "lo": lo,
            "hi": hi,
            "source": source,
            "target": target,
            # The version stamped into retire/install commands. The map
            # may advance past it via publishes before completion; the
            # committed chain still increments by exactly one per swap.
            "planned_version": self.shard_map.version + 1,
            "status": "pending",
            "claimed_by": "",
            "steps": [],
        }
        self.next_intent_id += 1
        self.active_intent = intent
        return {"ok": True, "intent": dict(intent)}

    def _plan(self, kind: str, spec: dict[str, Any]) -> tuple[int, int, str, str]:
        """Resolve an admin request to a concrete (lo, hi, source, target)."""
        assert self.shard_map is not None
        shard_map = self.shard_map
        if kind == "move":
            lo, hi = int(spec["lo"]), int(spec["hi"])
            target = str(spec["target"])
            source = shard_map.assignment_at(lo).group
            if source == target:
                raise ShardError(
                    f"range [{lo}, {hi}) already owned by {target!r}"
                )
            # Validates bounds/containment before any command is sent.
            shard_map.with_move(lo, hi, target)
            return lo, hi, source, target
        if kind == "split":
            group = str(spec["group"])
            widest = shard_map.widest_range_of(group)
            at = spec.get("at")
            point = widest.midpoint if at is None else int(at)
            if not widest.contains(point) or point == widest.lo:
                raise ShardError(
                    f"split point {point} not inside {widest} "
                    "(exclusive of lo)"
                )
            target = spec.get("target")
            if target is None:
                owned = {info.name: 0 for info in shard_map.groups}
                for assignment in shard_map.assignments:
                    owned[assignment.group] += assignment.range.width
                target = min(
                    (name for name in owned if name != group),
                    key=lambda name: (owned[name], name),
                )
            return self._plan(
                "move", {"lo": point, "hi": widest.hi, "target": str(target)}
            )
        if kind == "merge":
            # Merge-prep: hand the assignment containing ``at`` to its
            # left neighbour's owner; with_move's coalescing makes the
            # two ranges one.
            at = int(spec["at"])
            assignment = shard_map.assignment_at(at)
            if assignment.range.lo == 0:
                raise ShardError("leftmost range has no left neighbour")
            neighbour = shard_map.assignment_at(assignment.range.lo - 1)
            return self._plan(
                "move",
                {
                    "lo": assignment.range.lo,
                    "hi": assignment.range.hi,
                    "target": neighbour.group,
                },
            )
        raise ShardError(f"unknown intent kind {kind!r}")

    def _dir_claim(self, intent_id: int, node: str) -> dict[str, Any]:
        intent = self._pending(intent_id)
        if intent is None:
            return self._dir_status(intent_id)
        intent["claimed_by"] = str(node)
        return dict(intent)

    def _dir_step(self, intent_id: int, step: str) -> dict[str, Any]:
        intent = self._pending(intent_id)
        if intent is None:
            return self._dir_status(intent_id)
        if step not in intent["steps"]:
            intent["steps"].append(str(step))
        return dict(intent)

    def _dir_complete(self, intent_id: int) -> dict[str, Any]:
        """Swap the map and archive the intent. Idempotent by id."""
        intent = self._pending(intent_id)
        if intent is None:
            # Already archived (a racing driver got here first) or never
            # existed; either way the answer is the archived status.
            return self._dir_status(intent_id)
        assert self.shard_map is not None
        try:
            self.shard_map = self.shard_map.with_move(
                intent["lo"], intent["hi"], intent["target"]
            )
        except ShardError as exc:
            # The plan no longer applies (cannot happen while intents
            # serialize, but a poisoned log slot must not wedge us).
            return self._archive(intent, "aborted", str(exc))
        self._chain_entry(
            intent["kind"],
            f"[{intent['lo']}, {intent['hi']}) "
            f"{intent['source']} -> {intent['target']}",
            self.shard_map.version,
        )
        return self._archive(intent, "done", "")

    def _dir_abort(self, intent_id: int, reason: str) -> dict[str, Any]:
        intent = self._pending(intent_id)
        if intent is None:
            return self._dir_status(intent_id)
        return self._archive(intent, "aborted", str(reason))

    def _pending(self, intent_id: int) -> dict[str, Any] | None:
        intent = self.active_intent
        if intent is not None and intent["id"] == int(intent_id):
            return intent
        return None

    def _archive(
        self, intent: dict[str, Any], status: str, detail: str
    ) -> dict[str, Any]:
        intent["status"] = status
        intent["detail"] = detail
        self.active_intent = None
        self.done.append(intent)
        del self.done[:-DONE_LIMIT]
        return dict(intent)

    def _chain_entry(self, kind: str, detail: str, version: int) -> None:
        self.chain.append(
            {"version": int(version), "kind": kind, "detail": detail}
        )

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Any:
        return {
            "map": self.shard_map,
            "intent": (
                None if self.active_intent is None
                else dict(self.active_intent)
            ),
            "done": [dict(i) for i in self.done],
            "chain": [dict(e) for e in self.chain],
            "next_id": self.next_intent_id,
        }

    def restore(self, snapshot: Any) -> None:
        self.shard_map = snapshot["map"]
        intent = snapshot["intent"]
        self.active_intent = None if intent is None else dict(intent)
        self.done = [dict(i) for i in snapshot["done"]]
        self.chain = [dict(e) for e in snapshot["chain"]]
        self.next_intent_id = int(snapshot["next_id"])

    def snapshot_bytes(self) -> int:
        ranges = 0 if self.shard_map is None else len(self.shard_map.assignments)
        return 256 + 48 * ranges + 128 * (len(self.done) + 1)


# ---------------------------------------------------------------------------
# The per-replica lookup endpoint
# ---------------------------------------------------------------------------


def install_director_endpoint(
    transport: Any,
    node: str,
    machine: Callable[[], MetaDirStateMachine | None],
) -> NodeId:
    """Answer map/route lookups from this replica's executed state.

    Registered as ``shard-director`` on the replica's own transport, so
    the classic raw-socket :func:`~repro.shard.client.fetch_shard_map`
    works unchanged against any metadir replica's address. Replies come
    from the *locally executed* map — stale by at most the replication
    lag; the client's version-gated adoption makes that safe (freshness
    degrades, routing correctness is guarded by the groups' own
    WrongShard checks). No reply until ``dir_init`` has executed here.
    """
    endpoint = NodeId(DIRECTOR_ENDPOINT)

    def handle(message: Any) -> None:
        payload = message.payload
        inner = machine()
        shard_map = None if inner is None else inner.shard_map
        if shard_map is None:
            return  # not initialised yet: silence, the client fails over
        if isinstance(payload, ShardMapRequest):
            transport.send(
                endpoint, message.sender, ShardMapReply(payload.cid, shard_map)
            )
        elif isinstance(payload, RouteRequest):
            point = key_point(payload.key)
            transport.send(
                endpoint,
                message.sender,
                RouteReply(
                    payload.cid, payload.key, point,
                    shard_map.group_for_point(point), shard_map.version,
                ),
            )

    transport.register(endpoint, handle)
    return endpoint


# ---------------------------------------------------------------------------
# The intent driver
# ---------------------------------------------------------------------------


class IntentDriver(threading.Thread):
    """Rolls pending intents forward against the data groups.

    One per metadir replica process. Polls the locally executed intent
    table; drives when this replica leads the newest epoch, or when a
    pending intent has sat unexecuted past ``takeover`` seconds (the
    dead-leader case). Every action is idempotent — steps replay through
    the data groups' dedup tables and completion dedups by intent id —
    so two drivers racing after a fuzzy leadership hand-off is safe,
    merely wasteful.

    ``hold`` inserts a pause between the retire step and the install
    submit: zero in production, widened by the failover tests and the
    storm cell to make "killed between steps" a deterministic window.
    """

    def __init__(
        self,
        node: str,
        replica: Any,
        addresses: dict[str, tuple[str, int]],
        *,
        wire_format: str | None = None,
        poll: float = 0.05,
        hold: float = 0.0,
        takeover: float = 1.5,
        request_timeout: float = 2.0,
    ):
        super().__init__(name=f"intent-driver-{node}", daemon=True)
        self.node = str(node)
        self.replica = replica
        self.addresses = dict(addresses)
        self.wire_format = wire_format
        self.poll = poll
        self.hold = hold
        self.takeover = takeover
        self.request_timeout = request_timeout
        self.driven = 0
        self._stop = threading.Event()
        self._pending_since: tuple[int, float] | None = None
        self._self_client: Any = None

    # -- lifecycle ----------------------------------------------------------

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:  # pragma: no cover - exercised via live tests
        while not self._stop.wait(self.poll):
            try:
                self._tick()
            except Exception as exc:  # noqa: BLE001 - retried next poll
                print(
                    f"[{self.node}] intent driver: "
                    f"{type(exc).__name__}: {exc}",
                    file=sys.stderr, flush=True,
                )

    # -- one poll -----------------------------------------------------------

    def _machine(self) -> MetaDirStateMachine | None:
        state = getattr(self.replica, "state", None)
        inner = getattr(state, "inner", None)
        return inner if isinstance(inner, MetaDirStateMachine) else None

    def _is_leader(self) -> bool:
        replica = self.replica
        runtime = replica.chain.get(replica.newest_epoch)
        engine = getattr(runtime, "engine", None)
        return bool(getattr(engine, "is_leader", False))

    def _tick(self) -> None:
        machine = self._machine()
        if machine is None:
            return
        intent = machine.active_intent
        if intent is None or machine.shard_map is None:
            self._pending_since = None
            return
        now = time.monotonic()
        if self._pending_since is None or self._pending_since[0] != intent["id"]:
            self._pending_since = (intent["id"], now)
        aged = now - self._pending_since[1] >= self.takeover
        if not self._is_leader() and not aged:
            return
        self._drive(dict(intent), machine.shard_map)

    # -- the drain-and-cutover steps ----------------------------------------

    def _drive(self, intent: dict[str, Any], shard_map: ShardMap) -> None:
        from repro.net.client import LiveClient

        intent_id = int(intent["id"])
        lo, hi = int(intent["lo"]), int(intent["hi"])
        version = int(intent["planned_version"])
        source = shard_map.group_info(intent["source"])
        target = shard_map.group_info(intent["target"])
        self.driven += 1

        if intent.get("claimed_by") != self.node:
            self._submit_self("dir_claim", (intent_id, self.node))

        # Step 1 — retire at the source. The deterministic client name
        # means a replay (us, or a successor after our death) gets the
        # original capture back from the dedup table.
        with LiveClient(
            intent_client(intent_id, "r"),
            source.addresses,
            view=source.members,
            request_timeout=self.request_timeout,
            wire_format=self.wire_format,
        ) as retire_client:
            reply = retire_client.submit(
                "shard_retire", (lo, hi, version, target.name), deadline=15.0
            )
        capture = reply.value
        if not isinstance(capture, dict) or "items" not in capture:
            self._submit_self(
                "dir_abort",
                (intent_id, f"retire at {source.name!r} failed: {capture!r}"),
            )
            return
        self._submit_self("dir_step", (intent_id, "retired"))

        # The crash window under test: a SIGKILL landing in this pause
        # leaves the range retired but not installed — exactly the state
        # a successor driver must roll forward from.
        if self.hold > 0:
            if self._stop.wait(self.hold):
                return

        # Step 2 — install at the target, same dedup discipline.
        with LiveClient(
            intent_client(intent_id, "i"),
            target.addresses,
            view=target.members,
            request_timeout=self.request_timeout,
            wire_format=self.wire_format,
        ) as install_client:
            installed = install_client.submit(
                "shard_install",
                (lo, hi, version, capture["items"]),
                deadline=15.0,
            )
        if not isinstance(installed.value, dict):
            self._submit_self(
                "dir_abort",
                (intent_id,
                 f"install at {target.name!r} failed: {installed.value!r}"),
            )
            return

        # Step 3 — the completion record swaps the map.
        self._submit_self("dir_complete", (intent_id,))
        self._submit_self("dir_step", (intent_id, "completed"))

    def _submit_self(self, op: str, args: tuple[Any, ...]) -> Any:
        """Submit a director-log command through our own group."""
        from repro.net.client import LiveClient

        if self._self_client is None:
            # The pid suffix keeps a restarted driver's sequence numbers
            # from colliding with its previous incarnation's in the
            # group's dedup table (semantic idempotence by intent id is
            # what actually protects the protocol).
            self._self_client = LiveClient(
                f"mdrv-{self.node}-{os.getpid()}",
                self.addresses,
                view=list(self.addresses),
                request_timeout=self.request_timeout,
                wire_format=self.wire_format,
            )
        return self._self_client.submit(op, args, deadline=10.0).value


# ---------------------------------------------------------------------------
# The admin handle
# ---------------------------------------------------------------------------


class ReplicatedShardDirector:
    """Client-side handle over a metadir group (the admin surface).

    Mirrors :class:`~repro.shard.director.ShardDirector`'s interface
    (``shard_map`` / ``split`` / ``move`` / ``publish_group``) so
    :class:`~repro.shard.cluster.ShardedCluster` can swap one for the
    other. Admin calls commit the intent and then *wait* for a driver to
    complete it — the work itself happens inside the director replicas,
    which is what makes it survive the death of whoever asked.
    """

    def __init__(
        self,
        addresses: dict[str, tuple[str, int]],
        *,
        name: str = "metadir-admin",
        view: list[str] | None = None,
        wire_format: str | None = None,
        request_timeout: float = 2.0,
    ):
        from repro.net.client import LiveClient

        self.addresses = dict(addresses)
        self.wire_format = wire_format
        self._client = LiveClient(
            f"{name}-{os.getpid()}",
            self.addresses,
            view=view if view is not None else list(self.addresses),
            request_timeout=request_timeout,
            wire_format=wire_format,
        )

    # -- map access ---------------------------------------------------------

    @property
    def shard_map(self) -> ShardMap:
        value = self._submit("dir_map", ())
        if not isinstance(value, ShardMap):
            raise ShardError(f"director has no map yet: {value!r}")
        return value

    def init_map(self, shard_map: ShardMap, deadline: float = 15.0) -> int:
        value = self._submit("dir_init", (shard_map,), deadline=deadline)
        if not isinstance(value, dict) or not value.get("ok"):
            raise ShardError(f"dir_init failed: {value!r}")
        return int(value["version"])

    def history(self) -> tuple[dict[str, Any], ...]:
        value = self._submit("dir_history", ())
        return tuple(value) if isinstance(value, (list, tuple)) else ()

    def intent(self) -> dict[str, Any] | None:
        value = self._submit("dir_intent", ())
        return value if isinstance(value, dict) else None

    def status(self, intent_id: int) -> dict[str, Any]:
        value = self._submit("dir_status", (int(intent_id),))
        return value if isinstance(value, dict) else {"status": "unknown"}

    # -- admin operations ---------------------------------------------------

    def split(
        self,
        group: str,
        at: int | None = None,
        target: str | None = None,
        deadline: float = 30.0,
    ) -> ShardMap:
        spec: dict[str, Any] = {"group": str(group)}
        if at is not None:
            spec["at"] = int(at)
        if target is not None:
            spec["target"] = str(target)
        return self._admin("split", spec, deadline)

    def move(
        self, lo: int, hi: int, target: str, deadline: float = 30.0
    ) -> ShardMap:
        return self._admin(
            "move", {"lo": int(lo), "hi": int(hi), "target": str(target)},
            deadline,
        )

    def merge(self, at: int, deadline: float = 30.0) -> ShardMap:
        """Merge-prep: fold the range containing ``at`` into its left
        neighbour's owner (the inverse of a split)."""
        return self._admin("merge", {"at": int(at)}, deadline)

    def publish_group(self, info: GroupInfo, deadline: float = 15.0) -> ShardMap:
        value = self._submit("dir_publish", (info,), deadline=deadline)
        if not isinstance(value, dict) or not value.get("ok"):
            raise ShardError(f"publish of {info.name!r} failed: {value!r}")
        return self.shard_map

    def begin(self, kind: str, spec: dict[str, Any]) -> dict[str, Any]:
        """Commit an intent without waiting for it (storm cells use this
        to race a kill against the in-flight move)."""
        value = self._submit("dir_begin", (str(kind), dict(spec)))
        if not isinstance(value, dict) or not value.get("ok"):
            detail = value.get("error") if isinstance(value, dict) else value
            raise ShardError(f"{kind} refused: {detail}")
        return value["intent"]

    def wait(self, intent_id: int, deadline: float = 30.0) -> dict[str, Any]:
        """Block until a driver archives the intent; raises on abort."""
        give_up_at = time.monotonic() + deadline
        while True:
            status = self.status(intent_id)
            if status.get("status") == "done":
                return status
            if status.get("status") == "aborted":
                raise ShardError(
                    f"intent {intent_id} aborted: {status.get('detail')}"
                )
            if time.monotonic() >= give_up_at:
                raise ShardError(
                    f"intent {intent_id} not completed in {deadline}s "
                    f"(status: {status.get('status')!r})"
                )
            time.sleep(0.05)

    def _admin(
        self, kind: str, spec: dict[str, Any], deadline: float
    ) -> ShardMap:
        started = time.monotonic()
        intent = self.begin(kind, spec)
        remaining = max(1.0, deadline - (time.monotonic() - started))
        self.wait(int(intent["id"]), deadline=remaining)
        return self.shard_map

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "ReplicatedShardDirector":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _submit(
        self, op: str, args: tuple[Any, ...], deadline: float = 10.0
    ) -> Any:
        return self._client.submit(op, args, deadline=deadline).value
