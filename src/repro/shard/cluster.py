"""Launch a sharded multi-group service as real processes on localhost.

:class:`ShardedCluster` composes one :class:`~repro.net.cluster.LocalCluster`
per group — each group is a full reconfigurable-SMR cluster with its own
virtual log, epoch chain, log directory, and (optionally) data
directory — plus one :class:`~repro.shard.director.ShardDirector` serving
the authoritative map. Groups are told their initial ownership through
``repro serve``'s ``--shard-*`` flags, so a replica's state machine and
the director agree on the version-1 map without any startup handshake.

Elastic operations are methods here because they span layers:

* :meth:`split` / :meth:`move` delegate to the director's
  drain-and-cutover protocol (ownership moves *between* groups);
* :meth:`add_replica` / :meth:`remove_replica` run the paper's
  reconfiguration *inside* one group and then publish the group's new
  membership through the director (a new map version), leaving every
  other group untouched — the whole point of sharding the epoch chains.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.net.client import LiveClient
from repro.net.cluster import LocalCluster
from repro.shard.director import ShardDirector
from repro.shard.metadir import ReplicatedShardDirector
from repro.shard.shardmap import (
    GroupInfo,
    ShardError,
    ShardMap,
    format_ranges,
)


class ShardedCluster:
    """N independent reconfigurable-SMR groups behind one shard map.

    ``director_replicas=0`` (the default) runs the classic in-process
    :class:`ShardDirector`; ``director_replicas>=1`` instead spawns a
    metadir group of that many ``repro serve --app metadir`` processes —
    the replicated control plane — and drives admin operations through
    the crash-resumable intent protocol.
    """

    def __init__(
        self,
        groups: int = 3,
        *,
        replicas_per_group: int = 3,
        spare_groups: int = 0,
        host: str = "127.0.0.1",
        seed: int = 42,
        wire: str | None = None,
        log_dir: str | Path | None = None,
        python: str = sys.executable,
        verbose: bool = False,
        durable: bool = False,
        reserve: int = 2,
        handoff: str | None = None,
        director_replicas: int = 0,
        director_hold_ms: float = 0.0,
        director_takeover_ms: float = 1500.0,
        director_durable: bool = False,
    ):
        if groups < 1:
            raise ShardError("need at least one serving group")
        if spare_groups < 0:
            raise ShardError("spare_groups cannot be negative")
        if director_replicas < 0:
            raise ShardError("director_replicas cannot be negative")
        self.host = host
        self.seed = seed
        self.wire = wire
        self.verbose = verbose
        self.handoff = handoff
        self.director_replicas = director_replicas
        self.log_dir = Path(
            log_dir
            if log_dir is not None
            else tempfile.mkdtemp(prefix="repro-shards-")
        )
        self.log_dir.mkdir(parents=True, exist_ok=True)
        total = groups + spare_groups
        self.group_names = [f"g{i + 1}" for i in range(total)]
        self.serving = self.group_names[:groups]
        #: groups that start owning nothing; targets for future splits.
        self.spares = self.group_names[groups:]
        self.clusters: dict[str, LocalCluster] = {}
        #: live membership per group (tracked across add/remove_replica).
        self.members: dict[str, list[str]] = {}
        for index, name in enumerate(self.group_names):
            cluster = LocalCluster(
                replicas=replicas_per_group,
                host=host,
                app="kv",
                # Distinct seeds keep per-group election jitter decorrelated.
                seed=seed + index,
                wire=wire,
                log_dir=self.log_dir / name,
                python=python,
                verbose=verbose,
                durable=durable,
                reserve=reserve,
                handoff=handoff,
            )
            self.clusters[name] = cluster
            self.members[name] = list(cluster.initial)
        infos = tuple(
            GroupInfo(
                name,
                tuple(self.members[name]),
                dict(self.clusters[name].addresses),
            )
            for name in self.group_names
        )
        #: the version-1 map; becomes authoritative in the director.
        self.initial_map = ShardMap.initial(infos, serving=self.serving)
        # Every replica of a group boots owning exactly its group's
        # version-1 ranges (spares boot owning nothing).
        for name, cluster in self.clusters.items():
            ranges = self.initial_map.ranges_of(name)
            cluster.extra_args = [
                "--shard-group", name,
                "--shard-ranges", format_ranges(ranges),
                "--shard-version", str(self.initial_map.version),
            ]
        self.director: ShardDirector | ReplicatedShardDirector | None = None
        #: the metadir group's processes (director_replicas >= 1 only).
        self.director_cluster: LocalCluster | None = None
        if director_replicas >= 1:
            self.director_cluster = LocalCluster(
                replicas=director_replicas,
                host=host,
                app="metadir",
                seed=seed + 1000,
                wire=wire,
                log_dir=self.log_dir / "dir",
                python=python,
                verbose=verbose,
                durable=director_durable,
                reserve=1,
                extra_args=[
                    "--metadir-driver",
                    "--metadir-hold", str(director_hold_ms),
                    "--metadir-takeover", str(director_takeover_ms),
                ],
            )

    # -- lifecycle ----------------------------------------------------------

    def start(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Spawn every group's replicas, then the director."""
        give_up_at = time.monotonic() + timeout
        for cluster in self.clusters.values():
            cluster.start(wait=False)
        if self.director_cluster is not None:
            self.director_cluster.start(wait=False)
        if wait:
            for name, cluster in self.clusters.items():
                remaining = max(1.0, give_up_at - time.monotonic())
                cluster.wait_ready(cluster.initial, timeout=remaining)
        if self.director_cluster is None:
            self.director = ShardDirector(
                self.initial_map, host=self.host, wire_format=self.wire
            )
            return
        remaining = max(1.0, give_up_at - time.monotonic())
        self.director_cluster.wait_ready(
            self.director_cluster.initial, timeout=remaining
        )
        handle = ReplicatedShardDirector(
            self.director_addresses(),
            view=list(self.director_cluster.initial),
            wire_format=self.wire,
        )
        handle.init_map(self.initial_map)
        self.director = handle

    def shutdown(self) -> None:
        if self.director is not None:
            self.director.close()
            self.director = None
        if self.director_cluster is not None:
            self.director_cluster.shutdown()
        for cluster in self.clusters.values():
            cluster.shutdown()

    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- accessors ----------------------------------------------------------

    @property
    def shard_map(self) -> ShardMap:
        return self._director().shard_map

    def _director(self) -> "ShardDirector | ReplicatedShardDirector":
        if self.director is None:
            raise ShardError("cluster not started (no director)")
        return self.director

    def director_address(self) -> tuple[str, int]:
        if self.director_cluster is not None:
            return self.director_cluster.addresses[self.director_cluster.initial[0]]
        director = self._director()
        assert isinstance(director, ShardDirector)
        return director.address

    def director_addresses(self) -> dict[str, tuple[str, int]]:
        """Address book of every director endpoint clients can fetch from."""
        if self.director_cluster is not None:
            return {
                name: self.director_cluster.addresses[name]
                for name in self.director_cluster.initial
            }
        return {"director": self.director_address()}

    def kill_director(self, name: str) -> None:
        """SIGKILL one metadir replica (the failover tests' hammer)."""
        if self.director_cluster is None:
            raise ShardError("no replicated director to kill")
        self.director_cluster.kill(name)

    def client(self, name: str = "shard-cli", **kwargs) -> "ShardClient":
        from repro.shard.client import ShardClient

        kwargs.setdefault("wire_format", self.wire)
        return ShardClient(
            name,
            director=list(self.director_addresses().values()),
            **kwargs,
        )

    def group_client(self, group: str, name: str = "admin") -> LiveClient:
        """A plain LiveClient pinned to one group (admin/observe use)."""
        cluster = self.clusters[group]
        return LiveClient(
            f"{name}@{group}",
            cluster.addresses,
            view=self.members[group],
            wire_format=self.wire,
        )

    def group_endpoints(self) -> dict[str, dict[str, tuple[str, int]]]:
        """Per-group address books of currently-live members (metrics)."""
        return {
            name: {
                member: self.clusters[name].addresses[member]
                for member in self.members[name]
            }
            for name in self.group_names
        }

    # -- elastic operations -------------------------------------------------

    def split(
        self,
        group: str,
        at: int | None = None,
        target: str | None = None,
        deadline: float = 30.0,
    ) -> ShardMap:
        """Split ``group``'s widest range; see :meth:`ShardDirector.split`."""
        return self._director().split(
            group, at=at, target=target, deadline=deadline
        )

    def move(
        self, lo: int, hi: int, target: str, deadline: float = 30.0
    ) -> ShardMap:
        return self._director().move(lo, hi, target, deadline=deadline)

    def add_replica(
        self, group: str, name: str | None = None, timeout: float = 30.0
    ) -> str:
        """Grow one group by one replica (the paper's reconfiguration).

        Spawns a reserved standby process, reconfigures the group's
        membership to include it, and publishes the new membership as a
        new map version. Every other group is untouched.
        """
        cluster = self.clusters[group]
        current = self.members[group]
        if name is None:
            candidates = [
                n for n in cluster.reserved()
                if n not in current and n not in cluster.procs
            ]
            if not candidates:
                raise ShardError(f"group {group!r} has no reserved names left")
            name = candidates[0]
        cluster.spawn(name)
        cluster.wait_ready([name], timeout=timeout)
        with self.group_client(group, name="grow") as admin:
            admin.reconfigure(current + [name], deadline=timeout)
        self.members[group] = current + [name]
        return self._publish(group, name)

    def remove_replica(
        self, group: str, name: str | None = None, timeout: float = 30.0
    ) -> str:
        """Shrink one group by one replica (and stop its process)."""
        cluster = self.clusters[group]
        current = self.members[group]
        if len(current) <= 1:
            raise ShardError(f"group {group!r} cannot drop below one replica")
        if name is None:
            name = current[-1]
        if name not in current:
            raise ShardError(f"{name!r} is not a member of {group!r}")
        survivors = [n for n in current if n != name]
        with self.group_client(group, name="shrink") as admin:
            admin.reconfigure(survivors, deadline=timeout)
        self.members[group] = survivors
        cluster.kill(name)
        return self._publish(group, name)

    def _publish(self, group: str, changed: str) -> str:
        """Push the group's new membership into the authoritative map."""
        info = GroupInfo(
            group,
            tuple(self.members[group]),
            dict(self.clusters[group].addresses),
        )
        self._director().publish_group(info)
        return changed
