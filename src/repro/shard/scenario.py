"""Split-under-load: elastic scale-out verified with the Wing–Gong oracle.

The canonical sharded scenario (EXPERIMENTS T13): start a sharded
cluster with one spare group, drive a concurrent KV workload through
:class:`~repro.shard.client.ShardClient`\\ s while the director splits
the busiest group's range into the spare — a full drain-and-cutover
under fire — then feed every client-observed operation into the
linearizability checker. The verdict covers the cutover window: any op
that read stale data from a retired range, or wrote into one, would
produce a non-linearizable per-key history.

This mirrors :func:`repro.net.chaos.run_chaos_scenario` in shape (report
object with ``lines()`` / ``ok``) so the CLI and the live tests share
one entry point.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.net.chaos import HistoryRecorder
from repro.shard.cluster import ShardedCluster
from repro.shard.shardmap import ShardMap
from repro.verify.histories import History
from repro.verify.linearizability import (
    LinearizabilityResult,
    check_kv_linearizable,
)


@dataclass
class ShardScenarioReport:
    """Everything the split-under-load run observed, plus the verdict."""

    groups: int
    clients: int
    elapsed: float = 0.0
    version_before: int = 0
    version_after: int = 0
    moved: tuple[int, int, str] | None = None
    ops_total: int = 0
    ops_pending: int = 0
    spread_before: dict[str, int] = field(default_factory=dict)
    spread_after: dict[str, int] = field(default_factory=dict)
    linearizable: LinearizabilityResult | None = None
    history: History = field(default_factory=lambda: History([]))
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.errors
            and self.linearizable is not None
            and self.linearizable.ok
            and self.version_after > self.version_before
        )

    def lines(self) -> list[str]:
        out = [
            f"split-under-load: {self.groups} serving groups + 1 spare, "
            f"{self.clients} concurrent clients ({self.elapsed:.1f}s)",
            f"map: v{self.version_before} -> v{self.version_after}"
            + (
                f" (moved [{self.moved[0]}, {self.moved[1]}) "
                f"to {self.moved[2]})"
                if self.moved
                else " (NO MOVE)"
            ),
            f"keys per group before: {self.spread_before}",
            f"keys per group after:  {self.spread_after}",
            f"history: {self.ops_total - self.ops_pending} completed + "
            f"{self.ops_pending} pending operations across the cutover",
        ]
        if self.linearizable is not None:
            verdict = (
                "LINEARIZABLE"
                if self.linearizable.ok
                else f"NOT LINEARIZABLE (key {self.linearizable.failing_key!r})"
            )
            out.append(
                f"verdict: {verdict} ({self.linearizable.checked_ops} ops "
                f"over {self.linearizable.checked_keys} keys)"
            )
        for error in self.errors:
            out.append(f"  note: {error}")
        return out


def run_split_scenario(
    groups: int = 3,
    replicas_per_group: int = 3,
    clients: int = 2,
    keys: int = 24,
    seed: int = 42,
    wire: str | None = None,
    settle: float = 0.5,
    verbose: bool = False,
) -> ShardScenarioReport:
    """Run the split-under-load scenario and return its report."""
    report = ShardScenarioReport(groups=groups, clients=clients)
    started = time.monotonic()
    key_names = [f"key-{i:03d}" for i in range(keys)]
    with ShardedCluster(
        groups,
        replicas_per_group=replicas_per_group,
        spare_groups=1,
        seed=seed,
        wire=wire,
        verbose=verbose,
    ) as cluster:
        cluster.start()
        spare = cluster.spares[0]
        shard_map = cluster.shard_map
        report.version_before = shard_map.version
        report.spread_before = shard_map.spread(key_names)
        # The group owning the most keys is the one worth splitting.
        source = max(
            report.spread_before, key=lambda g: (report.spread_before[g], g)
        )

        recorders: list[HistoryRecorder] = []
        #: one timebase for every recorder — the merged history's
        #: real-time order is only meaningful on a shared clock.
        t0 = time.monotonic()
        # The preload is recorded too: without it the first observed get
        # would return a value the checker never saw written.
        with cluster.client("loader") as loader:
            preload = HistoryRecorder(loader, t0=t0)
            recorders.append(preload)
            for i, key in enumerate(key_names):
                preload.submit("set", (key, f"v0-{i}"))
        stop = threading.Event()
        failures: list[str] = []

        def worker(index: int) -> None:
            client = cluster.client(f"w{index}")
            recorder = HistoryRecorder(client, t0=t0)
            recorders.append(recorder)
            try:
                round_no = 0
                while not stop.is_set():
                    key = key_names[(round_no * clients + index) % keys]
                    if round_no % 3 == 2:
                        recorder.submit("get", (key,), size=32, deadline=10.0)
                    else:
                        recorder.submit(
                            "set", (key, f"w{index}-{round_no}"), deadline=10.0
                        )
                    round_no += 1
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        time.sleep(settle)  # load before the move
        try:
            new_map = cluster.split(source, target=spare)
            moved = new_map.ranges_of(spare)
            report.moved = (moved[0].lo, moved[0].hi, spare)
        except Exception as exc:  # noqa: BLE001 - verdict, not crash
            failures.append(f"split failed: {type(exc).__name__}: {exc}")
        time.sleep(settle)  # load after the move
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)

        final_map = cluster.shard_map
        report.version_after = final_map.version
        report.spread_after = final_map.spread(key_names)
        # Post-cutover read-back through a fresh client (fresh map): every
        # key must still be readable wherever it now lives.
        with cluster.client("checker") as checker:
            for key in key_names:
                try:
                    checker.submit("get", (key,), size=32, deadline=10.0)
                except Exception as exc:  # noqa: BLE001
                    failures.append(f"post-move read of {key!r}: {exc}")
                    break

        operations = [
            op for recorder in recorders for op in recorder.operations
        ]
        report.history = History(operations)
        report.ops_total = len(operations)
        report.ops_pending = len(report.history.pending)
        report.linearizable = check_kv_linearizable(report.history)
        report.errors.extend(failures)
    report.elapsed = time.monotonic() - started
    return report
