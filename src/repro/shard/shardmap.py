"""The shard map: a versioned key-range → group assignment.

Keys are mapped to **hash points** in a fixed space ``[0, HASH_SPACE)``
via CRC-32 (:func:`key_point`) — deterministic across processes, unlike
Python's salted ``hash()``. A :class:`ShardMap` partitions that space
into half-open :class:`KeyRange`\\ s, each owned by one group, and names
every group's replica address book so a client holding the map can route
without any central hop.

Maps are immutable values: every change (a :meth:`ShardMap.with_move`)
produces a new map with a strictly larger ``version``. Versions are what
make stale caches safe — a replica that rejects an op for a key it no
longer owns quotes the version of the move that took the range away, and
clients only ever adopt maps/hints with larger versions than their cache.

The map algebra here is pure (no I/O): the authoritative copy lives in
:class:`~repro.shard.director.ShardDirector`, cached copies in
:class:`~repro.shard.client.ShardClient`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable

from repro.errors import ReproError

#: number of hash points; 2^16 keeps range bounds readable in traces
#: while being far finer than any realistic group count.
HASH_SPACE = 1 << 16


class ShardError(ReproError):
    """Invalid shard map, assignment, or routing request."""


def key_point(key: str) -> int:
    """Deterministic hash point of ``key`` in ``[0, HASH_SPACE)``.

    CRC-32 rather than ``hash()``: Python string hashing is salted per
    process, and every replica, client, and director must agree on where
    a key lives.
    """
    return zlib.crc32(str(key).encode("utf-8")) % HASH_SPACE


@dataclass(frozen=True, slots=True)
class KeyRange:
    """A half-open range ``[lo, hi)`` of hash points."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo < self.hi <= HASH_SPACE):
            raise ShardError(f"invalid key range [{self.lo}, {self.hi})")

    def contains(self, point: int) -> bool:
        return self.lo <= point < self.hi

    def covers(self, other: "KeyRange") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    @property
    def width(self) -> int:
        return self.hi - self.lo

    @property
    def midpoint(self) -> int:
        return self.lo + self.width // 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo},{self.hi})"


@dataclass(frozen=True, slots=True)
class ShardAssignment:
    """One range → group edge of the map."""

    range: KeyRange
    group: str


@dataclass(frozen=True, slots=True)
class GroupInfo:
    """Everything a client needs to talk to one group.

    ``members`` are the group's *initial* epoch-0 members; the address
    book includes reserved joiner names too, so group-internal
    reconfigurations never make the group unreachable from a stale map
    (the per-group :class:`~repro.net.client.LiveClient` chases
    ``Redirect`` replies through the same book).
    """

    name: str
    members: tuple[str, ...]
    addresses: dict[str, tuple[str, int]]


@dataclass(frozen=True, slots=True)
class ShardMap:
    """A versioned, total assignment of the hash space to groups.

    ``assignments`` are sorted by range and cover ``[0, HASH_SPACE)``
    exactly; ``groups`` may include **spare** groups that currently own
    nothing (the targets of future splits). Construct with
    :meth:`initial`, evolve with :meth:`with_move`; both validate.
    """

    version: int
    assignments: tuple[ShardAssignment, ...]
    groups: tuple[GroupInfo, ...]

    # -- construction -------------------------------------------------------

    @classmethod
    def initial(
        cls,
        groups: Iterable[GroupInfo],
        serving: Iterable[str] | None = None,
        version: int = 1,
    ) -> "ShardMap":
        """An even partition of the hash space over ``serving`` groups.

        ``serving`` defaults to every group; name spare groups by passing
        a subset. Ranges differ by at most one point when the space does
        not divide evenly.
        """
        infos = tuple(groups)
        names = [g.name for g in infos]
        owners = list(serving) if serving is not None else list(names)
        if not owners:
            raise ShardError("need at least one serving group")
        for owner in owners:
            if owner not in names:
                raise ShardError(f"serving group {owner!r} has no GroupInfo")
        step, extra = divmod(HASH_SPACE, len(owners))
        assignments = []
        lo = 0
        for i, owner in enumerate(owners):
            hi = lo + step + (1 if i < extra else 0)
            assignments.append(ShardAssignment(KeyRange(lo, hi), owner))
            lo = hi
        shard_map = cls(version, tuple(assignments), infos)
        shard_map.validate()
        return shard_map

    def validate(self) -> None:
        """Raise :class:`ShardError` unless the map is a true partition."""
        if self.version < 0:
            raise ShardError(f"negative map version {self.version}")
        names = {g.name for g in self.groups}
        if len(names) != len(self.groups):
            raise ShardError("duplicate group names in shard map")
        if not self.assignments:
            raise ShardError("shard map assigns nothing")
        expected_lo = 0
        for assignment in self.assignments:
            if assignment.group not in names:
                raise ShardError(
                    f"assignment {assignment.range} names unknown group "
                    f"{assignment.group!r}"
                )
            if assignment.range.lo != expected_lo:
                raise ShardError(
                    f"gap or overlap at point {expected_lo}: next range is "
                    f"{assignment.range}"
                )
            expected_lo = assignment.range.hi
        if expected_lo != HASH_SPACE:
            raise ShardError(
                f"assignments cover [0, {expected_lo}), not the full space"
            )

    # -- routing ------------------------------------------------------------

    def assignment_at(self, point: int) -> ShardAssignment:
        """The assignment owning ``point`` (binary search)."""
        if not 0 <= point < HASH_SPACE:
            raise ShardError(f"hash point {point} outside the space")
        lo, hi = 0, len(self.assignments)
        while lo < hi:
            mid = (lo + hi) // 2
            assignment = self.assignments[mid]
            if point < assignment.range.lo:
                hi = mid
            elif point >= assignment.range.hi:
                lo = mid + 1
            else:
                return assignment
        raise ShardError(f"no assignment covers point {point}")  # pragma: no cover

    def group_for_point(self, point: int) -> str:
        return self.assignment_at(point).group

    def group_for_key(self, key: str) -> str:
        return self.group_for_point(key_point(key))

    def group_info(self, name: str) -> GroupInfo:
        for info in self.groups:
            if info.name == name:
                return info
        raise ShardError(f"unknown group {name!r}")

    def ranges_of(self, group: str) -> tuple[KeyRange, ...]:
        """Every range currently owned by ``group`` (may be empty)."""
        self.group_info(group)  # raises on unknown names
        return tuple(a.range for a in self.assignments if a.group == group)

    def serving_groups(self) -> tuple[str, ...]:
        """Groups owning at least one range, in range order."""
        seen: list[str] = []
        for assignment in self.assignments:
            if assignment.group not in seen:
                seen.append(assignment.group)
        return tuple(seen)

    # -- evolution ----------------------------------------------------------

    def with_move(
        self, lo: int, hi: int, target: str, version: int | None = None
    ) -> "ShardMap":
        """A new map with ``[lo, hi)`` reassigned to ``target``.

        The moved range must lie inside a single current assignment (a
        move never merges ranges from two owners in one step). Adjacent
        same-group ranges are coalesced afterwards, so repeated splits
        and moves cannot fragment the map without bound. The new version
        is ``version`` (which must be larger) or ``self.version + 1``.
        """
        moved = KeyRange(lo, hi)
        self.group_info(target)
        new_version = self.version + 1 if version is None else version
        if new_version <= self.version:
            raise ShardError(
                f"version must increase: {self.version} -> {new_version}"
            )
        source = self.assignment_at(lo)
        if not source.range.covers(moved):
            raise ShardError(
                f"range {moved} spans beyond the single assignment "
                f"{source.range} owned by {source.group!r}"
            )
        pieces: list[ShardAssignment] = []
        for assignment in self.assignments:
            if assignment is not source:
                pieces.append(assignment)
                continue
            if source.range.lo < moved.lo:
                pieces.append(
                    ShardAssignment(
                        KeyRange(source.range.lo, moved.lo), source.group
                    )
                )
            pieces.append(ShardAssignment(moved, target))
            if moved.hi < source.range.hi:
                pieces.append(
                    ShardAssignment(
                        KeyRange(moved.hi, source.range.hi), source.group
                    )
                )
        coalesced: list[ShardAssignment] = []
        for piece in pieces:
            last = coalesced[-1] if coalesced else None
            if (
                last is not None
                and last.group == piece.group
                and last.range.hi == piece.range.lo
            ):
                coalesced[-1] = ShardAssignment(
                    KeyRange(last.range.lo, piece.range.hi), piece.group
                )
            else:
                coalesced.append(piece)
        shard_map = ShardMap(new_version, tuple(coalesced), self.groups)
        shard_map.validate()
        return shard_map

    def with_group(
        self, info: GroupInfo, version: int | None = None
    ) -> "ShardMap":
        """A new map with ``info`` replacing that group's GroupInfo.

        Used after a group-internal reconfiguration (replica added or
        removed) to publish the group's new membership; assignments are
        untouched but the version still increases so caches converge.
        """
        new_version = self.version + 1 if version is None else version
        if new_version <= self.version:
            raise ShardError(
                f"version must increase: {self.version} -> {new_version}"
            )
        if not any(g.name == info.name for g in self.groups):
            raise ShardError(f"unknown group {info.name!r}")
        groups = tuple(
            info if g.name == info.name else g for g in self.groups
        )
        shard_map = ShardMap(new_version, self.assignments, groups)
        shard_map.validate()
        return shard_map

    def widest_range_of(self, group: str) -> KeyRange:
        """The widest range ``group`` owns (the natural split candidate)."""
        ranges = self.ranges_of(group)
        if not ranges:
            raise ShardError(f"group {group!r} owns no range to split")
        return max(ranges, key=lambda r: r.width)

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each serving group owns (routing census)."""
        counts: dict[str, int] = {info.name: 0 for info in self.groups}
        for key in keys:
            counts[self.group_for_key(key)] += 1
        return counts


def format_ranges(ranges: Iterable[tuple[int, int]] | Iterable[KeyRange]) -> str:
    """Render ranges as the ``lo-hi[,lo-hi...]`` CLI/serve argument."""
    parts = []
    for item in ranges:
        lo, hi = (item.lo, item.hi) if isinstance(item, KeyRange) else item
        parts.append(f"{lo}-{hi}")
    return ",".join(parts)


def parse_ranges(spec: str) -> tuple[tuple[int, int], ...]:
    """Parse the ``lo-hi[,lo-hi...]`` argument (empty = owns nothing)."""
    ranges: list[tuple[int, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            lo_text, hi_text = part.split("-", 1)
            lo, hi = int(lo_text), int(hi_text)
        except ValueError:
            raise ShardError(f"bad range {part!r} (want lo-hi)") from None
        KeyRange(lo, hi)  # bounds check
        ranges.append((lo, hi))
    return tuple(sorted(ranges))
