"""Sharded storm cells: control-plane failover and cross-plane races.

Two storm scenarios extend the :mod:`repro.net.storm` family onto the
sharded service — same seeded-plan discipline, same Wing–Gong verdict,
same report surface, so ``repro storm`` and ``repro bench storm`` treat
them as ordinary cells:

``director``
    The replicated control plane's headline failure: a ``split`` intent
    is committed, the driver executing it retires the range from the
    source group, and the director replica holding the claim is
    SIGKILLed *between the retire commit and the install submit* — the
    exact window where map and groups disagree. A surviving director
    replica must roll the move forward (deterministic per-step client
    identities make the replayed retire a dedup hit), after which a
    second admin operation proves the survivor is fully in charge. The
    kill is condition-triggered — fired the moment the intent's
    ``retired`` step commits — rather than scheduled by offset, because
    its whole point is landing inside a window whose absolute timing
    depends on load.

``shard``
    Cross-plane race: a per-group reconfiguration storm (grow the source
    group by one replica, then shrink it back) runs concurrently with a
    range move out of that same group. Membership publishes and the
    move's completion interleave in the director log; completion
    recomputes the move against the *committed* map, so the interleaving
    must never corrupt the chain.

Both cells gate on (a) Wing–Gong linearizability of the merged
client-observed data history and (b) linearity and gaplessness of the
map version chain the director archived — every chain entry's version
must be exactly its predecessor's plus one.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any

from repro.net.chaos import HistoryRecorder, collect_aligned_spans
from repro.net.storm import (
    ChaosReport,
    ReconfigStep,
    StormPlan,
    StormReport,
    availability_windows,
    handoff_latencies,
    storm_verdict,
)
from repro.shard.cluster import ShardedCluster
from repro.sim.failures import FailureSchedule
from repro.verify.histories import History

#: the sharded members of the storm family (see module docstring).
SHARD_STORM_SCENARIOS = ("shard", "director")

#: director cell: how long the claiming driver lingers between the
#: retire commit and the install submit, and how stale a claimed intent
#: must look before a surviving replica rolls it forward. The hold keeps
#: the kill window wide enough to hit deterministically; the takeover
#: bounds how long the survivor politely waits.
DIRECTOR_HOLD_MS = 900.0
DIRECTOR_TAKEOVER_MS = 600.0


def build_shard_storm_plan(
    scenario: str, *, replicas: int = 3, seed: int = 42, scale: float = 1.0
) -> StormPlan:
    """Deterministic plan for one sharded storm cell.

    Steps carry ``(operation, *operands)`` in the ``members`` tuple —
    admin operations against the shard map rather than membership lists,
    but the same seeded-offset discipline as the data-plane plans. The
    failure schedule is empty by construction: the director kill is
    condition-triggered (see module docstring) and therefore cannot be
    expressed as a wall-clock offset without racing the thing it aims at.
    """
    if scenario not in SHARD_STORM_SCENARIOS:
        raise ValueError(
            f"unknown sharded storm scenario {scenario!r}; "
            f"pick from {SHARD_STORM_SCENARIOS}"
        )
    rng = random.Random(seed)

    def jitter(offset: float) -> float:
        return round(offset * scale * rng.uniform(0.9, 1.1), 3)

    if scenario == "director":
        r1 = jitter(0.6)
        # The failover (hold + takeover + replayed cutover) dominates the
        # gap to the second step; the runner issues it as soon as both
        # the offset has passed and the first intent is archived.
        r2 = round(r1 + jitter(3.0), 3)
        steps = (
            ReconfigStep(r1, ("split", "g1", "g2")),
            ReconfigStep(r2, ("move-back", "g2", "g1")),
        )
    else:  # shard
        r_add = jitter(0.6)
        r_split = round(r_add + jitter(0.4), 3)
        r_remove = round(r_split + jitter(0.5), 3)
        steps = (
            ReconfigStep(r_add, ("add-replica", "g1")),
            ReconfigStep(r_split, ("split", "g1", "g2")),
            ReconfigStep(r_remove, ("remove-replica", "g1")),
        )
    return StormPlan(
        scenario=scenario,
        seed=seed,
        scale=scale,
        initial=("g1",),
        joiners=("g2",),
        steps=steps,
        schedule=FailureSchedule(),
        duration=round(steps[-1].offset + jitter(1.5), 3),
        contacts=("g1",),
    )


def check_chain_linear(chain: tuple[dict[str, Any], ...]) -> str | None:
    """None iff the archived map chain is linear with no gaps."""
    if not chain:
        return "director archived an empty map chain"
    versions = [entry.get("version") for entry in chain]
    base = versions[0]
    expected = list(range(base, base + len(versions)))
    if versions != expected:
        return f"map chain not linear/gapless: {versions}"
    return None


def _admin_entry(step: ReconfigStep) -> dict[str, Any]:
    return {
        "offset": step.offset,
        "members": list(step.members),
        "applied_at": None,
        "ok": False,
    }


def run_shard_storm_scenario(
    scenario: str = "director",
    *,
    seed: int = 42,
    handoff: str = "clean",
    replicas: int = 3,
    wire: str | None = None,
    log_dir: Any = None,
    keys: int = 12,
    op_interval: float = 0.015,
    request_timeout: float = 0.5,
    scale: float = 1.0,
    read_mode: str | None = None,
    durable: bool = False,
    verbose: bool = False,
) -> StormReport:
    """Run one sharded storm cell and return the usual storm report.

    ``handoff`` applies to the data groups (the director group always
    runs clean — its log is tiny and its correctness is the thing under
    test). ``read_mode`` is accepted for signature parity with the
    data-plane runner but not plumbed into the groups; a note is
    recorded when it is set so a misconfigured sweep is visible.
    """
    plan = build_shard_storm_plan(
        scenario, replicas=replicas, seed=seed, scale=scale
    )
    started = time.monotonic()
    notes: list[str] = []
    if read_mode is not None:
        notes.append(f"read_mode={read_mode!r} ignored by sharded cells")
    entries = [_admin_entry(step) for step in plan.steps]
    key_names = [f"k{i}" for i in range(keys)]
    hold = DIRECTOR_HOLD_MS if scenario == "director" else 0.0

    with ShardedCluster(
        1,
        replicas_per_group=replicas,
        spare_groups=1,
        seed=seed,
        wire=wire,
        log_dir=log_dir,
        verbose=verbose,
        durable=durable,
        handoff=handoff,
        director_replicas=3,
        director_hold_ms=hold,
        director_takeover_ms=DIRECTOR_TAKEOVER_MS,
    ) as cluster:
        cluster.start()
        t0 = time.monotonic()
        recorders: list[HistoryRecorder] = []
        with cluster.client("loader") as loader:
            preload = HistoryRecorder(loader, t0=t0)
            recorders.append(preload)
            for i, key in enumerate(key_names):
                preload.submit("set", (key, f"v0-{i}"), deadline=15.0)

        stop = threading.Event()

        def worker(index: int) -> None:
            client = cluster.client(f"w{index}")
            recorder = HistoryRecorder(client, t0=t0)
            recorders.append(recorder)
            rng = random.Random(seed * 997 + index)
            counter = 0
            try:
                while not stop.is_set():
                    key = key_names[rng.randrange(keys)]
                    if rng.random() < 0.7:
                        counter += 1
                        recorder.submit(
                            "set", (key, f"w{index}-{counter}"), deadline=10.0
                        )
                    else:
                        recorder.submit("get", (key,), size=32, deadline=10.0)
                    time.sleep(op_interval)
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(2)
        ]
        for thread in threads:
            thread.start()

        def wait_for(offset: float) -> None:
            delay = t0 + offset - time.monotonic()
            if delay > 0:
                time.sleep(delay)

        def finish(index: int, ok: bool, error: str | None = None) -> None:
            entries[index]["applied_at"] = round(time.monotonic() - t0, 4)
            entries[index]["ok"] = ok
            if error is not None:
                entries[index]["error"] = error
                notes.append(error)

        if scenario == "director":
            _run_director_steps(cluster, plan, entries, t0, wait_for,
                                finish, notes)
        else:
            _run_shard_steps(cluster, plan, entries, t0, wait_for, finish)

        time.sleep(0.5)  # load after the last admin op
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        workload_end = time.monotonic() - t0

        # Settled tail: every key readable wherever it now lives.
        with cluster.client("checker") as checker:
            tail = HistoryRecorder(checker, t0=t0)
            recorders.append(tail)
            for key in key_names:
                tail.submit("get", (key,), size=32, deadline=15.0)

        chain = cluster.director.history()
        chain_error = check_chain_linear(chain)
        if chain_error is not None:
            notes.append(chain_error)

        # Poll each sub-cluster with its *real* node names — the metrics
        # endpoint is derived from the name in the frame, so a prefixed
        # label would never be answered — then merge under prefixed keys
        # so the timeline distinguishes g1/n1 from dir/n1.
        counters: dict[str, dict[str, int]] = {}
        aligned: dict[str, dict[str, dict[str, float]]] = {}
        fetch_errors: list[str] = []
        subclusters = list(cluster.clusters.items())
        if cluster.director_cluster is not None:
            subclusters.append(("dir", cluster.director_cluster))
        for label, sub in subclusters:
            live = [n for n, p in sub.procs.items() if p.poll() is None]
            if not live:
                continue
            fetched, spans, errs = collect_aligned_spans(
                sub.addresses, live, wire, t0
            )
            for node, snap in fetched.items():
                counters[f"{label}/{node}"] = {
                    name: int(value)
                    for name, value in sorted(snap.snapshot.counters.items())
                    if name.startswith("smr.")
                }
            for node, node_spans in spans.items():
                aligned[f"{label}/{node}"] = node_spans
            fetch_errors.extend(f"{label}/{err}" for err in errs)
        log_path = str(cluster.log_dir)

    operations = [op for recorder in recorders for op in recorder.operations]
    history = History(operations)
    result, lin_ok = storm_verdict(history, None)
    admin_ok = all(entry["ok"] for entry in entries)
    ok = lin_ok and admin_ok and chain_error is None

    latency = handoff_latencies(aligned)
    if not latency.get("count"):
        # No group reconfigured (the director cell): report the admin
        # operations' own wall-clock widths instead — issue to archive,
        # failover included — in the same dict shape.
        widths = {
            f"step-{i}": round(entry["applied_at"] - entry["offset"], 4)
            for i, entry in enumerate(entries)
            if entry["applied_at"] is not None
        }
        values = list(widths.values())
        latency = {
            "per_epoch_s": widths,
            "count": len(values),
            "max_s": round(max(values), 4) if values else None,
            "mean_s": round(sum(values) / len(values), 4) if values else None,
        }

    chaos = ChaosReport(
        ok=ok,
        linearizable=result,
        injections=[],
        history=history,
        reconfigured=admin_ok,
        final_members=plan.final_members(),
        elapsed=time.monotonic() - started,
        seed=seed,
        log_dir=log_path,
        errors=notes + fetch_errors,
        spans=aligned,
    )
    return StormReport(
        plan=plan,
        handoff=handoff,
        read_mode=read_mode,
        chaos=chaos,
        reconfigs=entries,
        unavailability=availability_windows(
            operations, start=0.0, end=workload_end
        ),
        handoff_latency=latency,
        counters=counters,
    )


def _run_director_steps(
    cluster: ShardedCluster,
    plan: StormPlan,
    entries: list[dict[str, Any]],
    t0: float,
    wait_for,
    finish,
    notes: list[str],
) -> None:
    """Split with a SIGKILL inside the retire/install gap, then move back."""
    director = cluster.director
    wait_for(plan.steps[0].offset)
    try:
        intent = director.begin("split", {"group": "g1", "target": "g2"})
        iid = int(intent["id"])
        claimed = _kill_claimant_at_retire(cluster, director, iid, notes, t0)
        if claimed is None:
            notes.append("never observed the retired step; kill skipped")
        director.wait(iid, deadline=30.0)
        finish(0, True)
    except Exception as exc:  # noqa: BLE001 - verdict, not crash
        finish(0, False, f"director split failed: {type(exc).__name__}: {exc}")
        return
    wait_for(plan.steps[1].offset)
    try:
        moved = cluster.shard_map.ranges_of("g2")
        if not moved:
            raise RuntimeError("g2 owns nothing after the completed split")
        director.move(moved[0].lo, moved[0].hi, "g1", deadline=30.0)
        finish(1, True)
    except Exception as exc:  # noqa: BLE001
        finish(1, False, f"post-failover move failed: "
                         f"{type(exc).__name__}: {exc}")


def _kill_claimant_at_retire(
    cluster: ShardedCluster,
    director,
    iid: int,
    notes: list[str],
    t0: float,
    deadline: float = 15.0,
) -> str | None:
    """SIGKILL whichever director replica claimed the intent, the moment
    its ``retired`` step commits — the map and the source group now
    disagree, and only the intent record can reconcile them."""
    give_up_at = time.monotonic() + deadline
    while time.monotonic() < give_up_at:
        status = director.status(iid)
        if status.get("status") in ("done", "aborted"):
            return None  # too late to kill anyone mid-move
        if "retired" in tuple(status.get("steps") or ()):
            claimed = status.get("claimed_by")
            if claimed:
                cluster.kill_director(str(claimed))
                notes.append(
                    f"SIGKILL director {claimed} at "
                    f"{time.monotonic() - t0:.2f}s "
                    "(retire committed, install not yet submitted)"
                )
                return str(claimed)
        time.sleep(0.02)
    return None


def _run_shard_steps(
    cluster: ShardedCluster,
    plan: StormPlan,
    entries: list[dict[str, Any]],
    t0: float,
    wait_for,
    finish,
) -> None:
    """Membership churn on g1 racing a split out of g1."""
    added: list[str] = []

    def churn() -> None:
        wait_for(plan.steps[0].offset)
        try:
            added.append(cluster.add_replica("g1"))
            finish(0, True)
        except Exception as exc:  # noqa: BLE001
            finish(0, False, f"add_replica failed: "
                             f"{type(exc).__name__}: {exc}")
            return
        wait_for(plan.steps[2].offset)
        try:
            cluster.remove_replica("g1", added[0])
            finish(2, True)
        except Exception as exc:  # noqa: BLE001
            finish(2, False, f"remove_replica failed: "
                             f"{type(exc).__name__}: {exc}")

    churner = threading.Thread(target=churn, daemon=True)
    churner.start()
    wait_for(plan.steps[1].offset)
    try:
        cluster.split("g1", target="g2")
        finish(1, True)
    except Exception as exc:  # noqa: BLE001
        finish(1, False, f"split failed: {type(exc).__name__}: {exc}")
    churner.join(timeout=60.0)
    if entries[2]["applied_at"] is None:
        finish(2, False, "membership churn thread never finished")
