"""The smart client: cached shard map + per-group LiveClients.

:class:`ShardClient` is the sharded counterpart of
:class:`~repro.net.client.LiveClient`. It holds a cached
:class:`~repro.shard.shardmap.ShardMap`, routes each keyed command to
the owning group's ``LiveClient``, and repairs its cache from
:class:`~repro.shard.messages.WrongShard` reply values — so a map change
propagates to clients through the groups themselves, without a central
hop on the data path. The director is only consulted to bootstrap the
cache and as the fallback when a redirect carries no usable hint.

Retry discipline mirrors ``LiveClient``: one overall ``deadline`` per
call, every attempt's budget clamped to the
:data:`~repro.net.client.MIN_ATTEMPT_BUDGET` floor, and a **redirect
budget** so a stale ping-pong (A says B, B says A) fails crisply instead
of looping. Redirect hints are only ever adopted when their map version
is *newer* than the cache, which is what makes concurrent refreshes and
races against in-flight cutovers convergent: versions only move forward.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any, Callable, Iterable

from repro.core.client import ClientReply
from repro.net import codec
from repro.net.client import LiveClient, LiveClientError, MIN_ATTEMPT_BUDGET
from repro.shard.messages import ShardMapReply, ShardMapRequest, WrongShard
from repro.shard.shardmap import GroupInfo, ShardError, ShardMap, key_point
from repro.types import ClientId, CommandId, NodeId

#: pause between retries while a cutover is mid-flight (source retired,
#: target not yet installed, director not yet swapped).
REDIRECT_BACKOFF = 0.05

#: map-fetch retry backoff: base of the exponential ramp and its cap.
#: Same discipline as LiveClient's request loop — a director that is
#: briefly down (restarting, failing over) costs a few retries, not an
#: immediate error bubbled into a request that the cached map could
#: have served.
MAP_RETRY_BASE = 0.05
MAP_RETRY_CAP = 0.4


class ShardClientError(LiveClientError):
    """A sharded request could not be completed (deadline or redirect loop)."""


def fetch_shard_map(
    address: tuple[str, int],
    *,
    sender: str = "shard-cli",
    seq: int = 1,
    timeout: float = 2.0,
    wire_format: str | None = None,
    attempts: int = 3,
    rng: random.Random | None = None,
) -> ShardMap:
    """Fetch the authoritative map, retrying with jittered backoff.

    ``timeout`` bounds the whole call; each attempt gets an equal slice
    of it and failures back off exponentially (with jitter, so a fleet
    of clients re-fetching after a director restart does not stampede in
    lockstep).
    """
    rng = rng if rng is not None else random.Random()
    give_up_at = time.monotonic() + timeout
    per_attempt = max(0.1, timeout / max(1, attempts))
    last: Exception | None = None
    for attempt in range(max(1, attempts)):
        remaining = give_up_at - time.monotonic()
        if remaining <= 0:
            break
        try:
            return _fetch_map(
                address, sender=sender, seq=seq,
                timeout=min(per_attempt, remaining),
                wire_format=wire_format,
            )
        except ShardClientError as exc:
            last = exc
            pause = min(MAP_RETRY_CAP, MAP_RETRY_BASE * (2 ** attempt))
            pause *= 0.5 + rng.random()  # jitter in [0.5x, 1.5x)
            if time.monotonic() + pause >= give_up_at:
                break
            time.sleep(pause)
    raise ShardClientError(
        f"shard map fetch from {address} failed after retries: {last}"
    ) from last


def _fetch_map(
    address: tuple[str, int],
    *,
    sender: str = "shard-cli",
    seq: int = 1,
    timeout: float = 2.0,
    wire_format: str | None = None,
) -> ShardMap:
    """One raw-socket map fetch from one director endpoint (no retry)."""
    cid = CommandId(ClientId(sender), seq)
    fmt = codec.DEFAULT_WIRE_FORMAT if wire_format is None else wire_format
    try:
        with socket.create_connection(address, timeout=timeout) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.sendall(
                codec.encode_frame(
                    NodeId(sender), NodeId("shard-director"),
                    ShardMapRequest(cid), fmt,
                )
            )
            buffer = b""
            give_up_at = time.monotonic() + timeout
            while True:
                while len(buffer) >= 4:
                    length = codec.frame_length(buffer[:4])
                    if len(buffer) < 4 + length:
                        break
                    body = buffer[4 : 4 + length]
                    buffer = buffer[4 + length :]
                    _, _, payload = codec.decode_frame_body(body)
                    if isinstance(payload, ShardMapReply) and payload.cid == cid:
                        payload.shard_map.validate()
                        return payload.shard_map
                remaining = give_up_at - time.monotonic()
                if remaining <= 0:
                    raise ShardClientError(
                        f"no shard map from director {address} in {timeout}s"
                    )
                sock.settimeout(max(remaining, 0.01))
                chunk = sock.recv(65536)
                if not chunk:
                    raise ShardClientError(
                        "director closed the connection before replying"
                    )
                buffer += chunk
    except (OSError, codec.CodecError) as exc:
        raise ShardClientError(
            f"shard map fetch from {address} failed: {exc}"
        ) from exc


class ShardClient:
    """Routes keyed commands across groups through a cached shard map."""

    def __init__(
        self,
        name: str,
        *,
        director: tuple[str, int] | list[tuple[str, int]] | None = None,
        shard_map: ShardMap | None = None,
        request_timeout: float = 1.0,
        wire_format: str | None = None,
        max_redirects: int = 12,
        client_factory: Callable[[GroupInfo], Any] | None = None,
        seed: int | None = None,
    ):
        if shard_map is None and director is None:
            raise ShardError("need a director address or an initial shard map")
        self.name = str(name)
        #: recording identity (unique cids for history recorders); the
        #: wire identity is per-group ("<name>@<group>") so each group's
        #: dedup table sees one monotone sequence.
        self.client = ClientId(self.name)
        self.seq = 0
        #: one or more director endpoints. With a replicated director
        #: every metadir replica answers map lookups, so a fetch fails
        #: over across them (rotated so a dead replica costs one attempt,
        #: not the whole refresh).
        self.directors: list[tuple[str, int]] = (
            [] if director is None
            else [director] if isinstance(director, tuple)
            else list(director)
        )
        self.director = self.directors[0] if self.directors else None
        self._rng = random.Random(
            seed if seed is not None else hash(self.name) & 0xFFFFFFFF
        )
        self.request_timeout = request_timeout
        self.wire_format = wire_format
        self.max_redirects = max_redirects
        self._factory = client_factory or self._default_factory
        self._lock = threading.RLock()
        self._clients: dict[str, Any] = {}
        self._fetches = 0
        if shard_map is None:
            shard_map = self.refresh_map()
        else:
            shard_map.validate()
        with self._lock:
            if self._cached_map is None or shard_map.version > self._cached_map.version:
                self._cached_map = shard_map

    _cached_map: ShardMap | None = None

    def _default_factory(self, info: GroupInfo) -> LiveClient:
        return LiveClient(
            f"{self.name}@{info.name}",
            info.addresses,
            view=info.members,
            request_timeout=self.request_timeout,
            wire_format=self.wire_format,
        )

    # -- map cache ----------------------------------------------------------

    @property
    def shard_map(self) -> ShardMap:
        with self._lock:
            assert self._cached_map is not None
            return self._cached_map

    @property
    def map_version(self) -> int:
        return self.shard_map.version

    def refresh_map(self, timeout: float = 2.0) -> ShardMap:
        """Re-fetch from a director; adopt only if strictly newer.

        Safe to call from several threads at once: each fetch happens
        outside the lock, and adoption compares versions under it — a
        slow fetch returning an older map can never clobber a newer one.
        Endpoints are tried in rotation with jittered backoff between
        full rounds, so one dead director replica degrades a refresh to
        a failover, not a failure.
        """
        if not self.directors:
            return self.shard_map
        with self._lock:
            self._fetches += 1
            seq = self._fetches
            # Rotate the contact order per refresh so a permanently-dead
            # first endpoint is not re-probed first by every caller.
            offset = seq % len(self.directors)
            endpoints = self.directors[offset:] + self.directors[:offset]
        give_up_at = time.monotonic() + timeout
        last: Exception | None = None
        round_no = 0
        while True:
            for address in endpoints:
                remaining = give_up_at - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    fetched = _fetch_map(
                        address, sender=f"{self.name}-map", seq=seq,
                        timeout=max(0.1, min(remaining, timeout / 2)),
                        wire_format=self.wire_format,
                    )
                except ShardClientError as exc:
                    last = exc
                    continue
                return self._adopt(fetched)
            pause = min(MAP_RETRY_CAP, MAP_RETRY_BASE * (2 ** round_no))
            pause *= 0.5 + self._rng.random()
            round_no += 1
            if time.monotonic() + pause >= give_up_at:
                break
            time.sleep(pause)
        raise ShardClientError(
            f"no director endpoint answered in {timeout}s "
            f"(tried {len(endpoints)}): {last}"
        ) from last

    def _adopt(self, new_map: ShardMap) -> ShardMap:
        with self._lock:
            if (
                self._cached_map is None
                or new_map.version > self._cached_map.version
            ):
                self._cached_map = new_map
            return self._cached_map

    def _apply_hint(self, hint: WrongShard) -> bool:
        """Patch the cached map from a redirect hint; True if it advanced."""
        with self._lock:
            current = self._cached_map
            assert current is not None
            if not hint.has_hint or hint.version <= current.version:
                return False
            try:
                patched = current.with_move(
                    hint.lo, hint.hi, hint.target, version=hint.version
                )
            except ShardError:
                # The hinted range no longer lines up with our (older)
                # assignment boundaries; a full refresh is required.
                return False
            self._cached_map = patched
            return True

    # -- routing ------------------------------------------------------------

    def route(self, key: str) -> tuple[str, int]:
        """The (group, hash point) the cached map routes ``key`` to."""
        point = key_point(key)
        return self.shard_map.group_for_point(point), point

    def _group_client(self, group: str) -> Any:
        with self._lock:
            client = self._clients.get(group)
            if client is None:
                client = self._factory(self.shard_map.group_info(group))
                self._clients[group] = client
            return client

    # -- requests -----------------------------------------------------------

    def submit(
        self,
        op: str,
        args: tuple[Any, ...] = (),
        size: int = 64,
        deadline: float = 15.0,
    ) -> ClientReply:
        """Execute one keyed command on whichever group owns its key.

        Follows WrongShard redirects up to ``max_redirects`` times within
        ``deadline``; hints that do not advance the cached map fall back
        to a director refresh, then a short backoff (an in-flight
        cutover resolves in a couple of commits).
        """
        if not args:
            raise ShardError(f"operation {op!r} has no routing key")
        with self._lock:
            self.seq += 1
        key = str(args[0])
        give_up_at = time.monotonic() + deadline
        redirects = 0
        last = "no attempt made"
        while True:
            group, _ = self.route(key)
            budget = max(MIN_ATTEMPT_BUDGET, give_up_at - time.monotonic())
            reply = self._group_client(group).submit(
                op, args, size=size, deadline=budget
            )
            value = reply.value
            if not isinstance(value, WrongShard):
                return reply
            redirects += 1
            last = (
                f"{group} does not own {key!r} "
                f"(map v{value.version}, hint {value.target or 'none'})"
            )
            if redirects > self.max_redirects:
                raise ShardClientError(
                    f"redirect budget exhausted after {redirects - 1} "
                    f"redirects for {op} {key!r}: {last}"
                )
            if time.monotonic() >= give_up_at:
                raise ShardClientError(
                    f"{op} {key!r} not placed in {deadline}s: {last}"
                )
            if self._apply_hint(value):
                continue
            before = self.map_version
            try:
                self.refresh_map()
            except ShardClientError:
                pass  # director unreachable; hints must carry us
            if self.map_version == before:
                # Mid-cutover: neither the hint nor the director moved
                # us forward yet. Give the install a moment to land.
                time.sleep(REDIRECT_BACKOFF)

    def scan(self, prefix: str, deadline: float = 15.0) -> tuple[str, ...]:
        """Fan a ``scan`` out to every serving group and merge the keys."""
        give_up_at = time.monotonic() + deadline
        merged: set[str] = set()
        for group in self.shard_map.serving_groups():
            budget = max(MIN_ATTEMPT_BUDGET, give_up_at - time.monotonic())
            reply = self._group_client(group).submit(
                "scan", (prefix,), size=32, deadline=budget
            )
            if isinstance(reply.value, (tuple, list)):
                merged.update(reply.value)
        return tuple(sorted(merged))

    def submit_pipelined(
        self,
        ops: list[tuple[str, tuple[Any, ...], int]],
        window: int = 32,
        deadline: float = 60.0,
    ) -> list[float]:
        """Partition ``ops`` by owning group and pipeline each partition.

        One thread per group drives that group's
        :meth:`LiveClient.submit_pipelined`, so N groups commit in
        parallel — the aggregate-throughput path the shard bench
        measures. Returns per-op latencies in submission order. Assumes
        a stable map for the batch (redirect values are not inspected on
        this path); use :meth:`submit` when a move may be in flight.
        """
        shard_map = self.shard_map
        by_group: dict[str, list[int]] = {}
        for index, (op, args, _size) in enumerate(ops):
            if not args:
                raise ShardError(f"operation {op!r} has no routing key")
            by_group.setdefault(
                shard_map.group_for_key(str(args[0])), []
            ).append(index)
        latencies = [0.0] * len(ops)
        failures: list[str] = []

        def drive(group: str, indexes: list[int]) -> None:
            client = self._group_client(group)
            try:
                result = client.submit_pipelined(
                    [ops[i] for i in indexes], window=window, deadline=deadline
                )
            except LiveClientError as exc:
                failures.append(f"{group}: {exc}")
                return
            for i, latency in zip(indexes, result):
                latencies[i] = latency

        threads = [
            threading.Thread(target=drive, args=item, daemon=True)
            for item in by_group.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=deadline + 5.0)
        if failures:
            raise ShardClientError(
                "pipelined groups failed: " + "; ".join(sorted(failures))
            )
        return latencies

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            clients, self._clients = dict(self._clients), {}
        for client in clients.values():
            close = getattr(client, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ShardClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
