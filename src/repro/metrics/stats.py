"""Statistics primitives: percentiles, summaries, time-binned series.

All times are simulated seconds internally; summaries expose milliseconds
because that is what the tables print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.types import Time


def percentile(samples: list[float], p: float) -> float:
    """Nearest-rank percentile; ``p`` in [0, 100]."""
    if not samples:
        raise ConfigurationError("percentile of an empty sample set")
    if not 0.0 <= p <= 100.0:
        raise ConfigurationError(f"percentile {p} out of range")
    ordered = sorted(samples)
    if p == 0.0:
        return ordered[0]
    # Nearest-rank definition: the ceil(p/100 * n)-th smallest sample.
    rank = math.ceil(p / 100.0 * len(ordered)) - 1
    return ordered[min(max(rank, 0), len(ordered) - 1)]


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Latency distribution in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def row(self) -> list[str]:
        return [
            str(self.count),
            f"{self.mean_ms:.2f}",
            f"{self.p50_ms:.2f}",
            f"{self.p95_ms:.2f}",
            f"{self.p99_ms:.2f}",
            f"{self.max_ms:.2f}",
        ]


def summarize_latencies(latencies_s: list[float]) -> LatencySummary:
    """Summarize a list of latencies given in seconds."""
    if not latencies_s:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    to_ms = [latency * 1000.0 for latency in latencies_s]
    return LatencySummary(
        count=len(to_ms),
        mean_ms=sum(to_ms) / len(to_ms),
        p50_ms=percentile(to_ms, 50),
        p95_ms=percentile(to_ms, 95),
        p99_ms=percentile(to_ms, 99),
        max_ms=max(to_ms),
    )


@dataclass(frozen=True, slots=True)
class ThroughputSummary:
    """Committed-commands-per-second over one measured interval."""

    ops: int
    elapsed_s: float
    ops_per_s: float

    def row(self) -> list[str]:
        return [str(self.ops), f"{self.elapsed_s:.2f}", f"{self.ops_per_s:.0f}"]


def summarize_throughput(ops: int, elapsed_s: float) -> ThroughputSummary:
    """Throughput summary for ``ops`` commands over ``elapsed_s`` seconds."""
    return ThroughputSummary(
        ops=ops,
        elapsed_s=elapsed_s,
        ops_per_s=ops / elapsed_s if elapsed_s > 0 else 0.0,
    )


def longest_gap(event_times: list[Time], start: Time, end: Time) -> float:
    """Longest interval inside [start, end] with no events.

    This is the *unavailability window* metric: for committed-command
    timestamps it measures how long the service went silent (e.g., through
    a reconfiguration or a failover).
    """
    if end <= start:
        raise ConfigurationError("longest_gap needs start < end")
    inside = sorted(t for t in event_times if start <= t <= end)
    if not inside:
        return end - start
    gap = inside[0] - start
    for a, b in zip(inside, inside[1:]):
        gap = max(gap, b - a)
    gap = max(gap, end - inside[-1])
    return gap


class Timeline:
    """Events bucketed into fixed-width time bins (throughput series)."""

    def __init__(self, bin_width: float):
        if bin_width <= 0:
            raise ConfigurationError("bin width must be positive")
        self.bin_width = bin_width
        self._bins: dict[int, int] = {}

    def record(self, time: Time, count: int = 1) -> None:
        self._bins[int(time / self.bin_width)] = (
            self._bins.get(int(time / self.bin_width), 0) + count
        )

    def series(self, start: Time, end: Time) -> list[tuple[float, float]]:
        """(bin start time, events per second) covering [start, end]."""
        first = int(start / self.bin_width)
        last = int(end / self.bin_width)
        return [
            (b * self.bin_width, self._bins.get(b, 0) / self.bin_width)
            for b in range(first, last + 1)
        ]

    def total(self) -> int:
        return sum(self._bins.values())
