"""Measurement collectors wired into clients and replicas.

:class:`CompletionCollector` hooks client ``on_complete`` callbacks — the
service-level signal used for throughput/latency in every experiment.
:class:`CommitCollector` hooks a replica's commit listener — the
replica-level signal used for ordering-vs-execution comparisons (it can
see speculative commits the client has not been told about yet).
"""

from __future__ import annotations

from typing import Any

from repro.core.client import OpRecord
from repro.metrics.stats import LatencySummary, Timeline, longest_gap, summarize_latencies
from repro.types import EpochId, Time


class CompletionCollector:
    """Aggregates client-side operation completions."""

    def __init__(self, bin_width: float = 0.05):
        self.timeline = Timeline(bin_width)
        self.latencies: list[float] = []
        self.completion_times: list[Time] = []
        self.retries = 0

    def on_complete(self, record: OpRecord) -> None:
        latency = record.returned_at - record.invoked_at
        self.latencies.append(latency)
        self.completion_times.append(record.returned_at)
        self.retries += record.retries
        self.timeline.record(record.returned_at)

    @property
    def count(self) -> int:
        return len(self.latencies)

    def latency_summary(self) -> LatencySummary:
        return summarize_latencies(self.latencies)

    def throughput(self, start: Time, end: Time) -> float:
        inside = [t for t in self.completion_times if start <= t <= end]
        duration = end - start
        return len(inside) / duration if duration > 0 else 0.0

    def unavailability(self, start: Time, end: Time) -> float:
        return longest_gap(self.completion_times, start, end)

    def latencies_between(self, start: Time, end: Time) -> list[float]:
        return [
            latency
            for latency, t in zip(self.latencies, self.completion_times)
            if start <= t <= end
        ]


class CommitCollector:
    """Aggregates replica-side commits (execution of the virtual log)."""

    def __init__(self, bin_width: float = 0.05):
        self.timeline = Timeline(bin_width)
        self.commit_times: list[Time] = []
        self.epochs: list[EpochId] = []
        self.count = 0

    def listener(
        self, time: Time, payload: Any, epoch: EpochId, vindex: int, value: Any
    ) -> None:
        self.count += 1
        self.commit_times.append(time)
        self.epochs.append(epoch)
        self.timeline.record(time)

    def unavailability(self, start: Time, end: Time) -> float:
        return longest_gap(self.commit_times, start, end)

    def first_commit_in_epoch(self, epoch: EpochId) -> Time | None:
        for t, e in zip(self.commit_times, self.epochs):
            if e == epoch:
                return t
        return None
