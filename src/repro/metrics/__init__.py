"""Measurement: latency distributions, throughput timelines, gaps, traffic.

The harness records client-observed completions (the honest service-level
signal) and, optionally, replica-side commits. Reporting helpers render the
paper-style tables and text "figures" (series) the benchmark suite prints.
"""

from typing import TYPE_CHECKING

from repro.metrics.registry import (
    RECONFIG_PHASES,
    SPAN_RECONFIG,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanEvent,
    metrics_of,
    reconfig_span_complete,
    span_width,
)
from repro.metrics.stats import (
    LatencySummary,
    ThroughputSummary,
    Timeline,
    longest_gap,
    percentile,
    summarize_latencies,
    summarize_throughput,
)
from repro.metrics.report import Series, Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.collectors import CommitCollector, CompletionCollector

# The collectors depend on repro.core.client, which (via the sim package)
# depends on the registry above — importing them eagerly here would close
# an import cycle. PEP 562 lazy re-export keeps the public surface intact.
_LAZY = {"CommitCollector", "CompletionCollector"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.metrics import collectors

        return getattr(collectors, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CommitCollector",
    "CompletionCollector",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencySummary",
    "MetricsRegistry",
    "RECONFIG_PHASES",
    "SPAN_RECONFIG",
    "Series",
    "SpanEvent",
    "Table",
    "ThroughputSummary",
    "Timeline",
    "longest_gap",
    "metrics_of",
    "percentile",
    "reconfig_span_complete",
    "span_width",
    "summarize_latencies",
    "summarize_throughput",
]
