"""Measurement: latency distributions, throughput timelines, gaps, traffic.

The harness records client-observed completions (the honest service-level
signal) and, optionally, replica-side commits. Reporting helpers render the
paper-style tables and text "figures" (series) the benchmark suite prints.
"""

from repro.metrics.collectors import CompletionCollector, CommitCollector
from repro.metrics.stats import (
    LatencySummary,
    ThroughputSummary,
    Timeline,
    longest_gap,
    percentile,
    summarize_latencies,
    summarize_throughput,
)
from repro.metrics.report import Series, Table

__all__ = [
    "CommitCollector",
    "CompletionCollector",
    "LatencySummary",
    "Series",
    "Table",
    "ThroughputSummary",
    "Timeline",
    "longest_gap",
    "percentile",
    "summarize_latencies",
    "summarize_throughput",
]
