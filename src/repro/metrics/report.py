"""Text rendering for experiment output: tables and series ("figures").

Benchmarks print their results with these helpers so every experiment's
output has the same shape as a paper table or figure: a caption, aligned
columns, and for series an ASCII bar chart that makes throughput dips
visible in a terminal.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class Table:
    """A paper-style results table rendered as aligned text."""

    def __init__(self, title: str, headers: list[str]):
        self.title = title
        self.headers = headers
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        row = [str(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: list[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        rule = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} ==", fmt(self.headers), rule]
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console output
        print()
        print(self.render())


class Series:
    """A labelled (x, y) series rendered as an ASCII bar chart."""

    def __init__(self, title: str, x_label: str, y_label: str, width: int = 50):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.points: list[tuple[float, float, str]] = []

    def add(self, x: float, y: float, annotation: str = "") -> None:
        self.points.append((x, y, annotation))

    def render(self) -> str:
        lines = [f"== {self.title} ==", f"{self.x_label:>12} | {self.y_label}"]
        if not self.points:
            return "\n".join(lines + ["(no data)"])
        peak = max(y for _, y, _ in self.points) or 1.0
        for x, y, annotation in self.points:
            bar = "#" * int(round(self.width * y / peak))
            suffix = f"  <- {annotation}" if annotation else ""
            lines.append(f"{x:12.3f} | {bar:<{self.width}} {y:10.1f}{suffix}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console output
        print()
        print(self.render())
