"""Unified observability: counters, gauges, histograms, and trace spans.

One :class:`MetricsRegistry` lives on each runtime (the discrete-event
:class:`repro.sim.runner.Simulator` and the wall-clock
:class:`repro.net.runtime.LiveRuntime` both create one at construction),
so the *same* instrumentation in the replica, the consensus engine and
the transport feeds both backends. Protocol code reaches the registry
through :func:`metrics_of`, which tolerates runtimes that predate it.

Three instrument kinds, all cheap enough for the commit path:

* :class:`Counter` — a monotonically increasing integer (``inc``);
* :class:`Gauge` — a point-in-time value (``set``), optionally filled
  lazily at snapshot time via :meth:`MetricsRegistry.on_snapshot`;
* :class:`Histogram` — a bounded reservoir holding the newest
  ``capacity`` samples; summaries reuse the nearest-rank
  :func:`repro.metrics.stats.percentile` so live tables and simulated
  tables agree on their definition of p99.

On top of the scalar instruments, the registry records **span events**:
timestamped ``(kind, span id, phase)`` triples assembled into spans. The
one span kind the protocol emits today is the reconfiguration seam
(:data:`SPAN_RECONFIG`): ``decided`` (the ReconfigCommand entered the
effective log) → ``cut`` (the epoch sealed) → ``transfer`` (the boundary
state became available to the new epoch) → ``first-commit`` (the new
instance executed its first entry). A span carrying all four phases is
*complete* and its ``first-commit - decided`` width is the hand-off
latency the paper sells.

:meth:`MetricsRegistry.snapshot` renders everything into plain
containers (str/int/float/dict/tuple) so the result can cross the wire
unchanged inside a :class:`repro.net.observe.MetricsSnapshot`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.metrics.stats import percentile
from repro.types import Time

#: span kind for the reconfiguration seam (epoch hand-off).
SPAN_RECONFIG = "reconfig"

#: span kind for durable checkpoints (begin → written → compacted).
SPAN_CHECKPOINT = "checkpoint"

#: span kind for boot-time crash recovery (begin → replayed → rejoined).
SPAN_RECOVERY = "recovery"

#: phases of a reconfiguration span, in causal order. A span is complete
#: when every phase has been recorded.
RECONFIG_PHASES = ("decided", "cut", "transfer", "first-commit")

#: phases that close a reconfiguration span. ``first-commit`` closes it
#: normally; ``aborted`` closes a span the replica knows it will never
#: finish (e.g. the execution frontier jumped over the epoch, so its
#: first local commit cannot happen). A span carrying neither is *open*
#: — in flight if the hand-off is live, dangling if it never ends.
RECONFIG_TERMINAL_PHASES = ("first-commit", "aborted")


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Bounded reservoir of the newest ``capacity`` samples.

    The reservoir is a ring: once full, each new sample overwrites the
    oldest — a sliding window, which is what a live ``repro top`` poll
    wants to see (recent behaviour, not the whole run's history).
    ``count`` keeps the all-time total so the window and the lifetime
    volume are both visible.
    """

    __slots__ = ("name", "capacity", "count", "total", "peak", "_reservoir", "_next")

    def __init__(self, name: str, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError(f"histogram capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.peak = 0.0
        self._reservoir: list[float] = []
        self._next = 0

    def record(self, sample: float) -> None:
        sample = float(sample)
        self.count += 1
        self.total += sample
        if self.count == 1 or sample > self.peak:
            self.peak = sample
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(sample)
        else:
            self._reservoir[self._next] = sample
            self._next = (self._next + 1) % self.capacity

    @property
    def reservoir(self) -> list[float]:
        """The retained samples (at most ``capacity``; arbitrary order)."""
        return list(self._reservoir)

    def summary(self) -> dict[str, float]:
        """Percentile summary over the reservoir; zeros when empty.

        Mirrors :func:`repro.metrics.stats.summarize_latencies`'s empty
        behaviour (a zero summary) rather than :func:`percentile`'s
        (raise): a freshly started replica must answer ``#metrics``.
        """
        if not self._reservoir:
            return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        window = self._reservoir
        return {
            "count": float(self.count),
            "mean": sum(window) / len(window),
            "p50": percentile(window, 50),
            "p95": percentile(window, 95),
            "p99": percentile(window, 99),
            "max": self.peak,
        }


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """One timestamped phase of one span."""

    kind: str
    span_id: str
    phase: str
    at: Time


class MetricsRegistry:
    """Shared instrument store for one runtime (sim or live)."""

    def __init__(self, histogram_capacity: int = 1024, event_capacity: int = 4096):
        self.histogram_capacity = histogram_capacity
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: assembled spans: (kind, id) -> {phase: time of first occurrence}.
        self._spans: dict[tuple[str, str], dict[str, Time]] = {}
        #: raw event stream, newest-last, bounded.
        self.events: deque[SpanEvent] = deque(maxlen=event_capacity)
        self._snapshot_hooks: list[Callable[["MetricsRegistry"], None]] = []

    # -- instruments --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, capacity: int | None = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, capacity or self.histogram_capacity
            )
        return instrument

    # -- spans --------------------------------------------------------------

    def span_event(self, kind: str, span_id: Any, phase: str, at: Time) -> None:
        """Record one phase of a span; the first timestamp per phase wins.

        First-wins matters: ``first-commit`` fires on every commit in the
        new epoch, and retransmitted boundary snapshots could re-mark
        ``transfer`` — the span must keep the earliest occurrence.
        """
        key = (kind, str(span_id))
        phases = self._spans.setdefault(key, {})
        if phase in phases:
            return
        phases[phase] = at
        self.events.append(SpanEvent(kind, str(span_id), phase, at))

    def spans(self, kind: str | None = None) -> dict[str, dict[str, Time]]:
        """Assembled spans as ``"kind/id" -> {phase: time}`` (copies)."""
        return {
            f"{k}/{span_id}": dict(phases)
            for (k, span_id), phases in self._spans.items()
            if kind is None or k == kind
        }

    def open_spans(
        self,
        kind: str,
        terminal: tuple[str, ...] = RECONFIG_TERMINAL_PHASES,
    ) -> dict[str, dict[str, Time]]:
        """Spans of ``kind`` with no terminal phase yet (copies).

        An entry here is either a hand-off still in flight or — if it
        stays here forever — a dangling span the emitter forgot to close.
        """
        return {
            span_id: dict(phases)
            for (k, span_id), phases in self._spans.items()
            if k == kind and not any(phase in phases for phase in terminal)
        }

    def abandon_span(
        self,
        kind: str,
        span_id: Any,
        at: Time,
        terminal: tuple[str, ...] = RECONFIG_TERMINAL_PHASES,
    ) -> bool:
        """Close an open span with an ``aborted`` phase.

        Only touches spans that exist and are still open: a span that
        never started is not invented, and one that already reached a
        terminal phase is left alone (so an abort racing the normal
        completion cannot relabel a finished hand-off). Returns whether
        the span was marked.
        """
        phases = self._spans.get((kind, str(span_id)))
        if phases is None or any(phase in phases for phase in terminal):
            return False
        self.span_event(kind, span_id, "aborted", at)
        return True

    # -- snapshots ----------------------------------------------------------

    def on_snapshot(self, hook: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run at snapshot time (lazy gauges)."""
        self._snapshot_hooks.append(hook)

    def snapshot(self) -> dict[str, Any]:
        """Everything, as plain wire-encodable containers."""
        for hook in self._snapshot_hooks:
            hook(self)
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
            "spans": self.spans(),
        }


def metrics_of(runtime: Any) -> MetricsRegistry:
    """The runtime's registry, installing one if its host predates this.

    Both shipped runtimes create ``self.metrics`` in their constructor;
    the lazy path keeps hand-rolled test runtimes working unchanged.
    """
    registry = getattr(runtime, "metrics", None)
    if not isinstance(registry, MetricsRegistry):
        registry = MetricsRegistry()
        try:
            runtime.metrics = registry
        except (AttributeError, TypeError):  # pragma: no cover - frozen host
            pass
    return registry


def reconfig_span_complete(phases: dict[str, Time]) -> bool:
    """True when a reconfiguration span carries every phase."""
    return all(phase in phases for phase in RECONFIG_PHASES)


def reconfig_span_closed(phases: dict[str, Time]) -> bool:
    """True when a reconfiguration span reached a terminal phase."""
    return any(phase in phases for phase in RECONFIG_TERMINAL_PHASES)


def span_width(phases: dict[str, Time]) -> float | None:
    """``first-commit - decided`` of a complete span (hand-off latency)."""
    if not reconfig_span_complete(phases):
        return None
    return phases["first-commit"] - phases["decided"]
