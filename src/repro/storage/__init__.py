"""Durable replica state: write-ahead log, checkpoints, crash recovery.

The paper's composition assumes each static SMR instance keeps its
promises across restarts. This package supplies that guarantee for the
live runtime: a CRC-framed write-ahead log records acceptor state
(promises, accepts), decided entries and epoch transitions *before* the
corresponding protocol message leaves the process, and periodic
state-machine checkpoints bound replay work and let the WAL be compacted.

Layering:

* :mod:`repro.storage.wal` — byte-level record framing and torn-tail
  truncation (pure functions plus a thin file writer);
* :mod:`repro.storage.records` — the codec-registered record dataclasses;
* :mod:`repro.storage.store` — :class:`ReplicaStore`, the per-replica
  directory of WAL segments + checkpoints, recovery folding, and the
  per-instance durability handles engines write through.
"""

from repro.storage.records import (
    CheckpointRecord,
    WalAccept,
    WalDecide,
    WalDirtyOverlap,
    WalEpochOpen,
    WalPromise,
)
from repro.storage.store import (
    NULL_DURABILITY,
    InstanceDurability,
    InstanceState,
    NullDurability,
    RecoveredState,
    ReplicaStore,
)
from repro.storage.wal import WalWriter, frame_record, read_wal_bytes

__all__ = [
    "CheckpointRecord",
    "WalAccept",
    "WalDecide",
    "WalDirtyOverlap",
    "WalEpochOpen",
    "WalPromise",
    "InstanceDurability",
    "InstanceState",
    "NullDurability",
    "NULL_DURABILITY",
    "RecoveredState",
    "ReplicaStore",
    "WalWriter",
    "frame_record",
    "read_wal_bytes",
]
