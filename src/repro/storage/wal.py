"""CRC-framed write-ahead log: byte layout, torn-tail scan, file writer.

Frame layout, repeated back to back::

    [u32 payload length][u32 crc32(payload)][payload bytes]

The payload is one codec-encoded record (binary wire format). Recovery
tolerates torn tail writes — the one corruption mode a crashed-but-honest
process can produce — by scanning frames until the first one whose length
prefix overruns the file, whose CRC mismatches, or whose payload fails to
decode, and truncating there. Everything before the tear is intact by
construction (frames are appended in order and each is flushed whole).

The framing functions are pure (bytes in, records out) so the property
tests can exercise every possible torn-write prefix without touching a
filesystem; :class:`WalWriter` and :func:`read_wal_file` are the thin
file-backed layer on top.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Any, Callable

from repro.net import codec

_HEADER = struct.Struct("!II")

#: refuse records larger than this (a corrupt length prefix must not make
#: the reader attempt a multi-gigabyte allocation).
MAX_RECORD_BYTES = 32 * 1024 * 1024


def frame_record(payload: bytes) -> bytes:
    """Wrap one encoded record payload in a length+CRC frame."""
    if len(payload) > MAX_RECORD_BYTES:
        raise ValueError(f"WAL record of {len(payload)} bytes exceeds the frame cap")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_frames(data: bytes) -> tuple[list[bytes], int]:
    """Split ``data`` into intact frame payloads.

    Returns ``(payloads, valid_bytes)`` where ``valid_bytes`` is the
    offset of the first torn or corrupt frame (== ``len(data)`` for a
    clean log). Never raises on malformed input: a tear simply ends the
    scan, which is what makes truncate-at-corruption safe to automate.
    """
    payloads: list[bytes] = []
    valid = 0
    for payload, end in _iter_frames(data):
        payloads.append(payload)
        valid = end
    return payloads, valid


def read_wal_bytes(data: bytes) -> tuple[list[Any], int]:
    """Decode every intact record in ``data``; returns ``(records, valid_bytes)``.

    A CRC-valid frame whose payload fails to decode still ends the scan
    at that frame's start — decodability is part of record integrity.
    """
    records: list[Any] = []
    valid = 0
    for payload, end in _iter_frames(data):
        try:
            records.append(codec.decode_payload(payload))
        except codec.CodecError:
            break
        valid = end
    return records, valid


def _iter_frames(data: bytes):
    offset = 0
    total = len(data)
    while total - offset >= _HEADER.size:
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            return
        end = offset + _HEADER.size + length
        if end > total:
            return
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            return
        yield payload, end
        offset = end


def read_wal_file(path: Path, truncate: bool = True) -> tuple[list[Any], int]:
    """Read one WAL segment, truncating any torn tail in place.

    Returns ``(records, torn_bytes)``; ``torn_bytes`` is how much trailing
    garbage was discarded (0 for a clean segment).
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0
    records, valid = read_wal_bytes(data)
    torn = len(data) - valid
    if torn and truncate:
        with open(path, "r+b") as handle:
            handle.truncate(valid)
    return records, torn


class WalWriter:
    """Append-only writer for one WAL segment.

    Every append writes one whole frame and flushes it to the kernel, so
    a ``SIGKILL`` of the process never loses an acknowledged append; with
    ``fsync=True`` each append is also forced to stable media, extending
    the guarantee to machine crashes at a large latency cost. Appends are
    synchronous on purpose: the caller's durable-before-send contract is
    "when this call returns, the record survives us".

    Group commit amortizes the fsync: ``append(record, defer_sync=True)``
    writes and flushes the frame but leaves the media sync to a later
    :meth:`sync_deferred` / :meth:`sync`, so N records queued inside one
    commit window cost one ``os.fsync`` instead of N. The caller owns the
    window boundary (see ``ReplicaStore.group``) and must not let any
    protocol message depend on a deferred record until the window closes.
    """

    def __init__(
        self,
        path: Path,
        *,
        fsync: bool = True,
        on_append: Callable[[int, bool], None] | None = None,
        on_sync: Callable[[int], None] | None = None,
    ):
        self.path = Path(path)
        self.fsync = fsync
        #: observability hook: called with (frame_bytes, fsynced) per append.
        self.on_append = on_append
        #: observability hook: called with the number of frames made durable
        #: by each fsync (the group-commit size; 1 for ungrouped appends).
        self.on_sync = on_sync
        #: frames written but not yet forced to media (only grows when
        #: ``fsync=True`` appends are deferred into a group).
        self._deferred = 0
        self._file = open(self.path, "ab")

    def append(
        self, record: Any, *, defer_sync: bool = False, lazy: bool = False
    ) -> int:
        """Durably append one record; returns the frame size in bytes.

        With ``defer_sync=True`` the frame is written and flushed but the
        fsync is left to the enclosing group window's :meth:`sync_deferred`.

        With ``lazy=True`` the frame is written and flushed but demands no
        fsync at all — not even at the group window's close. It becomes
        durable with whichever fsync next touches the file (an fsync
        always covers every byte written before it). Only for records
        whose loss is recoverable from elsewhere: decide records are a
        cache of a quorum-durable outcome, so a torn-off lazy tail merely
        forces a catch-up, never loses an acknowledged command.
        """
        frame = frame_record(codec.encode_payload(record, "binary"))
        self._file.write(frame)
        self._file.flush()
        synced = False
        if self.fsync and not lazy:
            if defer_sync:
                self._deferred += 1
            else:
                os.fsync(self._file.fileno())
                synced = True
                if self.on_sync is not None:
                    self.on_sync(1)
        if self.on_append is not None:
            self.on_append(len(frame), synced)
        return len(frame)

    def append_many(self, records: list[Any] | tuple[Any, ...]) -> int:
        """Append a batch of records with one write, one flush, one fsync.

        Returns the total bytes written. The batch becomes durable
        atomically from the caller's point of view: either the tail tear
        hits inside it (recovery truncates there) or the whole suffix that
        the single fsync covered survives.
        """
        if not records:
            return 0
        frames = [
            frame_record(codec.encode_payload(record, "binary"))
            for record in records
        ]
        blob = b"".join(frames)
        self._file.write(blob)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
            if self.on_sync is not None:
                self.on_sync(len(frames))
        if self.on_append is not None:
            for frame in frames:
                self.on_append(len(frame), self.fsync)
        return len(blob)

    def sync_deferred(self) -> int:
        """Close a group-commit window: one fsync for every deferred frame.

        Returns the number of frames made durable. A window in which no
        append was deferred costs nothing — no flush, no fsync — so
        wrapping every inbound network chunk in a group is free for
        traffic that never touches the WAL.
        """
        if not self._deferred:
            return 0
        self._file.flush()
        os.fsync(self._file.fileno())
        count = self._deferred
        self._deferred = 0
        if self.on_sync is not None:
            self.on_sync(count)
        return count

    def sync(self) -> None:
        """Force everything written so far to stable media."""
        self._file.flush()
        os.fsync(self._file.fileno())
        if self._deferred:
            count = self._deferred
            self._deferred = 0
            if self.on_sync is not None:
                self.on_sync(count)

    def close(self) -> None:
        try:
            self._file.flush()
        finally:
            self._file.close()
