"""Per-replica durable store: WAL segments + checkpoints + recovery.

One :class:`ReplicaStore` owns one data directory::

    <data-dir>/
        wal-000001.log      # CRC-framed record segments, append-only
        wal-000002.log      # newest segment is the active one
        ckpt-000003.bin     # checkpoints (one framed CheckpointRecord each)

Engines write through :class:`InstanceDurability` handles (one per engine
instance id, reached via ``Transport.durability``); the reconfigurable
replica logs epoch transitions and takes checkpoints directly on the
store. Handles are idempotent — re-recording state that is already
durable is a no-op — which is what makes recovery replay (and the
re-decide traffic it triggers) safe.

Compaction: every checkpoint rewrites the WAL into a fresh segment
carrying only records still needed — the acceptor/learner state of
instances at or above the checkpoint's execution epoch — and deletes the
older segments. Instances of fully-executed earlier epochs are dropped
entirely: a recovered replica simply does not rebuild those engines, and
an engine that never answers cannot violate a promise. Silence is always
safe in Paxos; only *amnesia* is dangerous.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.consensus.ballot import Ballot
from repro.metrics.registry import SPAN_CHECKPOINT, MetricsRegistry
from repro.net import codec
from repro.storage.records import (
    CheckpointRecord,
    WalAccept,
    WalDecide,
    WalDirtyOverlap,
    WalEpochOpen,
    WalPromise,
)
from repro.storage.wal import WalWriter, frame_record, read_wal_bytes, read_wal_file
from repro.types import Configuration, Membership, Slot

_SEGMENT_PREFIX = "wal-"
_CKPT_PREFIX = "ckpt-"

#: checkpoints retained on disk. Two, not one: a crash between writing a
#: new checkpoint and compacting the WAL must leave a loadable fallback.
_CKPT_KEEP = 2


@dataclass(slots=True)
class InstanceState:
    """Recovered acceptor + learner state of one engine instance."""

    promised: Ballot = Ballot.ZERO
    #: slot -> (ballot, value) of the highest-ballot accept per slot.
    accepted: dict[Slot, tuple[Ballot, Any]] = field(default_factory=dict)
    #: slot -> decided value.
    decided: dict[Slot, Any] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return (
            self.promised == Ballot.ZERO
            and not self.accepted
            and not self.decided
        )


@dataclass(slots=True)
class RecoveredState:
    """Everything a boot found on disk, folded and ready to replay."""

    checkpoint: CheckpointRecord | None
    #: epoch transitions in epoch order (oldest first).
    epochs: list[WalEpochOpen]
    #: instance id -> folded state.
    instances: dict[str, InstanceState]
    #: dirty hand-off tails not yet proven decided, in epoch order.
    dirty_overlaps: list[WalDirtyOverlap] = field(default_factory=list)
    #: intact WAL records read across all segments.
    records: int = 0
    #: trailing bytes truncated from torn segments.
    torn_bytes: int = 0
    #: wall-clock seconds the load took.
    duration: float = 0.0

    @property
    def has_state(self) -> bool:
        return self.checkpoint is not None or bool(self.epochs)

    def instance_epoch_floor(self) -> int:
        """Lowest epoch recovery will rebuild (checkpoint's, else oldest)."""
        if self.checkpoint is not None:
            return self.checkpoint.exec_epoch
        if self.epochs:
            return self.epochs[0].config.epoch
        return 0


def _instance_epoch(instance: str) -> int | None:
    """Epoch number of a reconfigurable instance id, None if unparseable."""
    if instance.startswith("e"):
        try:
            return int(instance[1:])
        except ValueError:
            return None
    return None


def fold_records(records: list[Any]) -> tuple[dict[int, WalEpochOpen], dict[str, InstanceState]]:
    """Fold a record stream into per-epoch and per-instance state.

    Order-tolerant and duplicate-tolerant on purpose: a crash during
    compaction can leave both the old and the new segment on disk, so the
    fold must be a pure max/union over whatever it reads. Promises keep
    the highest ballot (accepts imply promises); accepts keep the highest
    ballot per slot; decides are first-wins (agreement makes any
    duplicate identical).
    """
    epochs: dict[int, WalEpochOpen] = {}
    instances: dict[str, InstanceState] = {}

    def state_of(instance: str) -> InstanceState:
        state = instances.get(instance)
        if state is None:
            state = instances[instance] = InstanceState()
        return state

    for record in records:
        if isinstance(record, WalEpochOpen):
            epochs.setdefault(record.config.epoch, record)
        elif isinstance(record, WalPromise):
            state = state_of(record.instance)
            if record.ballot > state.promised:
                state.promised = record.ballot
        elif isinstance(record, WalAccept):
            state = state_of(record.instance)
            if record.ballot > state.promised:
                state.promised = record.ballot
            current = state.accepted.get(record.slot)
            if current is None or record.ballot > current[0]:
                state.accepted[record.slot] = (record.ballot, record.value)
        elif isinstance(record, WalDecide):
            state_of(record.instance).decided.setdefault(record.slot, record.value)
        # Unknown record types are skipped, not fatal: an older build must
        # be able to reopen a directory written by a newer one.
    return epochs, instances


def fold_dirty_overlaps(records: list[Any]) -> dict[int, WalDirtyOverlap]:
    """Fold dirty hand-off tail records, one per sealed epoch.

    First-wins per epoch for the same reason decides are: an epoch seals
    once, so any duplicate (compaction crash) is identical.
    """
    overlaps: dict[int, WalDirtyOverlap] = {}
    for record in records:
        if isinstance(record, WalDirtyOverlap):
            overlaps.setdefault(record.epoch, record)
    return overlaps


class NullDurability:
    """No-op durability handle (in-memory runs, storage-less hosts)."""

    __slots__ = ()

    def recover(self) -> InstanceState | None:
        return None

    def record_promise(self, ballot: Ballot) -> None:
        pass

    def record_accept(self, slot: Slot, ballot: Ballot, value: Any) -> None:
        pass

    def record_decide(self, slot: Slot, value: Any) -> None:
        pass


NULL_DURABILITY = NullDurability()


class InstanceDurability:
    """One engine instance's write handle into the replica's WAL.

    Mirrors the durable watermarks (highest promise, highest accept
    ballot per slot, decided slots) so that re-recording already-durable
    state — which recovery replay does constantly — costs no I/O.
    """

    __slots__ = ("_store", "instance", "_promised", "_accepted", "_decided")

    def __init__(self, store: "ReplicaStore", instance: str, recovered: InstanceState | None):
        self._store = store
        self.instance = instance
        self._promised = recovered.promised if recovered else Ballot.ZERO
        self._accepted: dict[Slot, Ballot] = (
            {slot: ballot for slot, (ballot, _) in recovered.accepted.items()}
            if recovered
            else {}
        )
        self._decided: set[Slot] = set(recovered.decided) if recovered else set()

    def recover(self) -> InstanceState | None:
        """The state this instance must resume from (None = fresh)."""
        state = self._store.recovered.instances.get(self.instance)
        return None if state is None or state.empty else state

    def record_promise(self, ballot: Ballot) -> None:
        if ballot <= self._promised:
            return
        self._promised = ballot
        self._store.append(WalPromise(self.instance, ballot))

    def record_accept(self, slot: Slot, ballot: Ballot, value: Any) -> None:
        current = self._accepted.get(slot)
        if current is not None and ballot <= current:
            return
        self._accepted[slot] = ballot
        if ballot > self._promised:
            self._promised = ballot  # an accept implies the promise
        self._store.append(WalAccept(self.instance, slot, ballot, value))

    def record_decide(self, slot: Slot, value: Any) -> None:
        if slot in self._decided:
            return
        self._decided.add(slot)
        # Lazy: a decide only caches an outcome already durable at a
        # quorum of acceptors (each fsynced its accept before voting).
        # Losing the tail of decide records costs a catch-up on recovery,
        # never an acknowledged command — so it does not buy an fsync.
        self._store.append(WalDecide(self.instance, slot, value), lazy=True)


class ReplicaStore:
    """The durable state of one replica, in one directory."""

    def __init__(
        self,
        data_dir: str | Path,
        *,
        fsync: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_appends = self.metrics.counter("wal.appends")
        self._m_fsyncs = self.metrics.counter("wal.fsyncs")
        self._m_bytes = self.metrics.counter("wal.bytes")
        self._m_checkpoints = self.metrics.counter("wal.checkpoints")
        self._m_group_size = self.metrics.histogram("wal.group_commit_size")
        self._m_recovery = self.metrics.histogram("recovery.duration")
        #: reentrant group-commit window depth (see :meth:`group`).
        self._group_depth = 0

        started = time.perf_counter()
        self.recovered = self._load()
        self.recovered.duration = time.perf_counter() - started
        self._m_recovery.record(self.recovered.duration)
        self.metrics.counter("recovery.runs").inc()
        self.metrics.counter("recovery.replayed_records").inc(self.recovered.records)
        self.metrics.counter("recovery.torn_bytes").inc(self.recovered.torn_bytes)

        #: epoch -> WalEpochOpen already durable (dedup for log_epoch_open).
        self._epochs_logged: dict[int, WalEpochOpen] = {
            eo.config.epoch: eo for eo in self.recovered.epochs
        }
        self._handles: dict[str, InstanceDurability] = {}
        self._ckpt_seq = (
            self.recovered.checkpoint.seq if self.recovered.checkpoint else 0
        )
        self._writer = WalWriter(
            self._segment_path(self._next_segment_index()),
            fsync=fsync,
            on_append=self._on_append,
            on_sync=self._on_sync,
        )
        self.closed = False

    # -- loading ------------------------------------------------------------

    def _segments(self) -> list[Path]:
        return sorted(self.data_dir.glob(f"{_SEGMENT_PREFIX}*.log"))

    def _checkpoints(self) -> list[Path]:
        return sorted(self.data_dir.glob(f"{_CKPT_PREFIX}*.bin"))

    def _segment_path(self, index: int) -> Path:
        return self.data_dir / f"{_SEGMENT_PREFIX}{index:06d}.log"

    def _next_segment_index(self) -> int:
        segments = self._segments()
        if not segments:
            return 1
        return int(segments[-1].stem[len(_SEGMENT_PREFIX):]) + 1

    def _load(self) -> RecoveredState:
        checkpoint = self._load_checkpoint()
        records: list[Any] = []
        torn = 0
        for segment in self._segments():
            segment_records, segment_torn = read_wal_file(segment, truncate=True)
            records.extend(segment_records)
            torn += segment_torn
        epoch_opens, instances = fold_records(records)
        overlap_folds = fold_dirty_overlaps(records)
        floor = (
            checkpoint.exec_epoch
            if checkpoint is not None
            else min(epoch_opens, default=0)
        )
        # Drop state below the execution floor: those engines are never
        # rebuilt (see the module docstring — silence is safe, amnesia is
        # not), so carrying their state forward would only grow the log.
        epochs = [epoch_opens[e] for e in sorted(epoch_opens) if e >= floor]
        live_instances = {
            instance: state
            for instance, state in instances.items()
            if not state.empty
            and ((epoch := _instance_epoch(instance)) is None or epoch >= floor)
        }
        # A tail record for sealed epoch e feeds re-proposals into e+1; it
        # is dead weight only once execution has moved past that epoch.
        overlaps = [
            overlap_folds[e]
            for e in sorted(overlap_folds)
            if e + 1 >= floor
        ]
        return RecoveredState(
            checkpoint=checkpoint,
            epochs=epochs,
            instances=live_instances,
            dirty_overlaps=overlaps,
            records=len(records),
            torn_bytes=torn,
        )

    def _load_checkpoint(self) -> CheckpointRecord | None:
        # Newest first; fall back on a torn or corrupt newest checkpoint
        # (a crash mid-checkpoint leaves the previous one untouched).
        for path in reversed(self._checkpoints()):
            try:
                records, _ = read_wal_bytes(path.read_bytes())
            except OSError:
                continue
            if records and isinstance(records[0], CheckpointRecord):
                return records[0]
        return None

    # -- appending ----------------------------------------------------------

    def _on_append(self, frame_bytes: int, fsynced: bool) -> None:
        self._m_appends.inc()
        self._m_bytes.inc(frame_bytes)

    def _on_sync(self, frames: int) -> None:
        # One fsync made `frames` records durable: the counter tracks
        # media round trips, the histogram the amortization factor.
        self._m_fsyncs.inc()
        self._m_group_size.record(frames)

    def append(self, record: Any, *, lazy: bool = False) -> None:
        """Durably append one record to the active segment.

        Inside an open :meth:`group` window the fsync is deferred to the
        window close, so all records of one window share one media sync.
        ``lazy=True`` appends never demand an fsync of their own (see
        :meth:`WalWriter.append`) — reserved for records that are a cache
        of state recoverable from a quorum.
        """
        self._writer.append(record, defer_sync=self._group_depth > 0, lazy=lazy)

    # -- group commit ---------------------------------------------------------

    def group(self) -> "_GroupWindow":
        """A reentrant group-commit window, used as a context manager.

        All appends issued while at least one window is open defer their
        fsync; the outermost window close forces them to media with a
        single ``os.fsync``. The live runtime wraps every inbound network
        chunk's dispatch in one of these, so the records written while
        processing N messages cost one sync — and crucially the sync
        happens *before* the dispatch callback returns, which is before
        the transport's writer tasks can put any resulting protocol
        message on a socket. Durable-before-send is preserved per window.
        A window that appends nothing costs nothing.
        """
        return _GroupWindow(self)

    def begin_group(self) -> None:
        self._group_depth += 1

    def end_group(self) -> None:
        self._group_depth -= 1
        if self._group_depth == 0 and not self.closed:
            # Checkpoint compaction may have swapped the active writer
            # mid-window; any deferred frames in the retired segment were
            # folded into the compaction segment and fsynced there, so
            # syncing the current writer alone is sufficient.
            self._writer.sync_deferred()

    def instance(self, instance_id: str) -> InstanceDurability:
        """The durability handle for one engine instance (cached)."""
        handle = self._handles.get(instance_id)
        if handle is None:
            handle = self._handles[instance_id] = InstanceDurability(
                self, instance_id, self.recovered.instances.get(instance_id)
            )
        return handle

    def log_epoch_open(
        self, config: Configuration, prev_members: Membership | None
    ) -> None:
        """Record an epoch transition (idempotent per epoch)."""
        if config.epoch in self._epochs_logged:
            return
        record = WalEpochOpen(config, prev_members)
        self._epochs_logged[config.epoch] = record
        self.append(record)

    def log_dirty_overlap(self, epoch: int, payloads: list[Any]) -> None:
        """Record a dirty hand-off tail about to be re-proposed.

        Must land before any re-proposal message can reach a socket
        (the caller runs inside the dispatch group window, whose close
        fsyncs before the transport writers run) — otherwise a crash
        between seal and accept silently drops the tail.
        """
        self.append(WalDirtyOverlap(epoch, tuple(payloads)))

    # -- checkpoints ---------------------------------------------------------

    def checkpoint(
        self,
        *,
        exec_epoch: int,
        executed: int,
        virtual_index: int,
        app_state: Any,
        now: float = 0.0,
    ) -> int:
        """Write a checkpoint, then compact the WAL behind it.

        Returns the checkpoint sequence number. Crash-safe at every step:
        the checkpoint lands via write-new-then-delete-old (never rename
        over the live one), and compaction writes the fresh segment
        completely before removing its predecessors — a crash in between
        leaves duplicates, which :func:`fold_records` absorbs.
        """
        self._ckpt_seq += 1
        seq = self._ckpt_seq
        self.metrics.span_event(SPAN_CHECKPOINT, seq, "begin", now)
        record = CheckpointRecord(
            seq=seq,
            exec_epoch=exec_epoch,
            executed=executed,
            virtual_index=virtual_index,
            app_state=app_state,
        )
        path = self.data_dir / f"{_CKPT_PREFIX}{seq:06d}.bin"
        tmp = path.with_suffix(".tmp")
        frame = frame_record(codec.encode_payload(record, "binary"))
        with open(tmp, "wb") as handle:
            handle.write(frame)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        tmp.replace(path)
        self.metrics.span_event(SPAN_CHECKPOINT, seq, "written", now)
        self._m_checkpoints.inc()
        self._compact(exec_epoch)
        self.metrics.span_event(SPAN_CHECKPOINT, seq, "compacted", now)
        for stale in self._checkpoints()[:-_CKPT_KEEP]:
            stale.unlink(missing_ok=True)
        return seq

    def _compact(self, floor_epoch: int) -> None:
        """Rewrite the WAL keeping only state for epochs >= ``floor_epoch``.

        Promise safety across the drop: an instance below the floor is
        fully executed and sealed everywhere this replica's state
        matters, and recovery will not rebuild its engine — a missing
        engine never answers a Prepare or Accept, which is always safe.
        """
        old_segments = self._segments()
        records: list[Any] = []
        for segment in old_segments:
            segment_records, _ = read_wal_file(segment, truncate=False)
            records.extend(segment_records)
        epoch_opens, instances = fold_records(records)
        overlap_folds = fold_dirty_overlaps(records)

        keep: list[Any] = []
        for epoch in sorted(epoch_opens):
            if epoch >= floor_epoch:
                keep.append(epoch_opens[epoch])
        for epoch in sorted(overlap_folds):
            if epoch + 1 >= floor_epoch:
                keep.append(overlap_folds[epoch])
        for instance in sorted(instances):
            epoch = _instance_epoch(instance)
            if epoch is not None and epoch < floor_epoch:
                continue
            state = instances[instance]
            if state.promised > Ballot.ZERO:
                keep.append(WalPromise(instance, state.promised))
            for slot in sorted(state.accepted):
                ballot, value = state.accepted[slot]
                keep.append(WalAccept(instance, slot, ballot, value))
            for slot in sorted(state.decided):
                keep.append(WalDecide(instance, slot, state.decided[slot]))

        new_index = self._next_segment_index()
        writer = WalWriter(
            self._segment_path(new_index),
            fsync=self.fsync,
            on_append=self._on_append,
            on_sync=self._on_sync,
        )
        try:
            # One write + one fsync for the whole surviving state: the
            # compaction segment is durable atomically or not at all
            # (either way the old segments are still on disk).
            writer.append_many(keep)
            if not self.fsync:
                writer.sync()
        finally:
            writer.close()

        old_writer = self._writer
        self._writer = WalWriter(
            self._segment_path(new_index + 1),
            fsync=self.fsync,
            on_append=self._on_append,
            on_sync=self._on_sync,
        )
        old_writer.close()
        for segment in old_segments:
            segment.unlink(missing_ok=True)

    # -- introspection -------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Plain-container summary for admin endpoints and logs."""
        rec = self.recovered
        return {
            "durable": True,
            "fsync": self.fsync,
            "recovered": rec.has_state,
            "wal_records": rec.records,
            "torn_bytes": rec.torn_bytes,
            "epochs": len(rec.epochs),
            "instances": len(rec.instances),
            "checkpoint_seq": rec.checkpoint.seq if rec.checkpoint else 0,
            "recovery_seconds": round(rec.duration, 6),
        }

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._writer.close()


class _GroupWindow:
    """Context manager for one :meth:`ReplicaStore.group` window."""

    __slots__ = ("_store",)

    def __init__(self, store: ReplicaStore):
        self._store = store

    def __enter__(self) -> ReplicaStore:
        self._store.begin_group()
        return self._store

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Close the window even on exception: records already written in
        # it must still reach media before anything else happens.
        self._store.end_group()
        return False
