"""Durable record types written to the WAL and checkpoint files.

Each record is an ordinary codec-registered dataclass (see
:func:`repro.net.codec._bootstrap`), so the WAL reuses the wire codec's
binary encoding — one serialisation surface, one set of parity tests —
and a WAL written by a binary-wire replica can be read back by any other
build of the code.

Records are keyed by the engine's *instance id* (the same string used in
:class:`repro.consensus.interface.InstanceMessage`: ``"e<epoch>"`` for a
reconfigurable replica's engines, ``"static"`` for a standalone host), so
the storage layer needs no knowledge of the epoch machinery above it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.consensus.ballot import Ballot
from repro.types import Configuration, Membership, Slot


@dataclass(frozen=True, slots=True)
class WalPromise:
    """Acceptor promise: never accept below ``ballot`` in this instance.

    Logged before the :class:`~repro.consensus.messages.Promise` reply is
    sent — the durable-before-send rule that makes a recovered acceptor
    honest about its past.
    """

    instance: str
    ballot: Ballot


@dataclass(frozen=True, slots=True)
class WalAccept:
    """Acceptor vote: ``value`` accepted at ``ballot`` for ``slot``.

    Also implies a promise at ``ballot`` (the acceptor raises its promise
    when voting), so recovery folds accepted ballots into the promised
    watermark without a separate record.
    """

    instance: str
    slot: Slot
    ballot: Ballot
    value: Any


@dataclass(frozen=True, slots=True)
class WalDecide:
    """Learner knowledge: ``slot`` decided as ``value`` in this instance."""

    instance: str
    slot: Slot
    value: Any


@dataclass(frozen=True, slots=True)
class WalEpochOpen:
    """The replica learned of (and joined) an epoch's configuration.

    ``prev_members`` names the boundary-snapshot sources (None for the
    genesis epoch): a replica recovering into an epoch whose boundary it
    never checkpointed re-fetches the snapshot from them, exactly like a
    cold joiner would.
    """

    config: Configuration
    prev_members: Membership | None = None


@dataclass(frozen=True, slots=True)
class WalDirtyOverlap:
    """The tail a dirty hand-off carried across a seal, before it decided.

    Written at the instant ``epoch`` seals under ``handoff="dirty"``, and
    *before* the tail is re-proposed into ``epoch + 1`` (durable before
    send). The re-proposals themselves are plain engine traffic with no
    durable trace until accepted somewhere — so a replica SIGKILLed
    between the seal and the accepts would otherwise silently drop the
    tail it had just promised to carry. Recovery replays the record
    through the same re-propose path; apply-time dedup makes a replay of
    an already-decided payload a no-op.
    """

    epoch: int
    payloads: tuple[Any, ...]


@dataclass(frozen=True, slots=True)
class CheckpointRecord:
    """One durable state-machine checkpoint.

    ``app_state`` reuses the ``state_transfer`` snapshot encoding (the
    :class:`~repro.core.statemachine.DedupStateMachine` snapshot, dedup
    table included, so exactly-once semantics survive recovery);
    ``executed`` counts the effective entries of ``exec_epoch`` already
    applied to it. A checkpoint taken at an epoch boundary has
    ``executed == 0`` and ``app_state`` equal to the boundary snapshot.
    """

    seq: int
    exec_epoch: int
    executed: int
    virtual_index: int
    app_state: Any
