"""The simulator: virtual clock, event loop, process registry.

One :class:`Simulator` owns one run. Typical shape::

    sim = Simulator(seed=7)
    ... create Process subclasses bound to sim ...
    sim.run(until=10.0)

The loop pops events in ``(time, seq)`` order, advances the clock, and
invokes callbacks. There is no concurrency anywhere: determinism comes
from the total event order plus the seeded RNG tree.

:class:`Simulator` is one of two implementations of the structural
:class:`repro.core.runtime.Runtime` protocol (the other is the wall-clock
:class:`repro.net.runtime.LiveRuntime`): any :class:`repro.sim.node.Process`
runs unmodified on either backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import SimulationError
from repro.metrics.registry import MetricsRegistry
from repro.sim.events import Event, EventQueue
from repro.sim.network import LatencyModel, Network
from repro.sim.rng import SeededRng
from repro.sim.trace import TraceLog
from repro.types import NodeId, Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.node import Process


class Simulator:
    """Discrete-event simulation kernel."""

    def __init__(
        self,
        seed: int = 42,
        latency: LatencyModel | None = None,
        trace_enabled: bool = True,
        trace_capacity: int | None = 200_000,
    ):
        self.rng = SeededRng(seed)
        self.now: Time = 0.0
        self.events = EventQueue()
        self.trace = TraceLog(enabled=trace_enabled, capacity=trace_capacity)
        self.network = Network(self, latency=latency)
        # Cluster-wide registry: every simulated replica shares it (the sim
        # is one process), so counters aggregate across the whole cluster
        # and reconfiguration spans merge first-phase-wins across replicas.
        self.metrics = MetricsRegistry()
        self._processes: dict[NodeId, "Process"] = {}
        self._started = False
        self.events_executed = 0

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.events.schedule(self.now + delay, action, label=label)

    # Alias used by Process.set_timer to distinguish timers in traces.
    schedule_event = schedule

    def at(self, time: Time, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated ``time``."""
        self.events.validate_schedule_time(self.now, time)
        return self.events.schedule(time, action, label=label)

    # -- process registry --------------------------------------------------------

    def register_process(self, process: "Process") -> None:
        if process.node in self._processes:
            raise SimulationError(f"process {process.node!r} already registered")
        self._processes[process.node] = process
        self.network.register(process.node, process.deliver)
        if self._started:
            # Late-joining processes (e.g., replacement replicas) start
            # immediately via the event queue to preserve determinism.
            self.schedule(0.0, process.on_start, label=f"start:{process.node}")

    def remove_process(self, node: NodeId) -> None:
        self._processes.pop(node, None)
        self.network.unregister(node)

    def process(self, node: NodeId) -> "Process | None":
        return self._processes.get(node)

    def processes(self) -> list["Process"]:
        return list(self._processes.values())

    # -- running -------------------------------------------------------------------

    def _start_all(self) -> None:
        if self._started:
            return
        self._started = True
        for process in list(self._processes.values()):
            process.on_start()

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        self._start_all()
        event = self.events.pop_next()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError("event queue produced an event in the past")
        self.now = event.time
        self.events_executed += 1
        event.action()
        # Mark executed so Timer.active reflects "still pending".
        event.cancelled = True
        return True

    def run(self, until: Time | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or the budget ends."""
        self._start_all()
        budget = max_events
        while True:
            if budget is not None and budget <= 0:
                return
            next_time = self.events.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
            if budget is not None:
                budget -= 1

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: Time,
        check_label: str = "condition",
    ) -> bool:
        """Run until ``predicate()`` holds; returns whether it did in time.

        The predicate is evaluated after every executed event, which keeps
        the check exact (no polling granularity).
        """
        deadline = self.now + timeout
        self._start_all()
        if predicate():
            return True
        while True:
            next_time = self.events.peek_time()
            if next_time is None or next_time > deadline:
                self.now = deadline
                return predicate()
            self.step()
            if predicate():
                return True
