"""Structured tracing for simulations.

Traces are cheap, append-only records of interesting protocol events
(decisions, epoch changes, crashes, ...). Tests assert on them, the
examples print them, and they are invaluable when debugging distributed
schedules. Tracing is on by default but can be capped or disabled for
long benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.types import Time


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace event."""

    time: Time
    source: str
    category: str
    detail: dict[str, Any]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        fields = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time * 1000.0:10.3f}ms] {self.source:<8} {self.category:<18} {fields}"


class TraceLog:
    """Bounded, filterable event log."""

    def __init__(self, enabled: bool = True, capacity: int | None = 200_000):
        self.enabled = enabled
        self.capacity = capacity
        self._records: list[TraceRecord] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def emit(self, time: Time, source: str, category: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self._records) >= self.capacity:
            self.dropped += 1
            return
        self._records.append(TraceRecord(time, source, category, detail))

    def records(
        self, category: str | None = None, source: str | None = None
    ) -> Iterator[TraceRecord]:
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if source is not None and record.source != source:
                continue
            yield record

    def last(self, category: str) -> TraceRecord | None:
        for record in reversed(self._records):
            if record.category == category:
                return record
        return None

    def count(self, category: str) -> int:
        return sum(1 for _ in self.records(category=category))

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0
