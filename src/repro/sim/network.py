"""Simulated asynchronous message-passing network.

The network delivers point-to-point messages between registered endpoints
with a configurable latency model:

* a random base delay per message (uniform between ``min_delay`` and
  ``max_delay``),
* a serialisation component proportional to message size
  (``size / bandwidth``), which is what makes large state-transfer
  snapshots observably slower than protocol messages,
* optional loss (``drop_probability``), duplication
  (``duplicate_probability``), and named bidirectional partitions.

Messages to crashed endpoints are silently dropped at delivery time, the
usual fail-stop model. The network also keeps per-run statistics (message
and byte counts, split by payload type) that the benchmark harness reads
for the message-cost experiment (T4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import NetworkError
from repro.sim.rng import SeededRng
from repro.types import NodeId, Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runner import Simulator


def _estimate_size(payload: Any) -> int:
    """Wire-size estimate from the shared codec (lazy import: cycle guard).

    Memoized by :func:`repro.net.codec.payload_shape` — payload type plus
    shallow structure — so the steady-state simulator stops paying a full
    encode per send: two ``Accept``\\ s carrying equally-shaped commands hit
    the same cache slot. First-seen shapes still get the exact encoded
    size, which keeps byte accounting identical for homogeneous traffic.
    """
    global _codec_estimate, _codec_shape
    if _codec_estimate is None:
        from repro.net.codec import estimate_size, payload_shape

        _codec_estimate = estimate_size
        _codec_shape = payload_shape
    shape = _codec_shape(payload)
    if shape is None:
        return _codec_estimate(payload)
    cached = _SIZE_CACHE.get(shape)
    if cached is None:
        if len(_SIZE_CACHE) >= _SIZE_CACHE_LIMIT:
            _SIZE_CACHE.clear()  # tiny entries; full reset beats LRU here
        cached = _SIZE_CACHE[shape] = _codec_estimate(payload)
    return cached


_codec_estimate: Callable[[Any], int] | None = None
_codec_shape: Callable[[Any], Any] | None = None
_SIZE_CACHE: dict[Any, int] = {}
_SIZE_CACHE_LIMIT = 4096


@dataclass(frozen=True, slots=True)
class Message:
    """Envelope around one protocol payload in flight."""

    sender: NodeId
    dest: NodeId
    payload: Any
    size: int
    sent_at: Time


@dataclass(slots=True)
class LatencyModel:
    """Parameters of the delivery-delay distribution.

    ``bandwidth`` is in bytes per simulated second; delays are in simulated
    seconds. The defaults model a LAN: 0.5–2 ms one-way latency and
    ~1 Gbit/s of per-link bandwidth.
    """

    min_delay: float = 0.0005
    max_delay: float = 0.002
    bandwidth: float = 125_000_000.0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0

    def sample_delay(self, rng: SeededRng, size: int) -> float:
        base = rng.uniform(self.min_delay, self.max_delay)
        return base + size / self.bandwidth

    def sample_delay_between(
        self, rng: SeededRng, size: int, sender: NodeId, dest: NodeId
    ) -> float:
        """Endpoint-aware delay; the base model ignores the endpoints."""
        return self.sample_delay(rng, size)


class ZonedLatencyModel(LatencyModel):
    """Topology-aware delays: cheap within a zone, expensive across zones.

    Models multi-rack / multi-datacenter deployments. Nodes map to named
    zones via ``zone_of``; pairs in the same zone use the base
    ``min_delay``/``max_delay``, pairs in different zones use
    ``inter_min``/``inter_max``. Unmapped nodes (e.g. clients) count as a
    zone of their own prefix, so client traffic defaults to intra-zone
    unless mapped explicitly.
    """

    def __init__(
        self,
        zone_of: dict[str, str],
        inter_min: float = 0.015,
        inter_max: float = 0.040,
        default_zone: str = "local",
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.zone_of = dict(zone_of)
        self.inter_min = inter_min
        self.inter_max = inter_max
        self.default_zone = default_zone

    def zone(self, node: NodeId) -> str:
        return self.zone_of.get(str(node), self.default_zone)

    def sample_delay_between(
        self, rng: SeededRng, size: int, sender: NodeId, dest: NodeId
    ) -> float:
        if self.zone(sender) == self.zone(dest):
            base = rng.uniform(self.min_delay, self.max_delay)
        else:
            base = rng.uniform(self.inter_min, self.inter_max)
        return base + size / self.bandwidth


@dataclass(slots=True)
class NetworkStats:
    """Cumulative traffic accounting for one simulation run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    by_type: dict[str, int] = field(default_factory=dict)
    bytes_by_type: dict[str, int] = field(default_factory=dict)

    def record_send(self, payload: Any, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        kind = type(payload).__name__
        self.by_type[kind] = self.by_type.get(kind, 0) + 1
        self.bytes_by_type[kind] = self.bytes_by_type.get(kind, 0) + size


class Network:
    """Message router between endpoint processes.

    Endpoints register a delivery callback keyed by :data:`NodeId`. The
    network owns its RNG fork so that traffic randomness is independent of
    workload randomness.
    """

    def __init__(self, sim: "Simulator", latency: LatencyModel | None = None):
        self._sim = sim
        self.latency = latency if latency is not None else LatencyModel()
        self._rng = sim.rng.fork("network")
        self._endpoints: dict[NodeId, Callable[[Message], None]] = {}
        self._partitions: dict[str, tuple[frozenset[NodeId], frozenset[NodeId]]] = {}
        self.stats = NetworkStats()

    # -- endpoint management -------------------------------------------------

    def register(self, node: NodeId, deliver: Callable[[Message], None]) -> None:
        if node in self._endpoints:
            raise NetworkError(f"endpoint {node!r} already registered")
        self._endpoints[node] = deliver

    def unregister(self, node: NodeId) -> None:
        self._endpoints.pop(node, None)

    def knows(self, node: NodeId) -> bool:
        return node in self._endpoints

    # -- partitions ----------------------------------------------------------

    def partition(self, name: str, side_a, side_b) -> None:
        """Install a named bidirectional partition between two node groups."""
        group_a = frozenset(NodeId(str(n)) for n in side_a)
        group_b = frozenset(NodeId(str(n)) for n in side_b)
        self._partitions[name] = (group_a, group_b)

    def heal(self, name: str) -> None:
        """Remove a previously installed partition; unknown names are a no-op."""
        self._partitions.pop(name, None)

    def heal_all(self) -> None:
        self._partitions.clear()

    def _partitioned(self, a: NodeId, b: NodeId) -> bool:
        for group_a, group_b in self._partitions.values():
            if (a in group_a and b in group_b) or (a in group_b and b in group_a):
                return True
        return False

    # -- sending -------------------------------------------------------------

    def send(
        self, sender: NodeId, dest: NodeId, payload: Any, size: int | None = None
    ) -> None:
        """Queue ``payload`` for asynchronous delivery to ``dest``.

        ``size=None`` estimates the payload's encoded wire size with the
        shared codec (:func:`repro.net.codec.estimate_size`), so byte
        accounting matches what the live TCP transport would actually put
        on the wire; explicit sizes remain for payloads whose bytes are
        synthetic (modelled snapshots, workload-sized commands).

        Unknown destinations are treated as unreachable hosts (message
        dropped) rather than errors: protocols routinely address nodes that
        have been removed from the cluster.
        """
        if size is None:
            size = _estimate_size(payload)
        self.stats.record_send(payload, size)
        message = Message(
            sender=sender, dest=dest, payload=payload, size=size, sent_at=self._sim.now
        )
        if self._partitioned(sender, dest):
            self.stats.messages_dropped += 1
            return
        if self.latency.drop_probability > 0.0:
            if self._rng.random() < self.latency.drop_probability:
                self.stats.messages_dropped += 1
                return
        self._schedule_delivery(message)
        if self.latency.duplicate_probability > 0.0:
            if self._rng.random() < self.latency.duplicate_probability:
                self._schedule_delivery(message)

    def _schedule_delivery(self, message: Message) -> None:
        delay = self.latency.sample_delay_between(
            self._rng, message.size, message.sender, message.dest
        )
        self._sim.schedule(
            delay,
            lambda: self._deliver(message),
            label=f"deliver:{type(message.payload).__name__}",
        )

    def _deliver(self, message: Message) -> None:
        # Partitions are re-checked at delivery time so that a partition
        # installed while a message is in flight also cuts it off.
        if self._partitioned(message.sender, message.dest):
            self.stats.messages_dropped += 1
            return
        deliver = self._endpoints.get(message.dest)
        if deliver is None:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        deliver(message)
