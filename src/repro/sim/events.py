"""Event queue and timers for the discrete-event simulator.

Events are ordered by ``(time, sequence_number)``: the sequence number is a
monotonically increasing tiebreaker, so two events scheduled for the same
instant fire in scheduling order. This, plus a seeded RNG, is what makes
whole simulations deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.types import Time


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so they can live directly in a heap.
    ``cancelled`` implements O(1) cancellation: the queue lazily discards
    cancelled events when they surface.
    """

    time: Time
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Timer:
    """Handle to a scheduled timer, as seen by protocol code.

    Protocols hold on to timers so they can cancel or re-arm them
    (e.g., heartbeat and election timeouts).
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def fire_time(self) -> Time:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled

    def cancel(self) -> None:
        self._event.cancel()


class EventQueue:
    """Priority queue of :class:`Event` with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, time: Time, action: Callable[[], None], label: str = "") -> Event:
        """Insert an event; returns it so the caller may cancel it later."""
        event = Event(time=time, seq=self._seq, action=action, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop_next(self) -> Event | None:
        """Remove and return the next non-cancelled event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Time | None:
        """Time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def validate_schedule_time(self, now: Time, time: Time) -> None:
        if time < now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={now}"
            )
