"""Deterministic discrete-event simulation substrate.

The simulator provides everything the replication protocols need from an
"operating system": a virtual clock, timers, a message-passing network with
configurable latency/bandwidth/loss/partitions, process lifecycle
(crash/restart), failure-injection schedules, and structured tracing.

Every run is a pure function of its seed and parameters, which makes
protocol schedules — including adversarial ones — reproducible in tests and
benchmarks.
"""

from repro.sim.events import Event, EventQueue, Timer
from repro.sim.rng import SeededRng
from repro.sim.network import (
    LatencyModel,
    Message,
    Network,
    NetworkStats,
    ZonedLatencyModel,
)
from repro.sim.node import Process
from repro.sim.failures import (
    CrashAt,
    DelayLinkAt,
    DropLinkAt,
    FailureInjector,
    FailureSchedule,
    HealAt,
    LoseLinkAt,
    PartitionAt,
    RestartAt,
)
from repro.sim.runner import Simulator
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "CrashAt",
    "DelayLinkAt",
    "DropLinkAt",
    "Event",
    "EventQueue",
    "FailureInjector",
    "FailureSchedule",
    "HealAt",
    "LoseLinkAt",
    "PartitionAt",
    "RestartAt",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkStats",
    "Process",
    "SeededRng",
    "Simulator",
    "Timer",
    "TraceLog",
    "TraceRecord",
    "ZonedLatencyModel",
]
