"""Failure injection: scheduled crashes, restarts, partitions, link faults.

Experiments describe *what goes wrong and when* declaratively with a
:class:`FailureSchedule`; an injector arms the schedule against a running
system. Keeping failures out of protocol code keeps both sides honest:
protocols cannot "see" the schedule.

The schedule types are **runtime-agnostic**: ``time`` is seconds on
whichever clock the executing injector uses — virtual seconds under
:class:`FailureInjector` (simulator), wall-clock seconds from the start of
the run under :class:`repro.net.chaos.ChaosController` (live TCP cluster).
The link-level actions (:class:`DropLinkAt`, :class:`DelayLinkAt`,
:class:`LoseLinkAt`) target the live transport's
:class:`repro.net.transport.LinkPolicy`; the simulator's network has no
one-way/latency/loss hooks per named rule, so the sim injector rejects
them explicitly instead of silently ignoring them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.types import NodeId, Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runner import Simulator


@dataclass(frozen=True, slots=True)
class CrashAt:
    """Crash ``node`` at ``time`` (fail-stop unless a RestartAt follows)."""

    time: Time
    node: NodeId


@dataclass(frozen=True, slots=True)
class RestartAt:
    """Restart a previously crashed ``node`` at ``time``."""

    time: Time
    node: NodeId


@dataclass(frozen=True, slots=True)
class PartitionAt:
    """Install a named partition between two groups at ``time``."""

    time: Time
    name: str
    side_a: tuple[NodeId, ...]
    side_b: tuple[NodeId, ...]


@dataclass(frozen=True, slots=True)
class HealAt:
    """Heal a named partition (or named link rule) at ``time``."""

    time: Time
    name: str


@dataclass(frozen=True, slots=True)
class DropLinkAt:
    """Drop all ``src -> dst`` traffic (one-way) from ``time`` until healed.

    ``src``/``dst`` may be ``"*"`` to match any node (live runtime only).
    """

    time: Time
    name: str
    src: NodeId
    dst: NodeId


@dataclass(frozen=True, slots=True)
class DelayLinkAt:
    """Add ``seconds`` of one-way latency on ``src -> dst`` until healed."""

    time: Time
    name: str
    src: NodeId
    dst: NodeId
    seconds: float


@dataclass(frozen=True, slots=True)
class LoseLinkAt:
    """Drop ``src -> dst`` frames with probability ``rate`` until healed."""

    time: Time
    name: str
    src: NodeId
    dst: NodeId
    rate: float


FailureAction = (
    CrashAt | RestartAt | PartitionAt | HealAt
    | DropLinkAt | DelayLinkAt | LoseLinkAt
)

#: actions the simulator's network cannot express (live transport only).
LINK_ACTIONS = (DropLinkAt, DelayLinkAt, LoseLinkAt)


@dataclass(slots=True)
class FailureSchedule:
    """An ordered list of failure actions."""

    actions: list[FailureAction] = field(default_factory=list)

    def crash(self, time: Time, node: str) -> "FailureSchedule":
        self.actions.append(CrashAt(time, NodeId(node)))
        return self

    def restart(self, time: Time, node: str) -> "FailureSchedule":
        self.actions.append(RestartAt(time, NodeId(node)))
        return self

    def partition(
        self, time: Time, name: str, side_a: Sequence[str], side_b: Sequence[str]
    ) -> "FailureSchedule":
        self.actions.append(
            PartitionAt(
                time,
                name,
                tuple(NodeId(n) for n in side_a),
                tuple(NodeId(n) for n in side_b),
            )
        )
        return self

    def heal(self, time: Time, name: str) -> "FailureSchedule":
        self.actions.append(HealAt(time, name))
        return self

    def drop_link(
        self, time: Time, name: str, src: str, dst: str
    ) -> "FailureSchedule":
        self.actions.append(DropLinkAt(time, name, NodeId(src), NodeId(dst)))
        return self

    def delay_link(
        self, time: Time, name: str, src: str, dst: str, seconds: float
    ) -> "FailureSchedule":
        if seconds < 0:
            raise ConfigurationError(f"negative link delay {seconds}")
        self.actions.append(
            DelayLinkAt(time, name, NodeId(src), NodeId(dst), seconds)
        )
        return self

    def lose_link(
        self, time: Time, name: str, src: str, dst: str, rate: float
    ) -> "FailureSchedule":
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"loss rate {rate} outside [0, 1]")
        self.actions.append(LoseLinkAt(time, name, NodeId(src), NodeId(dst), rate))
        return self

    def sorted_actions(self) -> list[FailureAction]:
        """Actions in execution order: by time, insertion order breaking ties.

        This is the injection order every executor follows, so two runs of
        the same schedule inject identically regardless of runtime.
        """
        return sorted(
            self.actions, key=lambda a: a.time
        )  # sorted() is stable: equal times keep insertion order


class FailureInjector:
    """Arms a :class:`FailureSchedule` against a simulation."""

    def __init__(self, sim: "Simulator", schedule: FailureSchedule):
        self._sim = sim
        self._schedule = schedule

    def arm(self) -> None:
        for action in self._schedule.actions:
            if isinstance(action, LINK_ACTIONS):
                raise ConfigurationError(
                    f"{type(action).__name__} targets the live transport's "
                    "LinkPolicy; the simulator network has no per-link hooks "
                    "(use repro.net.chaos.ChaosController)"
                )
            if action.time < self._sim.now:
                raise ConfigurationError(
                    f"failure action {action} scheduled before current time"
                )
            self._sim.schedule(
                action.time - self._sim.now,
                lambda a=action: self._apply(a),
                label="failure-injection",
            )

    def _apply(self, action: FailureAction) -> None:
        sim = self._sim
        if isinstance(action, CrashAt):
            process = sim.process(action.node)
            if process is None:
                raise ConfigurationError(f"cannot crash unknown node {action.node!r}")
            process.crash()
        elif isinstance(action, RestartAt):
            process = sim.process(action.node)
            if process is None:
                raise ConfigurationError(f"cannot restart unknown node {action.node!r}")
            process.restart()
        elif isinstance(action, PartitionAt):
            sim.network.partition(action.name, action.side_a, action.side_b)
            sim.trace.emit(sim.now, "injector", "partition", name=action.name)
        elif isinstance(action, HealAt):
            sim.network.heal(action.name)
            sim.trace.emit(sim.now, "injector", "heal", name=action.name)
