"""Failure injection: scheduled crashes, restarts, and partitions.

Experiments describe *what goes wrong and when* declaratively with a
:class:`FailureSchedule`; the :class:`FailureInjector` arms the schedule
against a running simulation. Keeping failures out of protocol code keeps
both sides honest: protocols cannot "see" the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.types import NodeId, Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runner import Simulator


@dataclass(frozen=True, slots=True)
class CrashAt:
    """Crash ``node`` at ``time`` (fail-stop unless a RestartAt follows)."""

    time: Time
    node: NodeId


@dataclass(frozen=True, slots=True)
class RestartAt:
    """Restart a previously crashed ``node`` at ``time``."""

    time: Time
    node: NodeId


@dataclass(frozen=True, slots=True)
class PartitionAt:
    """Install a named partition between two groups at ``time``."""

    time: Time
    name: str
    side_a: tuple[NodeId, ...]
    side_b: tuple[NodeId, ...]


@dataclass(frozen=True, slots=True)
class HealAt:
    """Heal a named partition at ``time``."""

    time: Time
    name: str


FailureAction = CrashAt | RestartAt | PartitionAt | HealAt


@dataclass(slots=True)
class FailureSchedule:
    """An ordered list of failure actions."""

    actions: list[FailureAction] = field(default_factory=list)

    def crash(self, time: Time, node: str) -> "FailureSchedule":
        self.actions.append(CrashAt(time, NodeId(node)))
        return self

    def restart(self, time: Time, node: str) -> "FailureSchedule":
        self.actions.append(RestartAt(time, NodeId(node)))
        return self

    def partition(
        self, time: Time, name: str, side_a: Sequence[str], side_b: Sequence[str]
    ) -> "FailureSchedule":
        self.actions.append(
            PartitionAt(
                time,
                name,
                tuple(NodeId(n) for n in side_a),
                tuple(NodeId(n) for n in side_b),
            )
        )
        return self

    def heal(self, time: Time, name: str) -> "FailureSchedule":
        self.actions.append(HealAt(time, name))
        return self


class FailureInjector:
    """Arms a :class:`FailureSchedule` against a simulation."""

    def __init__(self, sim: "Simulator", schedule: FailureSchedule):
        self._sim = sim
        self._schedule = schedule

    def arm(self) -> None:
        for action in self._schedule.actions:
            if action.time < self._sim.now:
                raise ConfigurationError(
                    f"failure action {action} scheduled before current time"
                )
            self._sim.schedule(
                action.time - self._sim.now,
                lambda a=action: self._apply(a),
                label="failure-injection",
            )

    def _apply(self, action: FailureAction) -> None:
        sim = self._sim
        if isinstance(action, CrashAt):
            process = sim.process(action.node)
            if process is None:
                raise ConfigurationError(f"cannot crash unknown node {action.node!r}")
            process.crash()
        elif isinstance(action, RestartAt):
            process = sim.process(action.node)
            if process is None:
                raise ConfigurationError(f"cannot restart unknown node {action.node!r}")
            process.restart()
        elif isinstance(action, PartitionAt):
            sim.network.partition(action.name, action.side_a, action.side_b)
            sim.trace.emit(sim.now, "injector", "partition", name=action.name)
        elif isinstance(action, HealAt):
            sim.network.heal(action.name)
            sim.trace.emit(sim.now, "injector", "heal", name=action.name)
