"""Seeded random number generation for deterministic simulations.

A single :class:`SeededRng` per simulation owns a ``random.Random`` stream;
components that need independent randomness (the network, each client, the
failure injector) fork child streams with :meth:`SeededRng.fork` so that
adding a component does not perturb the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random


class SeededRng:
    """A named, forkable wrapper around :class:`random.Random`."""

    def __init__(self, seed: int, name: str = "root"):
        self.seed = seed
        self.name = name
        self._rng = random.Random(seed)
        self._zipf_cache: dict[tuple[int, float], list[float]] = {}

    def fork(self, name: str) -> "SeededRng":
        """Derive an independent child stream.

        The child's seed is a stable (process-independent) hash of
        ``(parent seed, child name)``, so forking the same name from the
        same parent always yields the same stream regardless of fork order.
        Python's built-in ``hash`` is salted per process for strings and is
        deliberately avoided here.
        """
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF
        return SeededRng(child_seed, name=f"{self.name}/{name}")

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def random(self) -> float:
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def choice(self, seq):
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def sample(self, population, k: int):
        return self._rng.sample(population, k)

    def zipf_index(self, n: int, skew: float) -> int:
        """Draw an index in ``[0, n)`` from a Zipf-like distribution.

        Uses inverse-CDF over the (pre-normalised) harmonic weights; cached
        per ``(n, skew)`` so repeated draws are O(log n).
        """
        key = (n, skew)
        cdf = self._zipf_cache.get(key)
        if cdf is None:
            weights = [1.0 / (i + 1) ** skew for i in range(n)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for w in weights:
                acc += w / total
                cdf.append(acc)
            self._zipf_cache[key] = cdf
        u = self._rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo
