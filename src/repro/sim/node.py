"""Process abstraction: a node in the simulated distributed system.

A :class:`Process` is an event-driven actor. Subclasses implement
``on_message`` and use ``send`` / ``set_timer`` to drive protocols. The
lifecycle follows the fail-stop / crash-recovery model:

* ``crash()`` stops the process: in-flight messages to it are dropped at
  delivery time, its pending timers are cancelled, and its *volatile* state
  is considered lost.
* ``restart()`` (optional per experiment) revives the process. The
  ``stable`` dictionary survives a restart — it models the write-ahead /
  stable storage that consensus protocols require for safety — while
  everything re-initialised in ``on_restart`` is volatile.

Processes are registered with their runtime, which wires them to the
network and the trace log. A process is written against the structural
:class:`repro.core.runtime.Runtime` surface only, so the same subclass runs
unmodified under the discrete-event :class:`repro.sim.runner.Simulator`
*and* the wall-clock :class:`repro.net.runtime.LiveRuntime` (real TCP).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.sim.events import Timer
from repro.sim.network import Message
from repro.types import NodeId, Time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Runtime


class Process:
    """Base class for hosted nodes (replicas, clients, services)."""

    def __init__(self, sim: "Runtime", node: NodeId):
        self.sim = sim
        self.node = node
        self.crashed = False
        #: survives restart; protocols put their "disk" state here.
        self.stable: dict[str, Any] = {}
        #: opt-in CPU model: seconds of service time consumed per delivered
        #: message. 0 (default) = infinitely fast nodes. When positive,
        #: messages are handled serially and queueing delay emerges under
        #: load — the regime where batching pays in throughput, not just
        #: message counts.
        self.processing_delay: float = 0.0
        self._busy_until: Time = 0.0
        self.messages_processed = 0
        self._timers: list[Timer] = []
        sim.register_process(self)

    # -- clock & messaging ----------------------------------------------------

    @property
    def runtime(self) -> "Runtime":
        """The hosting runtime (``sim`` kept as the historical attribute name)."""
        return self.sim

    @property
    def now(self) -> Time:
        return self.sim.now

    def send(self, dest: NodeId, payload: Any, size: int | None = None) -> None:
        """Send a payload to ``dest``; silently dropped if this node is down.

        ``size=None`` (the default) lets the network estimate the payload's
        wire size with the shared codec; pass an explicit size only where
        the experiment models synthetic payload bytes.
        """
        if self.crashed:
            return
        self.sim.network.send(self.node, dest, payload, size=size)

    def broadcast(self, dests, payload: Any, size: int | None = None) -> None:
        """Send the same payload to every node in ``dests`` except ourselves."""
        for dest in dests:
            if dest != self.node:
                self.send(dest, payload, size=size)

    def send_self(self, dest_and_others, payload: Any, size: int | None = None) -> None:
        """Send to every node in the group *including* ourselves (loopback)."""
        for dest in dest_and_others:
            if dest == self.node:
                # Loopback skips the network but still goes through the event
                # queue so handlers never re-enter synchronously.
                self.sim.schedule(0.0, lambda p=payload: self._deliver_local(p))
            else:
                self.send(dest, payload, size=size)

    def _deliver_local(self, payload: Any) -> None:
        if not self.crashed:
            self.on_message(payload, self.node)

    # -- timers ----------------------------------------------------------------

    def set_timer(self, delay: float, action: Callable[[], None], label: str = "") -> Timer:
        """Arm a one-shot timer; it will not fire if the node crashes first."""

        def guarded() -> None:
            if not self.crashed:
                action()

        event = self.sim.schedule_event(delay, guarded, label=label or f"timer@{self.node}")
        timer = Timer(event)
        self._timers.append(timer)
        if len(self._timers) > 64:
            self._timers = [t for t in self._timers if t.active]
        return timer

    # -- lifecycle ---------------------------------------------------------------

    def crash(self) -> None:
        if self.crashed:
            return
        self.crashed = True
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.sim.trace.emit(self.now, str(self.node), "crash")
        self.on_crash()

    def restart(self) -> None:
        if not self.crashed:
            return
        self.crashed = False
        self.sim.trace.emit(self.now, str(self.node), "restart")
        self.on_restart()

    # -- hooks (subclasses override) ----------------------------------------------

    def on_message(self, payload: Any, sender: NodeId) -> None:
        """Handle a delivered payload. Default: ignore."""

    def on_start(self) -> None:
        """Called once when the simulation starts running."""

    def on_crash(self) -> None:
        """Called after the process transitions to crashed."""

    def on_restart(self) -> None:
        """Called after a restart; rebuild volatile state from ``self.stable``."""

    # -- plumbing -------------------------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Network delivery entry point (crashed nodes drop messages)."""
        if self.crashed:
            return
        if self.processing_delay <= 0.0:
            self.on_message(message.payload, message.sender)
            return
        # Serial CPU: each message occupies the node for processing_delay;
        # arrivals during a busy period queue behind it.
        start = max(self.now, self._busy_until)
        self._busy_until = start + self.processing_delay
        self.sim.at(
            self._busy_until,
            lambda: self._process_queued(message),
            label=f"cpu:{self.node}",
        )

    def _process_queued(self, message: Message) -> None:
        if self.crashed:
            return
        self.messages_processed += 1
        self.on_message(message.payload, message.sender)

    def trace(self, category: str, **detail: Any) -> None:
        self.sim.trace.emit(self.now, str(self.node), category, **detail)
