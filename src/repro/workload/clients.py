"""Client pools: spin up N measured clients against a service.

The pool owns one :class:`repro.metrics.collectors.CompletionCollector`
shared by all its clients, which is what experiments read for
service-level throughput and latency.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.client import Client, ClientParams, OperationSource
from repro.metrics.collectors import CompletionCollector
from repro.workload.generators import KvOperationMix


class _ClientFactory(Protocol):
    def make_client(
        self, name: str, operations: OperationSource, params=None, on_complete=None
    ) -> Client: ...


class ClientPool:
    """N closed-loop clients sharing an operation mix and a collector."""

    def __init__(
        self,
        service: _ClientFactory,
        mix: KvOperationMix,
        count: int,
        ops_per_client: int | None,
        params: ClientParams | None = None,
        name_prefix: str = "c",
        bin_width: float = 0.05,
    ):
        self.collector = CompletionCollector(bin_width=bin_width)
        self.clients: list[Client] = []
        for i in range(count):
            name = f"{name_prefix}{i}"
            client = service.make_client(
                name,
                mix.source(name, ops_per_client),
                params=params,
                on_complete=self.collector.on_complete,
            )
            self.clients.append(client)

    @property
    def all_finished(self) -> bool:
        return all(client.finished for client in self.clients)

    @property
    def completed_ops(self) -> int:
        return self.collector.count
