"""Reconfiguration schedules: when and how the membership changes.

A schedule is a list of :class:`ReconfigStep` — (time, new member set) —
computed ahead of the run. Builders cover the patterns the experiments
need:

* :func:`rolling_replacement` — replace one member at a time (rolling
  migration / node repair), the most common production pattern.
* :func:`full_replacement` — move the whole service to fresh machines in
  one jump; the pattern the composition handles natively but Raft-style
  single-server changes must decompose.
* :func:`scale_membership` — grow or shrink (elasticity).
* :func:`storm` — back-to-back reconfigurations at a fixed interval; the
  liveness stress of experiment F2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.types import Time


@dataclass(frozen=True, slots=True)
class ReconfigStep:
    """One scheduled membership change."""

    time: Time
    members: tuple[str, ...]


def _fresh_names(start_index: int, count: int) -> list[str]:
    return [f"n{start_index + i}" for i in range(count)]


def rolling_replacement(
    initial: list[str], start: Time, interval: Time, rounds: int, first_fresh: int
) -> list[ReconfigStep]:
    """Replace the oldest member with a fresh node every ``interval``."""
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    steps: list[ReconfigStep] = []
    current = list(initial)
    for i in range(rounds):
        current = current[1:] + [f"n{first_fresh + i}"]
        steps.append(ReconfigStep(start + i * interval, tuple(current)))
    return steps


def full_replacement(
    initial: list[str], at: Time, first_fresh: int
) -> list[ReconfigStep]:
    """Swap the entire membership for fresh nodes in a single step."""
    fresh = _fresh_names(first_fresh, len(initial))
    return [ReconfigStep(at, tuple(fresh))]


def scale_membership(
    initial: list[str], at: Time, target_size: int, first_fresh: int
) -> list[ReconfigStep]:
    """Grow (add fresh nodes) or shrink (drop highest-numbered) to a size."""
    if target_size < 1:
        raise ConfigurationError("target size must be >= 1")
    if target_size >= len(initial):
        members = list(initial) + _fresh_names(first_fresh, target_size - len(initial))
    else:
        members = list(initial)[:target_size]
    return [ReconfigStep(at, tuple(members))]


def storm(
    initial: list[str],
    start: Time,
    interval: Time,
    count: int,
    first_fresh: int,
) -> list[ReconfigStep]:
    """``count`` rolling replacements fired every ``interval`` seconds.

    With a small interval the next reconfiguration lands before the
    previous hand-off finishes — exactly the overlap the speculative
    pipeline is built for.
    """
    return rolling_replacement(initial, start, interval, count, first_fresh)


def migration_storm(
    initial: list[str],
    start: Time,
    interval: Time,
    count: int,
    first_fresh: int,
    keep: int = 1,
) -> list[ReconfigStep]:
    """Back-to-back *majority* migrations: each round keeps only ``keep``
    members and brings in fresh nodes for the rest.

    This is the hand-off-on-the-critical-path stress: the new quorum
    depends on joiners whose state is still in flight, so a protocol that
    cannot order before transfer completes serializes the whole storm.
    (A single-node rolling replacement, by contrast, leaves the quorum
    with members whose state is already local.)
    """
    if keep < 0 or keep >= len(initial):
        raise ConfigurationError("keep must be in [0, cluster size)")
    steps: list[ReconfigStep] = []
    current = list(initial)
    fresh = first_fresh
    for i in range(count):
        keepers = current[len(current) - keep:] if keep else []
        newcomers = [f"n{fresh + j}" for j in range(len(initial) - keep)]
        fresh += len(newcomers)
        current = keepers + newcomers
        steps.append(ReconfigStep(start + i * interval, tuple(current)))
    return steps
