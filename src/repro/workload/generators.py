"""Operation mixes: what clients ask the replicated service to do.

A mix is a factory of :data:`repro.core.client.OperationSource` closures —
zero-argument callables yielding ``(op, args, size)`` or ``None`` when the
client's budget is exhausted. Every closure draws from its own forked RNG
stream so adding clients never perturbs existing ones.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.rng import SeededRng


class KvOperationMix:
    """Read/write mix over a bounded keyspace.

    ``read_ratio`` of operations are gets; the rest are sets (and a
    ``cas_ratio`` slice of the writes are compare-and-swaps, which stress
    the linearizability checker the hardest because their success is
    order-sensitive).
    """

    def __init__(
        self,
        rng: SeededRng,
        keyspace: int = 64,
        read_ratio: float = 0.5,
        cas_ratio: float = 0.0,
        value_size: int = 64,
        zipf_skew: float | None = None,
    ):
        if not 0.0 <= read_ratio <= 1.0 or not 0.0 <= cas_ratio <= 1.0:
            raise ConfigurationError("ratios must be within [0, 1]")
        if keyspace <= 0:
            raise ConfigurationError("keyspace must be positive")
        self.rng = rng
        self.keyspace = keyspace
        self.read_ratio = read_ratio
        self.cas_ratio = cas_ratio
        self.value_size = value_size
        self.zipf_skew = zipf_skew

    def _pick_key(self, rng: SeededRng) -> str:
        if self.zipf_skew is not None:
            index = rng.zipf_index(self.keyspace, self.zipf_skew)
        else:
            index = rng.randint(0, self.keyspace - 1)
        return f"k{index}"

    def source(self, name: str, budget: int | None):
        """Build an OperationSource for one client.

        ``budget=None`` means unbounded (the run's deadline stops the
        client).
        """
        rng = self.rng.fork(f"mix/{name}")
        remaining = [budget]
        counter = [0]

        def next_operation():
            if remaining[0] is not None:
                if remaining[0] <= 0:
                    return None
                remaining[0] -= 1
            counter[0] += 1
            key = self._pick_key(rng)
            if rng.random() < self.read_ratio:
                return ("get", (key,), 32)
            if rng.random() < self.cas_ratio:
                expected = rng.randint(0, 8)
                return ("cas", (key, expected, counter[0]), self.value_size)
            return ("set", (key, counter[0]), self.value_size)

        return next_operation


def counter_increments(name: str, budget: int, counter_name: str = "c"):
    """OperationSource of ``budget`` increments of one counter by one.

    The acknowledged-increment count must equal the final counter value —
    the exactly-once arithmetic oracle used by the failure tests.
    """
    remaining = [budget]

    def next_operation():
        if remaining[0] <= 0:
            return None
        remaining[0] -= 1
        return ("incr", (counter_name, 1), 32)

    return next_operation
