"""Workload generation: operation mixes, client pools, reconfig schedules.

Experiments compose three orthogonal pieces:

* an operation mix (:mod:`repro.workload.generators`) — what clients do,
* a client pool (:mod:`repro.workload.clients`) — how many, what pacing,
* a schedule (:mod:`repro.workload.schedules`) — when the membership
  changes (single replacement, rolling migration, storms).
"""

from repro.workload.clients import ClientPool
from repro.workload.generators import KvOperationMix, counter_increments
from repro.workload.openloop import OpenLoopClient, OpenLoopParams
from repro.workload.schedules import (
    ReconfigStep,
    full_replacement,
    migration_storm,
    rolling_replacement,
    scale_membership,
    storm,
)

__all__ = [
    "ClientPool",
    "KvOperationMix",
    "OpenLoopClient",
    "OpenLoopParams",
    "ReconfigStep",
    "counter_increments",
    "full_replacement",
    "migration_storm",
    "rolling_replacement",
    "scale_membership",
    "storm",
]
