"""Open-loop clients: Poisson arrivals independent of completions.

Closed-loop clients (the default in :mod:`repro.core.client`) self-throttle
when the service slows down, which hides availability problems. An
open-loop client keeps issuing at its configured rate regardless — the
honest way to measure what a reconfiguration outage does to latency under
sustained offered load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.client import ClientReply, ClientRequest, OperationSource, Redirect
from repro.errors import ConfigurationError
from repro.sim.node import Process
from repro.sim.runner import Simulator
from repro.types import ClientId, Command, CommandId, Membership, NodeId, Time


@dataclass(slots=True)
class OpenLoopParams:
    """Arrival process and retry policy (simulated seconds)."""

    rate: float = 100.0
    start_delay: float = 0.2
    stop_after: Time | None = None
    request_timeout: float = 0.5
    max_outstanding: int = 256


@dataclass(slots=True)
class OpenLoopRecord:
    """One completed open-loop operation."""

    cid: CommandId
    invoked_at: Time
    returned_at: Time
    value: Any


@dataclass(slots=True)
class _Outstanding:
    command: Command
    invoked_at: Time
    target_index: int


class OpenLoopClient(Process):
    """Fire-and-forget client with Poisson arrivals and per-op retries."""

    def __init__(
        self,
        sim: Simulator,
        client: ClientId,
        view: Membership,
        operations: OperationSource,
        params: OpenLoopParams | None = None,
        on_complete: Callable[[OpenLoopRecord], None] | None = None,
    ):
        super().__init__(sim, NodeId(str(client)))
        if params is not None and params.rate <= 0:
            raise ConfigurationError("open-loop rate must be positive")
        self.client = client
        self.view = view
        self.operations = operations
        self.params = params if params is not None else OpenLoopParams()
        self.on_complete = on_complete
        self.records: list[OpenLoopRecord] = []
        self.seq = 0
        self.issued = 0
        self.shed = 0  # arrivals dropped because too many were outstanding
        self.stopped = False
        self._outstanding: dict[CommandId, _Outstanding] = {}
        self._rng = sim.rng.fork(f"openloop/{client}")
        self._target_rotation = 0

    # -- arrival process ----------------------------------------------------

    def on_start(self) -> None:
        self.set_timer(self.params.start_delay, self._arrival, label="ol-start")
        if self.params.stop_after is not None:
            self.set_timer(
                self.params.start_delay + self.params.stop_after,
                self._stop,
                label="ol-stop",
            )

    def _stop(self) -> None:
        self.stopped = True

    def _arrival(self) -> None:
        if self.stopped or self.crashed:
            return
        self._issue()
        gap = self._rng.expovariate(self.params.rate)
        self.set_timer(gap, self._arrival, label="ol-arrival")

    def _issue(self) -> None:
        operation = self.operations()
        if operation is None:
            self.stopped = True
            return
        if len(self._outstanding) >= self.params.max_outstanding:
            self.shed += 1
            return
        op, args, size = operation
        self.seq += 1
        command = Command(CommandId(self.client, self.seq), op, args, size=size)
        entry = _Outstanding(command, self.now, self._target_rotation)
        self._target_rotation += 1
        self._outstanding[command.cid] = entry
        self.issued += 1
        self._send(entry)

    def _send(self, entry: _Outstanding) -> None:
        targets = self.view.sorted_nodes()
        target = targets[entry.target_index % len(targets)]
        self.send(target, ClientRequest(entry.command, self.node), size=64 + entry.command.size)
        cid = entry.command.cid
        self.set_timer(
            self.params.request_timeout,
            lambda: self._retry(cid),
            label="ol-timeout",
        )

    def _retry(self, cid: CommandId) -> None:
        entry = self._outstanding.get(cid)
        if entry is None:
            return  # already completed
        entry.target_index += 1
        self._send(entry)

    # -- completions ----------------------------------------------------------

    def on_message(self, payload: Any, sender: NodeId) -> None:
        if isinstance(payload, ClientReply):
            entry = self._outstanding.pop(payload.cid, None)
            if entry is None:
                return
            record = OpenLoopRecord(
                cid=payload.cid,
                invoked_at=entry.invoked_at,
                returned_at=self.now,
                value=payload.value,
            )
            self.records.append(record)
            if self.on_complete is not None:
                self.on_complete(record)
        elif isinstance(payload, Redirect):
            if len(payload.members) > 0:
                self.view = payload.members
            entry = self._outstanding.get(payload.cid)
            if entry is not None:
                entry.target_index += 1
                self.set_timer(0.01, lambda: self._resend(payload.cid), label="ol-redirect")

    def _resend(self, cid: CommandId) -> None:
        entry = self._outstanding.get(cid)
        if entry is not None:
            self._send(entry)

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)
