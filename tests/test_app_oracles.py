"""Tests for the bank-conservation and lock-mutual-exclusion oracles."""

import pytest

from repro.errors import VerificationError
from repro.types import CommandId, client_id
from repro.verify.app_oracles import (
    bank_conservation_bounds,
    check_bank_conservation,
    check_lock_mutual_exclusion,
)
from repro.verify.histories import History, Operation


def op(client, seq, kind, args, inv, ret, value):
    return Operation(
        cid=CommandId(client_id(client), seq),
        op=kind,
        args=args,
        invoked_at=inv,
        returned_at=ret,
        value=value,
    )


class TestBankConservation:
    def test_acknowledged_ops_are_exact(self):
        history = History(
            [
                op("a", 1, "open", ("x", 100), 0, 1, "ok"),
                op("a", 2, "deposit", ("x", 50), 2, 3, 150),
                op("a", 3, "withdraw", ("x", 30), 4, 5, 120),
            ]
        )
        bounds = bank_conservation_bounds(history)
        assert bounds.minimum == bounds.maximum == 120

    def test_transfers_do_not_change_total(self):
        history = History(
            [
                op("a", 1, "open", ("x", 100), 0, 1, "ok"),
                op("a", 2, "open", ("y", 0), 2, 3, "ok"),
                op("a", 3, "transfer", ("x", "y", 40), 4, 5, True),
            ]
        )
        check_bank_conservation(history, final_total=100)

    def test_pending_deposit_widens_upper_bound(self):
        history = History(
            [
                op("a", 1, "open", ("x", 100), 0, 1, "ok"),
                op("a", 2, "deposit", ("x", 50), 2, None, None),
            ]
        )
        bounds = bank_conservation_bounds(history)
        assert bounds.minimum == 100 and bounds.maximum == 150
        check_bank_conservation(history, final_total=100)
        check_bank_conservation(history, final_total=150)

    def test_pending_withdraw_widens_lower_bound(self):
        history = History(
            [
                op("a", 1, "open", ("x", 100), 0, 1, "ok"),
                op("a", 2, "withdraw", ("x", 25), 2, None, None),
            ]
        )
        bounds = bank_conservation_bounds(history)
        assert bounds.minimum == 75 and bounds.maximum == 100

    def test_refused_ops_contribute_nothing(self):
        history = History(
            [
                op("a", 1, "open", ("x", 100), 0, 1, "ok"),
                op("a", 2, "open", ("x", 999), 2, 3, "exists"),
                op("a", 3, "withdraw", ("x", 500), 4, 5, None),  # overdraft
            ]
        )
        bounds = bank_conservation_bounds(history)
        assert bounds.minimum == bounds.maximum == 100

    def test_violation_detected(self):
        history = History([op("a", 1, "open", ("x", 100), 0, 1, "ok")])
        with pytest.raises(VerificationError, match="conservation"):
            check_bank_conservation(history, final_total=250)

    def test_end_to_end_bank_run(self):
        # Replicated bank through a reconfiguration: history bounds must
        # contain the replicas' final total.
        from repro.apps.bank import BankStateMachine
        from repro.core.client import ClientParams
        from repro.core.service import ReplicatedService
        from repro.sim.runner import Simulator

        sim = Simulator(seed=71)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], BankStateMachine)
        script = (
            [("open", (f"acct{i}", 100), 48) for i in range(5)]
            + [("transfer", (f"acct{i}", f"acct{(i + 1) % 5}", 10), 48) for i in range(20)]
            + [("deposit", ("acct0", 7), 48), ("withdraw", ("acct1", 3), 48)]
        )
        plan = iter(script)
        client = service.make_client(
            "bank-client", lambda: next(plan, None), ClientParams(start_delay=0.2)
        )
        service.reconfigure_at(0.4, ["n1", "n2", "n4"])
        done = sim.run_until(lambda: client.finished, timeout=30.0)
        assert done
        sim.run(until=sim.now + 1.0)
        history = History.from_clients([client])
        replica = service.live_members()[0]
        check_bank_conservation(history, final_total=replica.state.inner.total())


class TestLockMutualExclusion:
    def test_clean_handoff_passes(self):
        history = History(
            [
                op("a", 1, "acquire", ("L", "a"), 0, 1, True),
                op("a", 2, "release", ("L", "a"), 2, 3, True),
                op("b", 1, "acquire", ("L", "b"), 4, 5, True),
            ]
        )
        assert check_lock_mutual_exclusion(history) >= 1

    def test_violation_detected(self):
        history = History(
            [
                op("a", 1, "acquire", ("L", "a"), 0, 1, True),
                op("b", 1, "acquire", ("L", "b"), 4, 5, True),  # no release!
            ]
        )
        with pytest.raises(VerificationError, match="mutual exclusion"):
            check_lock_mutual_exclusion(history)

    def test_concurrent_acquires_not_flagged(self):
        # Overlapping intervals: either could have been first; one of the
        # two replies being True is fine without a release in between only
        # if they *could* be ordered failed-then... both True overlapping
        # is explainable when the failed... keep it simple: overlapping
        # successful acquires are never provably wrong.
        history = History(
            [
                op("a", 1, "acquire", ("L", "a"), 0, 10, True),
                op("b", 1, "acquire", ("L", "b"), 5, 15, True),
            ]
        )
        check_lock_mutual_exclusion(history)

    def test_pending_release_gives_benefit_of_doubt(self):
        history = History(
            [
                op("a", 1, "acquire", ("L", "a"), 0, 1, True),
                op("a", 2, "release", ("L", "a"), 2, None, None),  # pending
                op("b", 1, "acquire", ("L", "b"), 4, 5, True),
            ]
        )
        check_lock_mutual_exclusion(history)

    def test_failed_release_does_not_excuse(self):
        history = History(
            [
                op("a", 1, "acquire", ("L", "a"), 0, 1, True),
                op("a", 2, "release", ("L", "a"), 2, 3, False),  # refused
                op("b", 1, "acquire", ("L", "b"), 4, 5, True),
            ]
        )
        with pytest.raises(VerificationError):
            check_lock_mutual_exclusion(history)

    def test_locks_are_independent(self):
        history = History(
            [
                op("a", 1, "acquire", ("L1", "a"), 0, 1, True),
                op("b", 1, "acquire", ("L2", "b"), 4, 5, True),
            ]
        )
        check_lock_mutual_exclusion(history)

    def test_end_to_end_lock_service(self):
        from repro.apps.lockservice import LockServiceStateMachine
        from repro.core.client import ClientParams
        from repro.core.service import ReplicatedService
        from repro.sim.runner import Simulator

        sim = Simulator(seed=72)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], LockServiceStateMachine)
        clients = []
        for name in ("alpha", "beta"):
            script = []
            for i in range(12):
                script.append(("acquire", ("L", name), 32))
                script.append(("release", ("L", name), 32))
            plan = iter(script)
            clients.append(
                service.make_client(
                    name, lambda p=plan: next(p, None), ClientParams(start_delay=0.2)
                )
            )
        service.reconfigure_at(0.35, ["n1", "n2", "n4"])
        done = sim.run_until(lambda: all(c.finished for c in clients), timeout=30.0)
        assert done
        history = History.from_clients(clients)
        assert check_lock_mutual_exclusion(history) >= 0
