"""Tests for the dirty-cut hand-off mode (``ReconfigParams.handoff``).

Dirty hand-off has two halves, exercised here at both the unit and the
service level:

* **overlap** — at the seal, the outgoing engine's still-awaiting
  payloads are re-proposed into the incoming epoch instead of waiting
  for the old configuration to decide them (safe: exactly-once apply
  dedups, so the worst case is a command agreed twice and applied once);
* **dirty transfer** — a snapshot source that has no finished boundary
  for the requested epoch serves the boundary it *does* have plus the
  agreed effective-log tails in between, and the receiver replays the
  tail through the ordinary observer-entry machinery.

Clean mode must be byte-for-byte unaffected: it is the default and the
safety baseline the storm suite compares against.
"""

from copy import deepcopy

from repro.apps.kvstore import KvStateMachine
from repro.consensus.multipaxos import MultiPaxosEngine
from repro.core.reconfig import ReconfigParams
from repro.core.service import ReplicatedService
from repro.core.state_transfer import DirtySnapshotReply
from repro.sim.runner import Simulator
from repro.types import Command, CommandId, client_id, node_id
from tests.conftest import run_kv_service

BACK_TO_BACK = [(1.0, ["n2", "n3", "n4"]), (1.5, ["n3", "n4", "n5"])]


def dirty_params(**overrides):
    return ReconfigParams(
        engine_factory=MultiPaxosEngine.factory(), handoff="dirty", **overrides
    )


class TestDirtyEndToEnd:
    def test_converges_under_back_to_back_reconfigs(self, sim):
        service, clients, finished = run_kv_service(
            sim, n_ops=60, client_count=2, reconfigs=BACK_TO_BACK,
            handoff="dirty",
        )
        assert finished
        assert service.newest_epoch() == 2
        live = service.live_members()
        states = [r.state.snapshot() for r in live if r.state is not None]
        assert states and all(s == states[0] for s in states)

    def test_overlap_fires_on_sealed_tails(self, sim):
        service, clients, finished = run_kv_service(
            sim, n_ops=60, client_count=2, reconfigs=BACK_TO_BACK,
            handoff="dirty",
        )
        assert finished
        total = sum(r.dirty_overlaps for r in service.replicas.values())
        assert total > 0, "no sealed engine had an awaiting tail to overlap"

    def test_clean_mode_never_touches_dirty_paths(self, sim):
        service, clients, finished = run_kv_service(
            sim, n_ops=60, client_count=2, reconfigs=BACK_TO_BACK,
        )
        assert finished
        for replica in service.replicas.values():
            assert replica.dirty_overlaps == 0
            assert replica.dirty_served == 0
            assert replica.dirty_applied == 0


class TestOverlapSealedTail:
    def test_seal_reproposes_awaiting_payloads(self, sim):
        service = ReplicatedService(
            sim, ["n1", "n2", "n3"], KvStateMachine, params=dirty_params()
        )
        sim.run(until=1.0)  # settle the epoch-0 election
        replica = service.replicas[node_id("n1")]
        runtime = replica.epoch_runtime(0)
        # A payload parked in the engine, not yet decided, when the seal
        # lands — the stranded tail the overlap exists for.
        payload = Command(
            CommandId(client_id("tail"), 1), "set", ("stranded", 7), 64
        )
        runtime.engine.awaiting[payload.cid] = payload
        service.reconfigure(["n1", "n2", "n4"])
        sim.run(until=sim.now + 3.0)
        assert replica.dirty_overlaps >= 1
        # The overlap carried it into epoch 1, where it was agreed and
        # applied exactly once.
        assert replica.state.snapshot()["inner"]["stranded"] == 7
        assert payload.cid in replica._replies

    def test_empty_tail_is_a_noop(self, sim):
        service = ReplicatedService(
            sim, ["n1", "n2", "n3"], KvStateMachine, params=dirty_params()
        )
        sim.run(until=1.0)
        replica = service.replicas[node_id("n1")]
        replica._overlap_sealed_tail(replica.epoch_runtime(0))
        assert replica.dirty_overlaps == 0


class TestDirtySnapshotBuilder:
    def settled_service(self, sim):
        service, clients, finished = run_kv_service(
            sim, n_ops=40, reconfigs=[(0.5, ["n1", "n2", "n4"])],
            handoff="dirty",
        )
        assert finished
        return service

    def test_refuses_epochs_at_or_behind_the_frontier(self, sim):
        service = self.settled_service(sim)
        replica = service.replicas[node_id("n1")]
        assert replica.exec_epoch == 1
        assert replica._build_dirty_snapshot(0) is None
        assert replica._build_dirty_snapshot(1) is None

    def test_serves_base_boundary_plus_agreed_tail(self, sim):
        service = self.settled_service(sim)
        replica = service.replicas[node_id("n1")]
        # A source still executing epoch 0 (mid-hand-off) serves its
        # epoch-0 boundary plus whatever of epoch 0 is agreed so far.
        replica.exec_epoch = 0
        try:
            reply = replica._build_dirty_snapshot(1)
        finally:
            replica.exec_epoch = 1
        assert reply is not None
        assert reply.base_epoch == 0
        assert len(reply.epochs) == 1
        config, entries, cut = reply.epochs[0]
        assert config.epoch == 0
        assert cut == replica.epoch_runtime(0).cut_slot
        assert entries == tuple(replica.epoch_runtime(0).effective)
        # Genesis serves its founding boundary: None, meaning "a fresh
        # state machine" — the same contract bootstrap uses. A non-None
        # boundary must be a copy, never an alias of the live state.
        src_state = replica.epoch_runtime(0).start_state
        assert reply.boundary == src_state
        assert reply.boundary is None or reply.boundary is not src_state

    def test_refuses_non_boundary_start_state(self, sim):
        service = self.settled_service(sim)
        replica = service.replicas[node_id("n1")]
        replica.exec_epoch = 0
        replica.epoch_runtime(0).start_state_is_boundary = False
        try:
            assert replica._build_dirty_snapshot(1) is None
        finally:
            replica.epoch_runtime(0).start_state_is_boundary = True
            replica.exec_epoch = 1

    def test_refuses_gaps_in_the_chain(self, sim):
        service = self.settled_service(sim)
        replica = service.replicas[node_id("n1")]
        replica.exec_epoch = 0
        removed = replica.chain.pop(0)
        try:
            assert replica._build_dirty_snapshot(1) is None
        finally:
            replica.chain[0] = removed
            replica.exec_epoch = 1


class TestDirtyReceive:
    def paused_joiner(self, sim):
        """A dirty-mode join paused at the instant the joiner is cold.

        Runs until ``n4`` has learned that epoch 1 exists but has not yet
        received any boundary for it — the exact state a dirty reply is
        addressed to.
        """
        service = ReplicatedService(
            sim, ["n1", "n2", "n3"], KvStateMachine, params=dirty_params()
        )
        budget = [40]

        def ops():
            if budget[0] <= 0:
                return None
            budget[0] -= 1
            return ("set", (f"k{budget[0] % 5}", budget[0]), 64)

        from repro.core.client import ClientParams

        client = service.make_client("c1", ops, ClientParams(start_delay=0.2))
        service.reconfigure_at(0.4, ["n1", "n2", "n4"])
        caught = sim.run_until(
            lambda: (
                node_id("n4") in service.replicas
                and service.replicas[node_id("n4")].epoch_runtime(1) is not None
                and not service.replicas[node_id("n4")]
                .epoch_runtime(1)
                .start_state_ready
            ),
            timeout=10.0,
        )
        assert caught, "joiner never reached the cold mid-transfer state"
        return service, client, service.replicas[node_id("n4")]

    def source_reply(self, service, epoch=1):
        """Hand-build the reply a mid-hand-off source would have sent."""
        source = service.replicas[node_id("n1")]
        runtime = source.epoch_runtime(0)
        return DirtySnapshotReply(
            epoch=epoch,
            base_epoch=0,
            boundary=deepcopy(runtime.start_state),
            boundary_bytes=64,
            epochs=((runtime.config, tuple(runtime.effective), runtime.cut_slot),),
        )

    def test_cold_joiner_installs_base_and_replays(self, sim):
        service, client, joiner = self.paused_joiner(sim)
        assert joiner.state is None and joiner.virtual_index == 0
        joiner._handle_dirty_snapshot_reply(self.source_reply(service))
        assert joiner.dirty_applied == 1
        # The base boundary took, and the replayed tail (which contains
        # the sealing ReconfigCommand) re-derived epoch 1's boundary.
        assert joiner.epoch_runtime(0).start_state_ready
        assert joiner.epoch_runtime(1).start_state_ready
        # The service still converges after the surgery.
        done = sim.run_until(lambda: client.finished, timeout=30.0)
        sim.run(until=sim.now + 2.0)
        assert done
        survivor = service.replicas[node_id("n1")]
        assert joiner.state.snapshot() == survivor.state.snapshot()

    def test_warm_replica_refuses_the_base(self, sim):
        service, client, joiner = self.paused_joiner(sim)
        reply = self.source_reply(service)
        survivor = service.replicas[node_id("n2")]
        before = survivor.exec_epoch
        survivor_applied = survivor.dirty_applied
        # n2 already executes real state: target epoch ready -> no-op.
        survivor._handle_dirty_snapshot_reply(reply)
        assert survivor.exec_epoch == before
        assert survivor.dirty_applied == survivor_applied

    def test_malformed_replies_are_ignored(self, sim):
        service, client, joiner = self.paused_joiner(sim)
        good = self.source_reply(service)
        # Base not actually behind the requested epoch.
        joiner._handle_dirty_snapshot_reply(
            DirtySnapshotReply(1, 1, good.boundary, 64, good.epochs)
        )
        # No tail at all.
        joiner._handle_dirty_snapshot_reply(
            DirtySnapshotReply(1, 0, good.boundary, 64, ())
        )
        # Tail does not start at the claimed base epoch.
        shifted = (
            (joiner.epoch_runtime(1).config, (), None),
        )
        joiner._handle_dirty_snapshot_reply(
            DirtySnapshotReply(1, 0, good.boundary, 64, shifted)
        )
        assert joiner.dirty_applied == 0
        assert not joiner.epoch_runtime(1).start_state_ready

    def test_duplicate_reply_is_idempotent(self, sim):
        service, client, joiner = self.paused_joiner(sim)
        reply = self.source_reply(service)
        joiner._handle_dirty_snapshot_reply(reply)
        # Epoch 1's boundary is now derived; a second copy of the same
        # reply must change nothing (ready target -> early return).
        joiner._handle_dirty_snapshot_reply(reply)
        assert joiner.dirty_applied == 1
        done = sim.run_until(lambda: client.finished, timeout=30.0)
        sim.run(until=sim.now + 2.0)
        assert done
        survivor = service.replicas[node_id("n1")]
        assert joiner.state.snapshot() == survivor.state.snapshot()


class TestDirtyServing:
    def test_unavailable_when_dirty_build_fails(self, sim):
        """A caught-up dirty source still says unavailable, not garbage."""
        from repro.core.state_transfer import SnapshotRequest

        service, clients, finished = run_kv_service(
            sim, n_ops=40, reconfigs=[(0.5, ["n1", "n2", "n4"])],
            handoff="dirty",
        )
        assert finished
        replica = service.replicas[node_id("n1")]
        replica.boundary_snapshots.clear()
        served = replica.dirty_served
        # exec_epoch == 1, so _build_dirty_snapshot(1) has no base to
        # offer; the request must fall through to SnapshotUnavailable.
        replica._handle_snapshot_request(SnapshotRequest(1), node_id("n4"))
        assert replica.dirty_served == served
