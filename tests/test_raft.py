"""Tests for the Raft baseline: elections, replication, membership, snapshots."""

import pytest

from repro.apps.kvstore import KvStateMachine
from repro.baselines.raft import RaftParams, RaftReplica
from repro.baselines.raft_service import RaftService
from repro.core.client import ClientParams
from repro.core.command import ReconfigCommand
from repro.errors import ProtocolError
from repro.sim.network import LatencyModel
from repro.sim.runner import Simulator
from repro.types import CommandId, Membership, client_id, node_id


def make_cluster(n=3, seed=1, latency=None, params=None):
    sim = Simulator(seed=seed, latency=latency)
    service = RaftService(
        sim, [f"n{i + 1}" for i in range(n)], KvStateMachine, params=params
    )
    return sim, service


def kv_ops(n):
    budget = [n]

    def ops():
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        return ("set", (f"k{budget[0] % 7}", budget[0]), 64)

    return ops


class TestElection:
    def test_single_leader_emerges(self):
        sim, service = make_cluster(5, seed=2)
        sim.run(until=0.6)
        leaders = [r for r in service.replicas.values() if r.role == "leader"]
        assert len(leaders) == 1

    def test_leader_crash_triggers_new_election(self):
        sim, service = make_cluster(5, seed=3)
        sim.run(until=0.5)
        old = service.leader()
        old.crash()
        sim.run_until(
            lambda: service.leader() is not None and service.leader() is not old,
            timeout=5.0,
        )
        new = service.leader()
        assert new is not None and new.current_term > old.current_term

    def test_votes_are_sticky_while_leader_alive(self):
        sim, service = make_cluster(3, seed=4)
        sim.run(until=0.5)
        leader = service.leader()
        follower = next(r for r in service.replicas.values() if r.role == "follower")
        from repro.baselines.raft import RequestVote

        # A rogue candidate with a huge term must be refused while the
        # leader heartbeats, and must not bump terms.
        before = follower.current_term
        follower.on_message(
            RequestVote(before + 50, node_id("rogue"), 10_000, before + 50),
            node_id("rogue"),
        )
        assert follower.current_term == before
        assert service.leader() is leader


class TestReplication:
    def test_client_ops_commit_everywhere(self):
        sim, service = make_cluster(3, seed=5)
        client = service.make_client("c1", kv_ops(30), ClientParams(start_delay=0.3))
        sim.run_until(lambda: client.finished, timeout=10.0)
        applied = {r.node: r.last_applied for r in service.replicas.values()}
        sim.run(until=sim.now + 0.5)  # let followers catch up fully
        assert all(r.last_applied >= 30 for r in service.replicas.values())

    def test_logs_agree_across_replicas(self):
        sim, service = make_cluster(3, seed=6)
        client = service.make_client("c1", kv_ops(40), ClientParams(start_delay=0.3))
        sim.run_until(lambda: client.finished, timeout=10.0)
        sim.run(until=sim.now + 0.5)
        canon = {}
        for replica in service.replicas.values():
            for payload, term, index in replica.committed:
                assert canon.setdefault(index, repr(payload)) == repr(payload)

    def test_commits_survive_message_loss(self):
        sim, service = make_cluster(
            3, seed=7, latency=LatencyModel(drop_probability=0.1)
        )
        client = service.make_client(
            "c1", kv_ops(25), ClientParams(start_delay=0.3, request_timeout=0.4)
        )
        done = sim.run_until(lambda: client.finished, timeout=30.0)
        assert done

    def test_follower_restart_rejoins(self):
        sim, service = make_cluster(3, seed=8)
        client = service.make_client("c1", kv_ops(40), ClientParams(start_delay=0.3))
        follower = service.replicas[node_id("n3")]
        sim.at(0.5, follower.crash)
        sim.at(1.0, follower.restart)
        sim.run_until(lambda: client.finished, timeout=15.0)
        sim.run(until=sim.now + 1.0)
        leader = service.leader()
        assert follower.last_applied == leader.last_applied


class TestMembership:
    def test_single_server_add(self):
        sim, service = make_cluster(3, seed=9)
        sim.run(until=0.5)
        service.reconfigure(["n1", "n2", "n3", "n4"])
        sim.run_until(
            lambda: len(service.applied_membership()) == 4, timeout=10.0
        )
        assert node_id("n4") in service.applied_membership()

    def test_single_server_remove(self):
        sim, service = make_cluster(3, seed=10)
        sim.run(until=0.5)
        service.reconfigure(["n1", "n2"])
        sim.run_until(lambda: len(service.applied_membership()) == 2, timeout=10.0)
        assert node_id("n3") not in service.applied_membership()

    def test_multi_change_is_rejected_at_replica_level(self):
        sim, service = make_cluster(3, seed=11)
        sim.run(until=0.5)
        leader = service.leader()
        jump = ReconfigCommand(
            CommandId(client_id("admin"), 99), Membership.of("n7", "n8", "n9")
        )
        with pytest.raises(ProtocolError):
            leader.request_reconfiguration(jump)

    def test_full_migration_via_decomposition(self):
        sim, service = make_cluster(3, seed=12)
        client = service.make_client("c1", kv_ops(100), ClientParams(start_delay=0.3))
        service.reconfigure_at(0.8, ["n4", "n5", "n6"])
        done = sim.run_until(lambda: client.finished, timeout=30.0)
        assert done
        sim.run_until(
            lambda: service.applied_membership() == Membership.of("n4", "n5", "n6"),
            timeout=20.0,
        )
        assert service.leader() is not None

    def test_removed_leader_steps_down(self):
        sim, service = make_cluster(3, seed=13)
        sim.run(until=0.5)
        old_leader = service.leader()
        survivors = [
            str(n) for n in service.replicas if n != old_leader.node
        ]
        service.reconfigure(survivors)
        sim.run_until(
            lambda: service.leader() is not None and service.leader() is not old_leader,
            timeout=10.0,
        )
        assert old_leader.role != "leader"


class TestSnapshots:
    def test_log_compaction_triggers(self):
        params = RaftParams(compaction_threshold=20)
        sim, service = make_cluster(3, seed=14, params=params)
        client = service.make_client("c1", kv_ops(60), ClientParams(start_delay=0.3))
        sim.run_until(lambda: client.finished, timeout=15.0)
        leader = service.leader()
        assert leader.snap_index > 0
        assert leader.log_base == leader.snap_index + 1

    def test_fresh_server_catches_up_via_snapshot(self):
        params = RaftParams(compaction_threshold=20)
        sim, service = make_cluster(3, seed=15, params=params)
        client = service.make_client("c1", kv_ops(60), ClientParams(start_delay=0.3))
        sim.run_until(lambda: client.finished, timeout=15.0)
        service.reconfigure(["n1", "n2", "n3", "n4"])
        sim.run_until(lambda: len(service.applied_membership()) == 4, timeout=10.0)
        sim.run(until=sim.now + 1.0)
        joiner = service.replicas[node_id("n4")]
        assert joiner.snap_index > 0  # arrived via InstallSnapshot
        leader = service.leader()
        assert joiner.last_applied >= leader.snap_index

    def test_snapshot_preserves_dedup_state(self):
        params = RaftParams(compaction_threshold=10)
        sim, service = make_cluster(3, seed=16, params=params)
        client = service.make_client("c1", kv_ops(40), ClientParams(start_delay=0.3))
        sim.run_until(lambda: client.finished, timeout=15.0)
        service.reconfigure(["n1", "n2", "n3", "n4"])
        sim.run_until(lambda: len(service.applied_membership()) == 4, timeout=10.0)
        sim.run(until=sim.now + 1.0)
        joiner = service.replicas[node_id("n4")]
        leader = service.leader()
        assert joiner.state.snapshot() == leader.state.snapshot()
