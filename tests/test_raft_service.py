"""Tests for the RaftService admin plane: decomposition, queues, races."""

from repro.apps.kvstore import KvStateMachine
from repro.baselines.raft_service import RaftService
from repro.core.client import ClientParams
from repro.sim.runner import Simulator
from repro.types import Membership, node_id


def make(seed=1, members=("n1", "n2", "n3")):
    sim = Simulator(seed=seed)
    return sim, RaftService(sim, list(members), KvStateMachine)


class TestStepDecomposition:
    def test_next_step_adds_before_removing(self):
        sim, service = make()
        sim.run(until=0.4)
        target = Membership.of("n1", "n2", "n4")
        step = service._next_step(target)
        assert step == Membership.of("n1", "n2", "n3", "n4")

    def test_next_step_removes_when_no_additions(self):
        sim, service = make()
        sim.run(until=0.4)
        target = Membership.of("n1", "n2")
        step = service._next_step(target)
        assert step == Membership.of("n1", "n2")

    def test_next_step_none_when_at_target(self):
        sim, service = make()
        sim.run(until=0.4)
        assert service._next_step(Membership.of("n1", "n2", "n3")) is None


class TestTargetQueue:
    def test_sequential_targets_both_apply(self):
        sim, service = make(seed=2)
        sim.run(until=0.4)
        service.reconfigure(["n1", "n2", "n3", "n4"])
        service.reconfigure(["n1", "n2", "n3", "n4", "n5"])
        ok = sim.run_until(
            lambda: service.applied_membership()
            == Membership.of("n1", "n2", "n3", "n4", "n5"),
            timeout=20.0,
        )
        assert ok

    def test_queue_survives_leader_change(self):
        sim, service = make(seed=3, members=("n1", "n2", "n3", "n4", "n5"))
        client = service.make_client(
            "c1",
            iter_ops(40),
            ClientParams(start_delay=0.3, request_timeout=0.4),
        )
        sim.run(until=0.5)
        service.reconfigure(["n2", "n3", "n4", "n5", "n6"])
        old_leader = service.leader()
        sim.at(0.7, old_leader.crash)
        ok = sim.run_until(
            lambda: service.applied_membership()
            == Membership.of("n2", "n3", "n4", "n5", "n6"),
            timeout=30.0,
        )
        assert ok
        sim.run_until(lambda: client.finished, timeout=30.0)
        assert client.finished

    def test_storm_of_targets_converges(self):
        sim, service = make(seed=4)
        sim.run(until=0.4)
        pool = ["n1", "n2", "n3"]
        fresh = 4
        for k in range(4):
            pool = pool[1:] + [f"n{fresh}"]
            fresh += 1
            service.reconfigure_at(0.5 + k * 0.2, list(pool))
        ok = sim.run_until(
            lambda: service.applied_membership() == Membership.from_iter(pool),
            timeout=60.0,
        )
        assert ok
        assert service.leader() is not None


def iter_ops(n):
    budget = [n]

    def ops():
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        return ("set", (f"k{budget[0] % 5}", budget[0]), 64)

    return ops


class TestRaftClientInteraction:
    def test_reads_and_writes_served(self):
        sim, service = make(seed=5)
        script = [("set", ("a", 1), 64), ("get", ("a",), 32)]
        plan = iter(script)
        client = service.make_client(
            "c1", lambda: next(plan, None), ClientParams(start_delay=0.4)
        )
        sim.run_until(lambda: client.finished, timeout=10.0)
        assert [r.value for r in client.records] == ["ok", 1]

    def test_duplicate_request_answered_from_cache(self):
        sim, service = make(seed=6)
        client = service.make_client(
            "c1", iter_ops(10), ClientParams(start_delay=0.4)
        )
        sim.run_until(lambda: client.finished, timeout=10.0)
        leader = service.leader()
        from repro.core.client import ClientRequest

        first_cmd = None
        for payload, _, _ in leader.committed:
            if hasattr(payload, "cid"):
                first_cmd = payload
                break
        inbox = []
        sim.network.register(node_id("probe"), lambda m: inbox.append(m))
        leader.on_message(
            ClientRequest(first_cmd, node_id("probe")), node_id("probe")
        )
        sim.run(until=sim.now + 0.1)
        assert len(inbox) == 1

    def test_applied_membership_visible_to_clients_via_redirects(self):
        sim, service = make(seed=7)
        # Think time stretches the client past the whole migration, so it
        # must chase the moving membership via redirects to finish.
        client = service.make_client(
            "c1",
            iter_ops(150),
            ClientParams(start_delay=0.4, request_timeout=0.3, think_time=0.02),
        )
        service.reconfigure_at(0.8, ["n4", "n5", "n6"])
        ok = sim.run_until(lambda: client.finished, timeout=60.0)
        assert ok
        # After full migration the client's view must have moved on.
        assert set(client._known_nodes) & {node_id("n4"), node_id("n5"), node_id("n6")}
