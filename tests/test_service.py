"""Tests for the ReplicatedService facade."""

import pytest

from repro.apps.kvstore import KvStateMachine
from repro.core.service import ReplicatedService
from repro.errors import ConfigurationError
from repro.sim.runner import Simulator
from repro.types import node_id


class TestServiceFacade:
    def test_empty_membership_rejected(self):
        sim = Simulator(seed=1)
        with pytest.raises(ConfigurationError):
            ReplicatedService(sim, [], KvStateMachine)

    def test_reconfigure_to_empty_rejected(self):
        sim = Simulator(seed=1)
        service = ReplicatedService(sim, ["n1"], KvStateMachine)
        with pytest.raises(ConfigurationError):
            service.reconfigure([])

    def test_reconfigure_spawns_missing_replicas(self):
        sim = Simulator(seed=1)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        sim.run(until=0.2)
        service.reconfigure(["n1", "n2", "n9"])
        assert node_id("n9") in service.replicas

    def test_newest_epoch_tracks_chain(self):
        sim = Simulator(seed=1)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        assert service.newest_epoch() == 0
        sim.at(0.3, lambda: service.reconfigure(["n1", "n2", "n4"]))
        sim.run(until=2.0)
        assert service.newest_epoch() == 1

    def test_epoch_settled(self):
        sim = Simulator(seed=1)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        sim.run(until=0.2)
        assert service.epoch_settled(0)
        sim.at(0.3, lambda: service.reconfigure(["n1", "n2", "n4"]))
        sim.run(until=2.0)
        assert service.epoch_settled(1)

    def test_live_members_excludes_crashed(self):
        sim = Simulator(seed=1)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        sim.run(until=0.2)
        service.replicas[node_id("n2")].crash()
        live = [r.node for r in service.live_members()]
        assert node_id("n2") not in live
        assert len(live) == 2

    def test_commit_and_order_listeners_plumbed(self):
        sim = Simulator(seed=1)
        commits, orders = [], []
        service = ReplicatedService(
            sim,
            ["n1", "n2", "n3"],
            KvStateMachine,
            commit_listener=lambda *a: commits.append(a),
            order_listener=lambda *a: orders.append(a),
        )
        budget = [5]

        def ops():
            if budget[0] <= 0:
                return None
            budget[0] -= 1
            return ("set", ("k", 1), 32)

        client = service.make_client("c1", ops)
        sim.run_until(lambda: client.finished, timeout=10.0)
        assert len(commits) >= 5
        assert len(orders) >= 5

    def test_clients_listed(self):
        sim = Simulator(seed=1)
        service = ReplicatedService(sim, ["n1"], KvStateMachine)
        service.make_client("c1", lambda: None)
        assert len(service.clients) == 1
