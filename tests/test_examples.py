"""Smoke tests: every example script runs clean end to end.

Examples are user-facing documentation; breaking one silently is worse
than breaking a unit test. Each runs in-process (runpy) with stdout
captured, and its own success assertions (several examples assert their
correctness claims internally).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p.name for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, capsys, monkeypatch):
    path = Path(__file__).parent.parent / "examples" / script
    # Examples must not depend on argv.
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_expected_examples_present():
    assert {
        "quickstart.py",
        "elastic_scaling.py",
        "rolling_replacement.py",
        "reconfiguration_storm.py",
        "warm_standby_reads.py",
    } <= set(EXAMPLES)
