"""Tests for the static Multi-Paxos engine via StaticSmrHost clusters."""

import pytest

from repro.consensus.interface import Noop, StaticSmrHost, proposal_key
from repro.consensus.multipaxos import MultiPaxosEngine, PaxosParams
from repro.sim.network import LatencyModel
from repro.sim.runner import Simulator
from repro.types import Command, CommandId, Membership, client_id, node_id


def make_cluster(n=3, seed=1, latency=None, params=None):
    sim = Simulator(seed=seed, latency=latency)
    members = Membership.from_iter(f"n{i + 1}" for i in range(n))
    hosts = {
        node: StaticSmrHost(sim, node, members, MultiPaxosEngine.factory(params))
        for node in members
    }
    return sim, hosts


def cmd(seq, client="c", op="set", args=("k", 1)):
    return Command(CommandId(client_id(client), seq), op, args)


def decided_payloads(host):
    return [d.payload for d in host.decisions]


def assert_logs_prefix_consistent(hosts):
    logs = [decided_payloads(h) for h in hosts.values() if not h.crashed]
    shortest = min(len(log) for log in logs)
    for log in logs[1:]:
        assert log[:shortest] == logs[0][:shortest]


class TestElection:
    def test_lowest_id_becomes_initial_leader(self):
        sim, hosts = make_cluster()
        sim.run(until=0.1)
        leaders = [h.node for h in hosts.values() if h.engine.is_leader]
        assert leaders == ["n1"]

    def test_exactly_one_leader_settles(self):
        sim, hosts = make_cluster(n=5, seed=9)
        sim.run(until=0.5)
        assert sum(1 for h in hosts.values() if h.engine.is_leader) == 1

    def test_takeover_after_leader_crash(self):
        sim, hosts = make_cluster()
        sim.run(until=0.1)
        hosts[node_id("n1")].crash()
        sim.run(until=1.0)
        live_leaders = [
            h.node for h in hosts.values() if not h.crashed and h.engine.is_leader
        ]
        assert len(live_leaders) == 1

    def test_single_node_cluster_leads_itself(self):
        sim, hosts = make_cluster(n=1)
        sim.run(until=0.1)
        host = hosts[node_id("n1")]
        assert host.engine.is_leader
        host.propose(cmd(1))
        sim.run(until=0.5)
        assert len(host.decisions) == 1


class TestReplication:
    def test_commands_decided_on_all_members(self):
        sim, hosts = make_cluster()
        sim.run(until=0.1)
        for i in range(20):
            hosts[node_id("n1")].propose(cmd(i + 1))
        sim.run(until=1.0)
        for host in hosts.values():
            assert len(host.decisions) == 20
        assert_logs_prefix_consistent(hosts)

    def test_follower_proposals_forwarded(self):
        sim, hosts = make_cluster()
        sim.run(until=0.1)
        hosts[node_id("n3")].propose(cmd(1))
        sim.run(until=1.0)
        assert len(hosts[node_id("n1")].decisions) == 1

    def test_duplicate_proposals_one_slot(self):
        sim, hosts = make_cluster()
        sim.run(until=0.1)
        command = cmd(1)
        for host in hosts.values():
            host.propose(command)
        sim.run(until=1.0)
        payloads = decided_payloads(hosts[node_id("n1")])
        assert payloads.count(command) == 1

    def test_proposals_before_election_are_buffered(self):
        sim, hosts = make_cluster()
        hosts[node_id("n2")].propose(cmd(1))  # no leader known yet
        sim.run(until=1.0)
        assert decided_payloads(hosts[node_id("n2")]) == [cmd(1)]

    def test_decisions_survive_message_loss(self):
        sim, hosts = make_cluster(latency=LatencyModel(drop_probability=0.10), seed=4)
        sim.run(until=0.3)
        for i in range(30):
            sim.at(0.3 + i * 0.01, lambda i=i: hosts[node_id("n2")].propose(cmd(i + 1)))
        sim.run(until=6.0)
        decided_counts = [len(h.decisions) for h in hosts.values()]
        assert min(decided_counts) >= 30
        assert_logs_prefix_consistent(hosts)

    def test_commands_survive_leader_crash(self):
        sim, hosts = make_cluster(seed=6)
        sim.run(until=0.1)
        for i in range(40):
            sim.at(0.1 + i * 0.005, lambda i=i: hosts[node_id("n2")].propose(cmd(i + 1)))
        sim.at(0.2, hosts[node_id("n1")].crash)
        sim.run(until=4.0)
        survivors = [h for h in hosts.values() if not h.crashed]
        cids = {
            p.cid for h in survivors for p in decided_payloads(h) if hasattr(p, "cid")
        }
        assert len(cids) == 40
        assert_logs_prefix_consistent(hosts)

    def test_duplication_and_loss_together(self):
        latency = LatencyModel(drop_probability=0.05, duplicate_probability=0.1)
        sim, hosts = make_cluster(latency=latency, seed=8)
        sim.run(until=0.3)
        for i in range(20):
            sim.at(0.3 + i * 0.01, lambda i=i: hosts[node_id("n3")].propose(cmd(i + 1)))
        sim.run(until=5.0)
        payloads = decided_payloads(hosts[node_id("n1")])
        command_payloads = [p for p in payloads if hasattr(p, "cid")]
        assert len({p.cid for p in command_payloads}) == 20
        # dedup: no command occupies two slots
        assert len(command_payloads) == len({p.cid for p in command_payloads})
        assert_logs_prefix_consistent(hosts)


class TestCatchup:
    def test_partitioned_follower_catches_up(self):
        sim, hosts = make_cluster(seed=5)
        sim.run(until=0.1)
        sim.network.partition("cut", ["n3"], ["n1", "n2"])
        for i in range(15):
            hosts[node_id("n1")].propose(cmd(i + 1))
        sim.run(until=1.0)
        assert len(hosts[node_id("n3")].decisions) == 0
        sim.network.heal("cut")
        sim.run(until=3.0)
        assert len(hosts[node_id("n3")].decisions) == 15
        assert_logs_prefix_consistent(hosts)

    def test_noop_gap_fill_on_leader_change(self):
        # Crash the leader mid-burst; the new leader must render the log
        # gap-free (possibly with Noops) so delivery resumes.
        sim, hosts = make_cluster(seed=7)
        sim.run(until=0.1)
        for i in range(30):
            hosts[node_id("n1")].propose(cmd(i + 1))
        sim.at(0.105, hosts[node_id("n1")].crash)
        sim.run(until=4.0)
        for host in hosts.values():
            if host.crashed:
                continue
            engine = host.engine
            assert not engine.log.has_gap
            assert engine.log.next_to_deliver >= 30 or all(
                isinstance(p, Noop) or hasattr(p, "cid")
                for p in decided_payloads(host)
            )
        assert_logs_prefix_consistent(hosts)


class TestEngineLifecycle:
    def test_stop_silences_engine(self):
        sim, hosts = make_cluster()
        sim.run(until=0.1)
        engine = hosts[node_id("n2")].engine
        engine.stop()
        before = len(hosts[node_id("n2")].decisions)
        hosts[node_id("n1")].propose(cmd(1))
        sim.run(until=1.0)
        assert len(hosts[node_id("n2")].decisions) == before

    def test_next_undelivered_slot_watermark(self):
        sim, hosts = make_cluster()
        sim.run(until=0.1)
        assert hosts[node_id("n1")].engine.next_undelivered_slot == 0
        hosts[node_id("n1")].propose(cmd(1))
        sim.run(until=1.0)
        assert hosts[node_id("n1")].engine.next_undelivered_slot == 1


class TestProposalKey:
    def test_command_key_uses_cid(self):
        command = cmd(3)
        assert proposal_key(command) == ("cmd", command.cid)

    def test_noop_has_no_key(self):
        assert proposal_key(Noop()) is None

    def test_raw_hashables_get_raw_key(self):
        assert proposal_key("x") == ("raw", "x")
        assert proposal_key(7) == ("raw", 7)

    def test_unhashable_payloads_get_none(self):
        assert proposal_key(["list"]) is None


class TestDeterminism:
    def _run(self, seed):
        sim, hosts = make_cluster(seed=seed)
        sim.run(until=0.1)
        for i in range(10):
            hosts[node_id("n2")].propose(cmd(i + 1))
        sim.run(until=1.0)
        return [
            (str(h.node), [str(p) for p in decided_payloads(h)])
            for h in hosts.values()
        ], sim.events_executed

    def test_same_seed_same_outcome(self):
        assert self._run(21) == self._run(21)
