"""Live sharded-service tests: real groups, real director, real cutover.

Each test spawns one subprocess per replica (three per group), so the
whole file rides behind the ``live`` marker like the other subprocess
suites. Coverage:

* a keyspace written through the smart client lands on every serving
  group and reads back correctly (the routing path);
* a split under concurrent load keeps the merged client history
  linearizable across the drain-and-cutover (the safety path);
* one group grows and shrinks by a replica — the paper's reconfiguration
  — while the other group and the shard map stay serving (the elastic
  path).
"""

import pytest

from repro.shard.cluster import ShardedCluster
from repro.shard.client import fetch_shard_map
from repro.shard.scenario import run_split_scenario

pytestmark = [pytest.mark.live, pytest.mark.slow]


class TestLiveRouting:
    def test_keyspace_served_across_groups(self):
        keys = [f"key-{i:03d}" for i in range(30)]
        with ShardedCluster(3, replicas_per_group=3) as cluster:
            cluster.start()
            shard_map = cluster.shard_map
            assert shard_map.serving_groups() == ("g1", "g2", "g3")
            with cluster.client("t-route") as client:
                for i, key in enumerate(keys):
                    assert client.submit("set", (key, i)).value == "ok"
                spread = client.shard_map.spread(keys)
                assert sum(spread.values()) == len(keys)
                assert all(spread[g] > 0 for g in ("g1", "g2", "g3"))
                for i, key in enumerate(keys):
                    assert client.submit("get", (key,), size=32).value == i
                # scan fans out across groups and merges every key.
                assert client.scan("key-") == tuple(sorted(keys))
            # The director serves the same map over its wire endpoint.
            fetched = fetch_shard_map(cluster.director_address())
            assert fetched.version == shard_map.version
            assert fetched.assignments == shard_map.assignments


class TestLiveSplit:
    def test_split_under_load_is_linearizable(self):
        report = run_split_scenario(
            groups=2, replicas_per_group=3, clients=2, keys=12, settle=0.6
        )
        assert not report.errors, report.lines()
        assert report.version_after > report.version_before, report.lines()
        assert report.moved is not None, report.lines()
        assert report.linearizable is not None
        assert report.linearizable.ok, report.lines()
        # The spare really took over part of the keyspace.
        spare = report.moved[2]
        assert report.spread_after.get(spare, 0) > 0, report.lines()
        assert report.ok, report.lines()


class TestLiveElasticMembership:
    def test_add_then_remove_replica_in_one_group(self):
        with ShardedCluster(2, replicas_per_group=3) as cluster:
            cluster.start()
            version_0 = cluster.shard_map.version
            with cluster.client("t-elastic") as client:
                for i in range(10):
                    client.submit("set", (f"k{i}", i))

                joiner = cluster.add_replica("g1")
                grown = cluster.shard_map
                assert grown.version > version_0
                assert joiner in grown.group_info("g1").members
                assert len(grown.group_info("g1").members) == 4
                # Only g1 changed; g2 kept its original membership.
                assert len(grown.group_info("g2").members) == 3

                # Both groups still serve reads after the reconfiguration.
                for i in range(10):
                    assert client.submit("get", (f"k{i}",), size=32).value == i

                removed = cluster.remove_replica("g1", joiner)
                shrunk = cluster.shard_map
                assert removed == joiner
                assert shrunk.version > grown.version
                assert joiner not in shrunk.group_info("g1").members
                for i in range(10):
                    assert client.submit("get", (f"k{i}",), size=32).value == i
