"""Unit tests for the sharded storm cells (no live cluster).

Mirrors ``test_storm.py`` for the sharded members of the storm family:
plan determinism and shape, the dispatch seam through the data-plane
``build_storm_plan``, and the map-chain linearity oracle the director
cell gates on — the one check that would catch a double-install (a
skipped or repeated map version) even when every individual operation
looks fine.
"""

import pytest

from repro.net.storm import STORM_SCENARIOS, build_storm_plan
from repro.shard.storm import (
    SHARD_STORM_SCENARIOS,
    build_shard_storm_plan,
    check_chain_linear,
)


class TestPlanDeterminism:
    @pytest.mark.parametrize("scenario", SHARD_STORM_SCENARIOS)
    def test_same_seed_same_bytes(self, scenario):
        a = build_shard_storm_plan(scenario, seed=99).to_json()
        b = build_shard_storm_plan(scenario, seed=99).to_json()
        assert a == b

    @pytest.mark.parametrize("scenario", SHARD_STORM_SCENARIOS)
    def test_different_seeds_differ(self, scenario):
        a = build_shard_storm_plan(scenario, seed=1).to_json()
        b = build_shard_storm_plan(scenario, seed=2).to_json()
        assert a != b

    @pytest.mark.parametrize("scenario", SHARD_STORM_SCENARIOS)
    def test_dispatched_through_the_storm_family_front_door(self, scenario):
        # `repro storm director` goes through net.storm's builder; the
        # sharded scenarios must come back byte-identical through it.
        front = build_storm_plan(scenario, seed=7).to_json()
        direct = build_shard_storm_plan(scenario, seed=7).to_json()
        assert front == direct

    def test_families_do_not_overlap(self):
        assert not set(STORM_SCENARIOS) & set(SHARD_STORM_SCENARIOS)
        with pytest.raises(ValueError):
            build_shard_storm_plan("overlap", seed=1)


class TestPlanShapes:
    def test_director_plan_is_split_then_move_back(self):
        plan = build_shard_storm_plan("director", seed=42)
        assert [step.members[0] for step in plan.steps] == [
            "split", "move-back",
        ]
        # The second step trails the first by enough for the failover
        # (hold + takeover + replayed cutover) to complete in between.
        assert plan.steps[1].offset - plan.steps[0].offset > 1.5
        # The kill is condition-triggered, not scheduled: the window it
        # aims at (retired, not installed) has no wall-clock address.
        assert not plan.schedule.sorted_actions()

    def test_shard_plan_races_membership_against_the_move(self):
        plan = build_shard_storm_plan("shard", seed=42)
        ops = [step.members[0] for step in plan.steps]
        assert ops == ["add-replica", "split", "remove-replica"]
        offsets = [step.offset for step in plan.steps]
        assert offsets == sorted(offsets)
        assert plan.duration > offsets[-1]

    def test_scale_stretches_offsets(self):
        base = build_shard_storm_plan("shard", seed=3, scale=1.0)
        wide = build_shard_storm_plan("shard", seed=3, scale=2.0)
        assert wide.steps[0].offset > base.steps[0].offset


class TestChainOracle:
    def test_accepts_a_linear_chain(self):
        chain = tuple(
            {"version": v, "kind": "move", "detail": ""} for v in (1, 2, 3)
        )
        assert check_chain_linear(chain) is None

    def test_rejects_a_gap(self):
        chain = tuple(
            {"version": v, "kind": "move", "detail": ""} for v in (1, 3)
        )
        assert "not linear" in check_chain_linear(chain)

    def test_rejects_a_double_install(self):
        # The failure the intent protocol exists to prevent: two drivers
        # both completing would archive the same version twice.
        chain = tuple(
            {"version": v, "kind": "move", "detail": ""} for v in (1, 2, 2)
        )
        assert check_chain_linear(chain) is not None

    def test_rejects_an_empty_chain(self):
        assert check_chain_linear(()) is not None
