"""Tests for the one-call verification API."""

import pytest

from repro.errors import VerificationError
from repro.sim.runner import Simulator
from repro.verify import verify_run
from tests.conftest import run_kv_service


class TestVerifyRun:
    def test_clean_run_reports_coverage(self):
        sim = Simulator(seed=921)
        service, clients, finished = run_kv_service(
            sim, n_ops=40, client_count=2, reconfigs=[(0.4, ("n1", "n2", "n4"))]
        )
        assert finished
        report = verify_run(service.replicas.values(), clients)
        assert report.operations == 80
        assert report.pending_operations == 0
        assert report.kv_keys_checked > 0
        assert report.epochs == 2
        assert "linearizable" in str(report)

    def test_detects_forged_reply(self):
        sim = Simulator(seed=922)
        service, clients, finished = run_kv_service(sim, n_ops=30)
        assert finished
        # Forge a client record: pretend a get returned a wrong value.
        victim = clients[0].records[-1]
        if victim.op != "get":
            victim = next(r for r in reversed(clients[0].records) if r.op == "get")
        victim.value = "FORGED"
        with pytest.raises(VerificationError):
            verify_run(service.replicas.values(), clients)

    def test_linearizability_check_can_be_skipped(self):
        sim = Simulator(seed=923)
        service, clients, finished = run_kv_service(sim, n_ops=20)
        assert finished
        clients[0].records[-1].value = "FORGED"
        report = verify_run(
            service.replicas.values(), clients, check_linearizability=False
        )
        assert report.kv_keys_checked == 0  # structural checks only

    def test_counts_pending_operations(self):
        sim = Simulator(seed=924)
        # Stop mid-run so a client has an outstanding op.
        service, clients, finished = run_kv_service(
            sim, n_ops=10_000, until=0.6
        )
        assert not finished
        report = verify_run(service.replicas.values(), clients)
        assert report.pending_operations >= 1
