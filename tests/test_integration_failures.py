"""End-to-end correctness under failures: crashes, partitions, lossy links."""

from repro.apps.counter import CounterStateMachine
from repro.apps.kvstore import KvStateMachine
from repro.core.client import ClientParams
from repro.core.service import ReplicatedService
from repro.sim.failures import FailureInjector, FailureSchedule
from repro.sim.network import LatencyModel
from repro.sim.runner import Simulator
from repro.types import node_id
from repro.verify.histories import History
from repro.verify.invariants import (
    check_chain_agreement,
    check_prefix_consistency,
    check_reply_consistency,
)
from repro.verify.linearizability import check_kv_linearizable
from repro.workload.generators import counter_increments


def kv_clients(service, count, n_ops, timeout=0.3):
    clients = []
    for i in range(count):
        budget = [n_ops]
        rng = service.sim.rng.fork(f"itc{i}")

        def ops(budget=budget, rng=rng):
            if budget[0] <= 0:
                return None
            budget[0] -= 1
            key = f"k{rng.randint(0, 5)}"
            if rng.random() < 0.5:
                return ("get", (key,), 32)
            return ("set", (key, budget[0]), 64)

        clients.append(
            service.make_client(
                f"c{i}", ops, ClientParams(start_delay=0.2, request_timeout=timeout)
            )
        )
    return clients


def assert_correct(service, clients):
    history = History.from_clients(clients)
    assert check_kv_linearizable(history).ok
    live = [r for r in service.replicas.values()]
    check_prefix_consistency(live)
    check_chain_agreement(live)
    check_reply_consistency(live)


class TestCrashes:
    def test_follower_crash_transparent(self):
        sim = Simulator(seed=201)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        clients = kv_clients(service, 2, 50)
        FailureInjector(sim, FailureSchedule().crash(0.4, "n3")).arm()
        done = sim.run_until(lambda: all(c.finished for c in clients), timeout=30.0)
        assert done
        assert_correct(service, clients)

    def test_leader_crash_recovers(self):
        sim = Simulator(seed=202)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        clients = kv_clients(service, 2, 60)
        # n1 is the deterministic initial leader.
        FailureInjector(sim, FailureSchedule().crash(0.4, "n1")).arm()
        done = sim.run_until(lambda: all(c.finished for c in clients), timeout=30.0)
        assert done
        assert_correct(service, clients)

    def test_crash_then_replacement_reconfig(self):
        sim = Simulator(seed=203)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        clients = kv_clients(service, 2, 80)
        FailureInjector(sim, FailureSchedule().crash(0.4, "n2")).arm()
        service.reconfigure_at(0.6, ["n1", "n3", "n4"])
        # Wait for the epoch change too: the workload can drain a hair
        # before t=0.6 (wire sizes — and so simulated latencies — shrank
        # with the binary codec), and stopping there would skip the
        # reconfiguration this test exists to exercise.
        done = sim.run_until(
            lambda: all(c.finished for c in clients)
            and service.newest_epoch() == 1,
            timeout=40.0,
        )
        assert done
        assert_correct(service, clients)
        assert service.newest_epoch() == 1

    def test_crash_leader_and_replace_it(self):
        sim = Simulator(seed=204)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        clients = kv_clients(service, 2, 80)
        FailureInjector(sim, FailureSchedule().crash(0.4, "n1")).arm()
        service.reconfigure_at(0.6, ["n2", "n3", "n4"])
        done = sim.run_until(lambda: all(c.finished for c in clients), timeout=40.0)
        assert done
        assert_correct(service, clients)

    def test_joiner_crash_does_not_block_others(self):
        sim = Simulator(seed=205)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        clients = kv_clients(service, 2, 80)
        service.reconfigure_at(0.4, ["n1", "n2", "n4"])
        # n4 dies right after joining; quorum {n1,n2} keeps the epoch live.
        FailureInjector(sim, FailureSchedule().crash(0.55, "n4")).arm()
        done = sim.run_until(lambda: all(c.finished for c in clients), timeout=40.0)
        assert done
        assert_correct(service, clients)


class TestPartitions:
    def test_minority_partition_heals(self):
        sim = Simulator(seed=206)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        clients = kv_clients(service, 2, 60)
        schedule = (
            FailureSchedule()
            .partition(0.4, "cut", ["n3"], ["n1", "n2"])
            .heal(1.0, "cut")
        )
        FailureInjector(sim, schedule).arm()
        done = sim.run_until(lambda: all(c.finished for c in clients), timeout=40.0)
        assert done
        sim.run(until=sim.now + 1.5)
        assert_correct(service, clients)

    def test_leader_isolated_then_healed(self):
        sim = Simulator(seed=207)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        clients = kv_clients(service, 2, 60)
        schedule = (
            FailureSchedule()
            .partition(0.4, "iso", ["n1"], ["n2", "n3"])
            .heal(1.2, "iso")
        )
        FailureInjector(sim, schedule).arm()
        done = sim.run_until(lambda: all(c.finished for c in clients), timeout=40.0)
        assert done
        sim.run(until=sim.now + 1.5)
        assert_correct(service, clients)

    def test_reconfig_during_partition_of_leaving_node(self):
        sim = Simulator(seed=208)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        clients = kv_clients(service, 2, 60)
        FailureInjector(
            sim, FailureSchedule().partition(0.35, "cut", ["n3"], ["n1", "n2", "n4"])
        ).arm()
        service.reconfigure_at(0.45, ["n1", "n2", "n4"])
        done = sim.run_until(lambda: all(c.finished for c in clients), timeout=40.0)
        assert done
        assert_correct(service, clients)


class TestLossyNetwork:
    def test_kv_linearizable_under_loss(self):
        sim = Simulator(seed=209, latency=LatencyModel(drop_probability=0.05))
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        clients = kv_clients(service, 2, 40, timeout=0.4)
        service.reconfigure_at(0.5, ["n1", "n2", "n4"])
        done = sim.run_until(lambda: all(c.finished for c in clients), timeout=60.0)
        assert done
        assert_correct(service, clients)

    def test_exactly_once_under_loss_and_duplication(self):
        sim = Simulator(
            seed=210,
            latency=LatencyModel(drop_probability=0.05, duplicate_probability=0.05),
        )
        service = ReplicatedService(sim, ["n1", "n2", "n3"], CounterStateMachine)
        n_increments = 60
        client = service.make_client(
            "c1",
            counter_increments("c1", n_increments),
            ClientParams(start_delay=0.2, request_timeout=0.3),
        )
        service.reconfigure_at(0.5, ["n2", "n3", "n4"])
        done = sim.run_until(lambda: client.finished, timeout=60.0)
        assert done
        sim.run(until=sim.now + 2.0)
        values = {
            r.state.inner.value("c")
            for r in service.live_members()
            if r.state is not None
        }
        assert values == {n_increments}
