"""Tests for warm standbys (observers) and warm promotion."""

from repro.apps.kvstore import KvStateMachine
from repro.core.client import ClientParams
from repro.core.service import ReplicatedService
from repro.sim.runner import Simulator
from repro.types import node_id
from repro.verify.invariants import run_all_invariants


def make_loaded_service(sim, preload=10_000):
    def app():
        kv = KvStateMachine()
        kv.preload(preload)
        return kv

    return ReplicatedService(sim, ["n1", "n2", "n3"], app)


def run_client(sim, service, n_ops=60, start=0.2):
    budget = [n_ops]

    def ops():
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        return ("set", (f"k{budget[0] % 7}", budget[0]), 64)

    return service.make_client("c1", ops, ClientParams(start_delay=start))


class TestObserverTracking:
    def test_observer_bootstraps_and_follows(self):
        sim = Simulator(seed=51)
        service = make_loaded_service(sim, preload=100)
        client = run_client(sim, service, 50)
        observer = service.add_observer("w1")
        sim.run_until(lambda: client.finished, timeout=20.0)
        sim.run(until=sim.now + 1.0)
        member = service.replicas[node_id("n1")]
        assert observer._observer_bootstrapped
        assert observer.virtual_index == member.virtual_index
        assert observer.state.snapshot() == member.state.snapshot()

    def test_observer_does_not_vote_or_propose(self):
        sim = Simulator(seed=52)
        service = make_loaded_service(sim, preload=10)
        observer = service.add_observer("w1")
        client = run_client(sim, service, 20)
        sim.run_until(lambda: client.finished, timeout=20.0)
        assert all(rt.engine is None for rt in observer.chain.values())
        assert observer.is_retired

    def test_observer_tracks_through_reconfiguration(self):
        sim = Simulator(seed=53)
        service = make_loaded_service(sim, preload=100)
        observer = service.add_observer("w1")
        client = run_client(sim, service, 80)
        service.reconfigure_at(0.5, ["n1", "n2", "n4"])
        sim.run_until(lambda: client.finished, timeout=30.0)
        sim.run(until=sim.now + 1.5)
        member = service.replicas[node_id("n1")]
        assert observer.newest_epoch == member.newest_epoch
        assert observer.virtual_index == member.virtual_index

    def test_observer_survives_sponsor_crash(self):
        sim = Simulator(seed=54)
        service = make_loaded_service(sim, preload=100)
        observer = service.add_observer("w1")
        client = run_client(sim, service, 80)
        # Crash whichever member the observer first subscribed to.
        first_target = observer._observe_targets[0]
        sim.at(0.5, service.replicas[first_target].crash)
        sim.run_until(lambda: client.finished, timeout=30.0)
        sim.run(until=sim.now + 2.0)
        live = [r for r in service.replicas.values()
                if not r.crashed and not r.is_retired]
        assert observer.virtual_index == max(r.virtual_index for r in live)


class TestWarmPromotion:
    def test_promotion_without_bulk_transfer(self):
        sim = Simulator(seed=55)
        # Slow pipe: a cold join would visibly pay for the snapshot.
        sim.network.latency.bandwidth = 5_000_000.0
        service = make_loaded_service(sim, preload=30_000)
        observer = service.add_observer("w1")
        client = run_client(sim, service, 100)
        sim.run(until=1.0)  # let the observer warm up
        assert observer._observer_bootstrapped
        service.reconfigure(["n1", "n2", "w1"])
        sim.run_until(lambda: client.finished, timeout=30.0)
        sim.run(until=sim.now + 2.0)
        # Promoted: engine exists and no snapshot fetch ever started.
        assert any(rt.engine is not None for rt in observer.chain.values())
        assert observer._transfer is None
        member = service.replicas[node_id("n1")]
        assert observer.virtual_index == member.virtual_index
        run_all_invariants(service.replicas.values())

    def test_warm_join_faster_than_cold_join(self):
        def join_latency(warm: bool) -> float:
            sim = Simulator(seed=56)
            sim.network.latency.bandwidth = 5_000_000.0
            service = make_loaded_service(sim, preload=40_000)
            client = run_client(sim, service, None or 10_000)
            if warm:
                service.add_observer("w1")
                target = ["n1", "n2", "w1"]
            else:
                target = ["n1", "n2", "w1"]
            sim.run(until=1.5)
            service.reconfigure(target)
            joiner = service.replicas[node_id("w1")]
            ok = sim.run_until(
                lambda: joiner.epoch_runtime(1) is not None
                and joiner.epoch_runtime(1).start_state_ready,
                timeout=20.0,
            )
            assert ok
            return sim.now - 1.5

        warm = join_latency(True)
        cold = join_latency(False)
        assert warm < cold / 2, (warm, cold)

    def test_promoted_observer_serves_clients(self):
        sim = Simulator(seed=57)
        service = make_loaded_service(sim, preload=100)
        service.add_observer("w1")
        client = run_client(sim, service, 60)
        sim.run(until=0.6)
        service.reconfigure(["n2", "n3", "w1"])
        done = sim.run_until(lambda: client.finished, timeout=30.0)
        assert done
        run_all_invariants(service.replicas.values())
