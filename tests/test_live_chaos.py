"""End-to-end chaos: a seeded failure schedule against a live cluster.

One wall-clock run of the canonical scenario (EXPERIMENTS T10): crash and
restart a follower, partition the epoch-0 leader, drive a live
RECONFIGURE that votes the unreachable leader out mid-partition, heal,
and check the client-observed history for linearizability — the same
closed loop ``repro chaos`` runs in CI. Budgeted at 60 s wall clock like
the other live tests.
"""

import time

import pytest

from repro.net.chaos import run_chaos_scenario
from repro.verify import check_kv_linearizable, dump_jsonl, load_jsonl

pytestmark = [pytest.mark.live, pytest.mark.slow]

WALL_CLOCK_BUDGET = 60.0


class TestLiveChaos:
    def test_canonical_scenario_is_linearizable(self, tmp_path):
        started = time.monotonic()
        report = run_chaos_scenario(replicas=3, seed=42, log_dir=tmp_path / "logs")
        elapsed = time.monotonic() - started
        assert report.ok, "\n".join(report.lines())

        # The schedule executed fully, in plan order, at its offsets.
        names = [type(i.action).__name__ for i in report.injections]
        assert names == ["CrashAt", "RestartAt", "PartitionAt", "HealAt"]
        for injection in report.injections:
            assert injection.applied_at >= injection.scheduled_at - 0.05
        partition = report.injections[2]
        # The leader was isolated while the epoch was cut under it...
        assert partition.action.side_a == ("n1",)
        assert partition.acks, "no replica acknowledged the partition"
        # ...and the reconfiguration landed: n1 voted out, joiner adopted.
        assert report.reconfigured
        assert "n1" not in report.final_members
        assert "n4" in report.final_members

        # The service stayed correct under all of it.
        assert report.linearizable.ok
        assert len(report.history.completed) > 50
        # Rules were pushed over the wire without a single failed ack.
        assert not [e for e in report.errors if "push" in e], report.errors

        # The recorded evidence survives a round-trip to disk and still
        # passes the checker offline (the `repro chaos --history` path).
        path = tmp_path / "history.jsonl"
        dump_jsonl(report.history, path)
        reloaded = load_jsonl(path)
        assert len(reloaded) == len(report.history)
        assert check_kv_linearizable(reloaded).ok

        assert elapsed < WALL_CLOCK_BUDGET, f"chaos scenario took {elapsed:.1f}s"

    def test_batched_commit_path_is_linearizable(self, tmp_path):
        """T14 acceptance: the batched, pipelined commit path survives the
        canonical failure schedule — including the mid-load RECONFIGURE —
        and the client-observed history still passes Wing–Gong. Batching
        must demultiplex per-command replies correctly and must not let a
        batch straddle the epoch cut."""
        started = time.monotonic()
        report = run_chaos_scenario(
            replicas=3, seed=42, log_dir=tmp_path / "logs", batching=True
        )
        elapsed = time.monotonic() - started
        assert report.ok, "\n".join(report.lines())
        assert report.reconfigured
        assert report.linearizable.ok
        assert len(report.history.completed) > 50
        assert elapsed < WALL_CLOCK_BUDGET, f"batched chaos took {elapsed:.1f}s"
