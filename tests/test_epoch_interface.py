"""Unit tests for EpochRuntime, Transport, HeartbeatMonitor, and errors."""

import pytest

from repro.consensus.heartbeat import HeartbeatMonitor
from repro.consensus.interface import InstanceMessage, Transport
from repro.core.command import ReconfigCommand
from repro.core.epoch import EpochRuntime
from repro.errors import (
    AgreementViolation,
    ConfigurationError,
    HistoryError,
    NetworkError,
    ProtocolError,
    ReproError,
    SimulationError,
    StateTransferError,
    VerificationError,
)
from repro.sim.node import Process
from repro.sim.runner import Simulator
from repro.types import CommandId, Configuration, Membership, client_id, node_id


class TestEpochRuntime:
    def _runtime(self):
        return EpochRuntime(config=Configuration(2, Membership.of("n1", "n2")))

    def test_fresh_runtime_is_open(self):
        runtime = self._runtime()
        assert not runtime.sealed
        assert not runtime.effective_complete
        assert not runtime.fully_executed

    def test_sealing_lifecycle(self):
        runtime = self._runtime()
        runtime.effective = ["a", "b", "c"]
        runtime.cut_slot = 2
        assert runtime.sealed
        assert runtime.effective_complete
        runtime.executed = 2
        assert not runtime.fully_executed
        runtime.executed = 3
        assert runtime.fully_executed

    def test_sealed_but_incomplete(self):
        runtime = self._runtime()
        runtime.effective = ["a"]
        runtime.cut_slot = 2
        assert runtime.sealed
        assert not runtime.effective_complete

    def test_describe_mentions_state(self):
        runtime = self._runtime()
        assert "open" in runtime.describe()
        runtime.cut_slot = 0
        assert "sealed" in runtime.describe()


class _Host(Process):
    def __init__(self, sim, node):
        super().__init__(sim, node)
        self.inbox = []

    def on_message(self, payload, sender):
        self.inbox.append((payload, sender))


class TestTransport:
    def test_wraps_messages_in_instance_envelope(self):
        sim = Simulator(seed=81)
        a = _Host(sim, node_id("a"))
        b = _Host(sim, node_id("b"))
        transport = Transport(a, "e3")
        transport.send(b.node, "inner-payload", size=10)
        sim.run()
        payload, sender = b.inbox[0]
        assert isinstance(payload, InstanceMessage)
        assert payload.instance == "e3"
        assert payload.inner == "inner-payload"
        assert sender == "a"

    def test_transport_rng_is_stable_per_instance(self):
        sim1 = Simulator(seed=82)
        sim2 = Simulator(seed=82)
        t1 = Transport(_Host(sim1, node_id("a")), "e1")
        t2 = Transport(_Host(sim2, node_id("a")), "e1")
        assert [t1.rng.random() for _ in range(5)] == [t2.rng.random() for _ in range(5)]

    def test_timer_and_now(self):
        sim = Simulator(seed=83)
        a = _Host(sim, node_id("a"))
        transport = Transport(a, "e0")
        fired = []
        transport.set_timer(0.5, lambda: fired.append(transport.now))
        sim.run()
        assert fired == [0.5]


class TestHeartbeatMonitor:
    def _setup(self):
        sim = Simulator(seed=84)
        host = _Host(sim, node_id("a"))
        transport = Transport(host, "e0")
        fired = []
        monitor = HeartbeatMonitor(transport, 0.1, 0.2, lambda: fired.append(sim.now))
        return sim, monitor, fired

    def test_fires_after_silence(self):
        sim, monitor, fired = self._setup()
        monitor.start()
        sim.run(until=0.25)
        assert len(fired) >= 1
        assert 0.1 <= fired[0] <= 0.2

    def test_heard_from_leader_postpones(self):
        sim, monitor, fired = self._setup()
        monitor.start()
        for i in range(5):
            sim.at(i * 0.05, monitor.heard_from_leader)
        sim.run(until=0.25)
        assert not [t for t in fired if t < 0.25]

    def test_refires_until_stopped(self):
        sim, monitor, fired = self._setup()
        monitor.start()
        sim.run(until=1.0)
        assert len(fired) >= 4  # keeps campaigning on failure

    def test_stop_silences(self):
        sim, monitor, fired = self._setup()
        monitor.start()
        monitor.stop()
        sim.run(until=1.0)
        assert fired == []


class TestReconfigCommand:
    def test_carries_cid_for_dedup(self):
        command = ReconfigCommand(
            CommandId(client_id("admin"), 1), Membership.of("n1", "n2")
        )
        from repro.consensus.interface import proposal_key

        assert proposal_key(command) == ("cmd", command.cid)

    def test_str_mentions_target(self):
        command = ReconfigCommand(
            CommandId(client_id("admin"), 1), Membership.of("n9")
        )
        assert "n9" in str(command)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SimulationError,
            NetworkError,
            ProtocolError,
            AgreementViolation,
            ConfigurationError,
            StateTransferError,
            VerificationError,
            HistoryError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_agreement_violation_is_protocol_error(self):
        assert issubclass(AgreementViolation, ProtocolError)

    def test_history_error_is_verification_error(self):
        assert issubclass(HistoryError, VerificationError)
