"""Tests for boundary-state transfer, including the chunked/resumable mode."""

from repro.apps.kvstore import KvStateMachine
from repro.consensus.multipaxos import MultiPaxosEngine
from repro.core.client import ClientParams
from repro.core.reconfig import ReconfigParams
from repro.core.service import ReplicatedService
from repro.core.state_transfer import TransferTask
from repro.sim.network import LatencyModel
from repro.sim.runner import Simulator
from repro.types import node_id


def chunked_params(chunk_bytes):
    return ReconfigParams(
        engine_factory=MultiPaxosEngine.factory(),
        transfer_chunk_bytes=chunk_bytes,
    )


def make_service(sim, params=None, preload=5000):
    def app():
        kv = KvStateMachine()
        kv.preload(preload)
        return kv

    return ReplicatedService(sim, ["n1", "n2", "n3"], app, params=params)


def drive_join(sim, service, budget_ops=40):
    budget = [budget_ops]

    def ops():
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        return ("set", (f"k{budget[0] % 5}", budget[0]), 64)

    client = service.make_client("c1", ops, ClientParams(start_delay=0.2))
    service.reconfigure_at(0.4, ["n1", "n2", "n4"])
    done = sim.run_until(lambda: client.finished, timeout=30.0)
    sim.run(until=sim.now + 2.0)
    return client, done


class TestTransferTask:
    def test_round_robin_sources(self):
        task = TransferTask(epoch=1, sources=[node_id("a"), node_id("b")])
        assert [task.pick_source() for _ in range(4)] == ["a", "b", "a", "b"]
        assert task.attempts == 4


class TestSingleShotTransfer:
    def test_joiner_gets_state(self):
        sim = Simulator(seed=31)
        service = make_service(sim)
        client, done = drive_join(sim, service)
        assert done
        joiner = service.replicas[node_id("n4")]
        assert joiner.epoch_runtime(1).start_state_ready
        assert len(joiner.state.inner) >= 5000

    def test_transfer_bytes_hit_the_wire(self):
        sim = Simulator(seed=32)
        service = make_service(sim, preload=10_000)
        drive_join(sim, service)
        by_type = sim.network.stats.bytes_by_type
        assert by_type.get("SnapshotReply", 0) > 10_000 * 80


class TestChunkedTransfer:
    def test_chunked_join_completes(self):
        sim = Simulator(seed=33)
        service = make_service(sim, params=chunked_params(64_000))
        client, done = drive_join(sim, service)
        assert done
        joiner = service.replicas[node_id("n4")]
        assert joiner.epoch_runtime(1).start_state_ready
        assert joiner._transfer.total_chunks > 1
        assert len(joiner.state.inner) >= 5000

    def test_chunk_count_matches_snapshot_size(self):
        sim = Simulator(seed=34)
        chunk = 50_000
        service = make_service(sim, params=chunked_params(chunk), preload=10_000)
        drive_join(sim, service)
        joiner = service.replicas[node_id("n4")]
        expected_size = 16 + 88 * 10_000 + 32 * 1  # kv + dedup table entry
        expected_chunks = -(-expected_size // chunk)
        assert abs(joiner._transfer.total_chunks - expected_chunks) <= 1

    def test_chunked_matches_single_shot_result(self):
        results = {}
        for label, params in (
            ("single", None),
            ("chunked", chunked_params(40_000)),
        ):
            sim = Simulator(seed=35)
            service = make_service(sim, params=params)
            drive_join(sim, service)
            joiner = service.replicas[node_id("n4")]
            results[label] = joiner.state.snapshot()
        assert results["single"] == results["chunked"]

    def test_resumes_across_source_crash(self):
        sim = Simulator(seed=36)
        # Slow the pipe so the transfer is in flight when the source dies.
        sim.network.latency.bandwidth = 2_000_000.0
        service = make_service(sim, params=chunked_params(30_000), preload=20_000)
        budget = [30]

        def ops():
            if budget[0] <= 0:
                return None
            budget[0] -= 1
            return ("set", (f"k{budget[0] % 5}", budget[0]), 64)

        client = service.make_client("c1", ops, ClientParams(start_delay=0.2))
        service.reconfigure_at(0.4, ["n1", "n2", "n4"])

        # Crash a member mid-transfer; chunks resume from the others.
        sim.at(0.6, service.replicas[node_id("n3")].crash)
        done = sim.run_until(lambda: client.finished, timeout=40.0)
        assert done
        sim.run(until=sim.now + 3.0)
        joiner = service.replicas[node_id("n4")]
        assert joiner.epoch_runtime(1).start_state_ready
        # Resumption, not restart: progress is monotonic in chunk index.
        assert joiner._transfer.next_chunk == joiner._transfer.total_chunks

    def test_chunked_survives_lossy_network(self):
        sim = Simulator(seed=37, latency=LatencyModel(drop_probability=0.08))
        service = make_service(sim, params=chunked_params(50_000), preload=8_000)
        client, done = drive_join(sim, service)
        assert done
        joiner = service.replicas[node_id("n4")]
        sim.run_until(
            lambda: joiner.epoch_runtime(1) is not None
            and joiner.epoch_runtime(1).start_state_ready,
            timeout=30.0,
        )
        assert joiner.epoch_runtime(1).start_state_ready
