"""Determinism tests for the seeded RNG tree."""

from hypothesis import given, strategies as st

from repro.sim.rng import SeededRng


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_fork_is_deterministic_across_instances(self):
        a = SeededRng(42).fork("network")
        b = SeededRng(42).fork("network")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_fork_independent_of_parent_consumption(self):
        parent_a = SeededRng(42)
        parent_b = SeededRng(42)
        parent_b.random()  # consume from one parent only
        child_a = parent_a.fork("x")
        child_b = parent_b.fork("x")
        assert child_a.random() == child_b.random()

    def test_different_fork_names_differ(self):
        parent = SeededRng(42)
        a = parent.fork("a")
        b = parent.fork("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_uniform_bounds(self):
        rng = SeededRng(7)
        for _ in range(100):
            value = rng.uniform(1.0, 2.0)
            assert 1.0 <= value <= 2.0

    def test_randint_bounds(self):
        rng = SeededRng(7)
        values = {rng.randint(0, 3) for _ in range(200)}
        assert values == {0, 1, 2, 3}

    @given(st.integers(min_value=1, max_value=200))
    def test_zipf_index_in_range(self, n):
        rng = SeededRng(1)
        for _ in range(20):
            assert 0 <= rng.zipf_index(n, 1.1) < n

    def test_zipf_skews_toward_low_indices(self):
        rng = SeededRng(3)
        draws = [rng.zipf_index(100, 1.5) for _ in range(2000)]
        low = sum(1 for d in draws if d < 10)
        assert low > len(draws) * 0.5

    def test_choice_and_shuffle_deterministic(self):
        a, b = SeededRng(9), SeededRng(9)
        items = list(range(10))
        items_b = list(range(10))
        a.shuffle(items)
        b.shuffle(items_b)
        assert items == items_b
        assert a.choice(items) == b.choice(items_b)

    def test_expovariate_positive(self):
        rng = SeededRng(5)
        assert all(rng.expovariate(10.0) > 0 for _ in range(50))
