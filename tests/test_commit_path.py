"""Commit-path campaign tests: WAL group commit, lazy appends, batching
latency bounds, the pipelined client's coalescing and stall reporting,
and the optional uvloop runtime.

The engine-level batching semantics (size cap, ordering, epoch-cut
interaction, linearizability through reconfig) live in
``test_batching.py``; this file covers the pieces the T14 speed campaign
added around them.
"""

import socket
import time

import pytest

from repro.consensus.ballot import Ballot
from repro.consensus.interface import Batch, StaticSmrHost
from repro.consensus.multipaxos import MultiPaxosEngine, PaxosParams
from repro.errors import SimulationError
from repro.net.client import LiveClient, LiveClientError
from repro.net.runtime import make_event_loop
from repro.sim.runner import Simulator
from repro.storage.store import ReplicaStore
from repro.storage.wal import WalWriter, read_wal_file
from repro.types import Command, CommandId, Membership, client_id, node_id


def cmd(seq, client="c"):
    return Command(CommandId(client_id(client), seq), "set", ("k", seq))


# ---------------------------------------------------------------------------
# WAL group commit + lazy appends
# ---------------------------------------------------------------------------


class TestGroupCommit:
    def _writer(self, tmp_path, monkeypatch):
        """A WalWriter whose os.fsync calls are counted."""
        import repro.storage.wal as wal_mod

        calls = []
        real_fsync = wal_mod.os.fsync

        def counting_fsync(fd):
            calls.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(wal_mod.os, "fsync", counting_fsync)
        syncs = []
        writer = WalWriter(
            tmp_path / "wal.log", fsync=True, on_sync=syncs.append
        )
        return writer, calls, syncs

    def test_group_window_amortizes_to_one_fsync(self, tmp_path, monkeypatch):
        writer, fsyncs, syncs = self._writer(tmp_path, monkeypatch)
        for i in range(8):
            writer.append(cmd(i + 1), defer_sync=True)
        assert fsyncs == []  # nothing forced yet
        made_durable = writer.sync_deferred()
        assert made_durable == 8
        assert len(fsyncs) == 1
        assert syncs == [8]  # the group-commit size the histogram sees
        writer.close()
        records, torn = read_wal_file(tmp_path / "wal.log")
        assert torn == 0 and len(records) == 8

    def test_empty_window_costs_no_fsync(self, tmp_path, monkeypatch):
        writer, fsyncs, syncs = self._writer(tmp_path, monkeypatch)
        assert writer.sync_deferred() == 0
        assert fsyncs == [] and syncs == []
        writer.close()

    def test_ungrouped_append_syncs_immediately(self, tmp_path, monkeypatch):
        writer, fsyncs, syncs = self._writer(tmp_path, monkeypatch)
        writer.append(cmd(1))
        assert len(fsyncs) == 1 and syncs == [1]
        writer.close()

    def test_lazy_append_never_demands_fsync(self, tmp_path, monkeypatch):
        writer, fsyncs, syncs = self._writer(tmp_path, monkeypatch)
        writer.append(cmd(1), lazy=True)
        assert fsyncs == []
        assert writer.sync_deferred() == 0  # lazy frames are not deferred
        assert fsyncs == []
        # ...but the next natural fsync covers them (fsync covers every
        # byte written before it), and the frame is already readable.
        writer.append(cmd(2))
        assert len(fsyncs) == 1
        writer.close()
        records, torn = read_wal_file(tmp_path / "wal.log")
        assert torn == 0 and [r.cid.seq for r in records] == [1, 2]

    def test_append_many_is_one_write_one_sync(self, tmp_path, monkeypatch):
        writer, fsyncs, syncs = self._writer(tmp_path, monkeypatch)
        writer.append_many([cmd(i + 1) for i in range(5)])
        assert len(fsyncs) == 1 and syncs == [5]
        writer.close()
        records, _ = read_wal_file(tmp_path / "wal.log")
        assert [r.cid.seq for r in records] == [1, 2, 3, 4, 5]

    def test_store_group_window_is_reentrant(self, tmp_path):
        store = ReplicaStore(tmp_path / "d")
        handle = store.instance("i")
        with store.group():
            handle.record_accept(0, Ballot(1, node_id("n1")), cmd(1))
            with store.group():
                handle.record_accept(1, Ballot(1, node_id("n1")), cmd(2))
            # Inner close must not sync: the outer window is still open.
            assert store.metrics.counter("wal.fsyncs").value == 0
        assert store.metrics.counter("wal.fsyncs").value == 1
        summary = store.metrics.histogram("wal.group_commit_size").summary()
        assert summary["count"] == 1 and summary["mean"] == 2.0
        store.close()

    def test_decide_records_are_lazy(self, tmp_path):
        """A decide caches a quorum-durable outcome: no fsync of its own."""
        store = ReplicaStore(tmp_path / "d")
        handle = store.instance("i")
        handle.record_accept(0, Ballot(1, node_id("n1")), cmd(1))
        after_accept = store.metrics.counter("wal.fsyncs").value
        assert after_accept == 1  # accepts pay for durability...
        handle.record_decide(0, cmd(1))
        assert store.metrics.counter("wal.fsyncs").value == after_accept
        assert store.metrics.counter("wal.appends").value == 2
        store.close()
        # The lazy record still lands on disk via flush + close.
        store2 = ReplicaStore(tmp_path / "d")
        recovered = store2.instance("i").recover()
        assert recovered is not None and 0 in recovered.decided
        store2.close()


# ---------------------------------------------------------------------------
# Batching latency bound + degenerate batch
# ---------------------------------------------------------------------------


def make_cluster(params, seed=1):
    sim = Simulator(seed=seed)
    members = Membership.of("n1", "n2", "n3")
    hosts = {
        n: StaticSmrHost(sim, n, members, MultiPaxosEngine.factory(params))
        for n in members
    }
    return sim, hosts


class TestFlushLatencyBound:
    def test_single_command_rides_bare_within_delay(self):
        """A trickle must not wait for a full batch: the flush timer bounds
        added latency by ``batch_delay``, and a batch of one is encoded as
        the bare command (zero byte overhead for the degenerate case)."""
        delay = 0.005
        sim, hosts = make_cluster(
            PaxosParams(batch_delay=delay, batch_max=64), seed=11
        )
        sim.run(until=0.1)
        proposed_at = sim.now
        hosts[node_id("n1")].propose(cmd(1))
        done = sim.run_until(
            lambda: len(hosts[node_id("n2")].decisions) > 0, timeout=5.0
        )
        assert done
        decision = hosts[node_id("n2")].decisions[0]
        # Bare command, not a one-element Batch wrapper.
        assert not isinstance(decision.payload, Batch)
        assert decision.payload == cmd(1)
        # Decided within the latency bound plus a round trip's slack.
        assert sim.now - proposed_at < delay + 0.05

    def test_trickle_of_singles_all_flush(self):
        delay = 0.004
        sim, hosts = make_cluster(
            PaxosParams(batch_delay=delay, batch_max=64), seed=12
        )
        sim.run(until=0.1)
        for i in range(5):
            hosts[node_id("n1")].propose(cmd(i + 1))
            sim.run(until=sim.now + 10 * delay)  # gaps far beyond the bound
        total = sum(
            len(d.payload) if isinstance(d.payload, Batch) else 1
            for d in hosts[node_id("n3")].decisions
        )
        assert total == 5
        # Spread-out commands must not have been merged into batches.
        assert all(
            not isinstance(d.payload, Batch)
            for d in hosts[node_id("n3")].decisions
        )


# ---------------------------------------------------------------------------
# Pipelined client: stall reporting
# ---------------------------------------------------------------------------


class TestPipelinedStallReport:
    def test_stall_error_names_unacked_indices(self):
        # A port nobody listens on: every connect attempt is refused, so
        # no op is ever acknowledged and the deadline fires.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = LiveClient(
            "c", {"n1": ("127.0.0.1", dead_port)}, request_timeout=0.2
        )
        started = time.monotonic()
        with pytest.raises(LiveClientError) as err:
            client.submit_pipelined(
                [("set", (f"k{i}", i), 64) for i in range(3)],
                window=2,
                deadline=0.7,
            )
        assert time.monotonic() - started < 5.0
        message = str(err.value)
        assert "0/3 acknowledged" in message
        assert "deadline 0.7s" in message
        assert "window 2" in message
        assert "unacknowledged op indices: [0, 1, 2]" in message

    def test_stall_error_truncates_long_index_lists(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = LiveClient(
            "c", {"n1": ("127.0.0.1", dead_port)}, request_timeout=0.2
        )
        with pytest.raises(LiveClientError) as err:
            client.submit_pipelined(
                [("set", (f"k{i}", i), 64) for i in range(15)],
                window=4,
                deadline=0.5,
            )
        assert "... (5 more)" in str(err.value)


# ---------------------------------------------------------------------------
# Optional uvloop runtime
# ---------------------------------------------------------------------------


class TestEventLoopSelection:
    def _uvloop_installed(self):
        try:
            import uvloop  # noqa: F401
        except ImportError:
            return False
        return True

    def test_auto_mode_always_yields_a_loop(self):
        loop, impl = make_event_loop("auto")
        try:
            assert impl in ("uvloop", "asyncio")
            if not self._uvloop_installed():
                assert impl == "asyncio"
            assert loop.run_until_complete(_probe()) == 42
        finally:
            loop.close()

    def test_off_mode_uses_asyncio(self):
        loop, impl = make_event_loop("off")
        loop.close()
        assert impl == "asyncio"

    def test_on_mode_requires_uvloop(self):
        if self._uvloop_installed():
            pytest.skip("uvloop present; the failure path needs it absent")
        with pytest.raises(SimulationError, match="uvloop"):
            make_event_loop("on")

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            make_event_loop("sometimes")


async def _probe():
    return 42


# ---------------------------------------------------------------------------
# Live wire-level batching end to end
# ---------------------------------------------------------------------------


@pytest.mark.live
@pytest.mark.slow
class TestLiveCoalescedPipeline:
    def test_request_and_reply_batches_round_trip(self, tmp_path):
        """A pipelined run deep enough to force RequestBatch frames out
        and ReplyBatch frames back, against a durable batched cluster;
        every command must be acknowledged exactly once and the state
        must reflect the last write per key."""
        from repro.net.client import PIPELINE_COALESCE
        from repro.net.cluster import LocalCluster

        ops = 3 * PIPELINE_COALESCE + 7  # forces multi-frame bursts + a tail
        with LocalCluster(
            replicas=3,
            seed=9,
            durable=True,
            data_root=tmp_path,
            batch_delay_ms=2.0,
            batch_max=64,
            window=8,
        ) as cluster:
            cluster.start()
            with LiveClient(
                "c", cluster.addresses, view=cluster.initial,
                request_timeout=2.0,
            ) as client:
                latencies = client.submit_pipelined(
                    [("set", (f"k{i % 5}", i), 64) for i in range(ops)],
                    window=2 * PIPELINE_COALESCE,
                    deadline=60.0,
                )
                assert len(latencies) == ops
                assert all(lat > 0.0 for lat in latencies)
                # Writes applied in submission order: each key holds the
                # last value written to it.
                for k in range(5):
                    last = max(i for i in range(ops) if i % 5 == k)
                    reply = client.submit("get", (f"k{k}",))
                    assert reply.value == last
