"""Tests for the composition protocol: seals, orphans, transfer, pipelining."""

import pytest

from repro.apps.kvstore import KvStateMachine
from repro.consensus.multipaxos import MultiPaxosEngine
from repro.core.client import ClientParams
from repro.core.command import ReconfigCommand
from repro.core.reconfig import ReconfigParams, ReconfigurableReplica
from repro.core.service import ReplicatedService
from repro.errors import ProtocolError
from repro.sim.runner import Simulator
from repro.types import (
    CommandId,
    Configuration,
    Membership,
    client_id,
    node_id,
)
from tests.conftest import run_kv_service


class TestBootstrap:
    def test_founding_member_starts_epoch_zero(self, sim):
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        replica = service.replicas[node_id("n1")]
        assert replica.newest_epoch == 0
        runtime = replica.epoch_runtime(0)
        assert runtime.start_state_ready
        assert runtime.engine is not None

    def test_bootstrap_outside_membership_rejected(self, sim):
        config = Configuration(0, Membership.of("n1"))
        with pytest.raises(ProtocolError):
            ReconfigurableReplica(
                sim,
                node_id("outsider"),
                KvStateMachine,
                ReconfigParams(engine_factory=MultiPaxosEngine.factory()),
                initial_config=config,
            )

    def test_joining_replica_waits_for_announce(self, sim):
        replica = ReconfigurableReplica(
            sim,
            node_id("n9"),
            KvStateMachine,
            ReconfigParams(engine_factory=MultiPaxosEngine.factory()),
        )
        sim.run(until=0.5)
        assert replica.newest_epoch == -1
        assert replica.chain == {}


class TestSealAndCut:
    def test_reconfig_seals_epoch_and_opens_next(self, sim):
        service, clients, finished = run_kv_service(
            sim, n_ops=50, reconfigs=[(0.4, ("n1", "n2", "n4"))]
        )
        assert finished
        for node in ("n1", "n2"):
            replica = service.replicas[node_id(node)]
            epoch0 = replica.epoch_runtime(0)
            assert epoch0.sealed
            assert isinstance(epoch0.effective[epoch0.cut_slot], ReconfigCommand)
            assert replica.epoch_runtime(1) is not None

    def test_all_members_agree_on_cut(self, sim):
        service, _, finished = run_kv_service(
            sim, n_ops=80, reconfigs=[(0.4, ("n1", "n2", "n4"))], client_count=2
        )
        assert finished
        cuts = {
            service.replicas[node_id(n)].epoch_runtime(0).cut_slot
            for n in ("n1", "n2", "n3")
        }
        assert len(cuts) == 1

    def test_second_reconfig_extends_chain(self, sim):
        service, _, finished = run_kv_service(
            sim,
            n_ops=80,
            reconfigs=[(0.4, ("n1", "n2", "n4")), (0.8, ("n1", "n4", "n5"))],
        )
        assert finished
        assert service.newest_epoch() == 2

    def test_duplicate_reconfig_request_is_single_epoch(self, sim):
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        # Same admin command delivered to every replica: engine-level key
        # dedup must produce exactly one epoch transition.
        sim.at(0.3, lambda: service.reconfigure(["n1", "n2", "n4"]))
        sim.run(until=2.0)
        assert service.newest_epoch() == 1

    def test_noop_reconfig_same_membership_allowed(self, sim):
        service, _, finished = run_kv_service(
            sim, n_ops=30, reconfigs=[(0.4, ("n1", "n2", "n3"))]
        )
        assert finished
        assert service.newest_epoch() == 1
        replica = service.replicas[node_id("n1")]
        assert replica.epoch_runtime(1).config.members == Membership.of("n1", "n2", "n3")


class TestStateTransfer:
    def test_joiner_receives_boundary_state(self, sim):
        service, clients, finished = run_kv_service(
            sim, n_ops=60, reconfigs=[(0.4, ("n1", "n2", "n4"))]
        )
        assert finished
        joiner = service.replicas[node_id("n4")]
        sim.run_until(lambda: joiner.epoch_runtime(1) is not None
                      and joiner.epoch_runtime(1).start_state_ready, timeout=5.0)
        runtime = joiner.epoch_runtime(1)
        assert runtime.start_state_ready
        assert joiner.state is not None

    def test_joiner_state_matches_survivors(self, sim):
        service, clients, finished = run_kv_service(
            sim, n_ops=100, reconfigs=[(0.4, ("n1", "n2", "n4"))]
        )
        assert finished
        sim.run(until=sim.now + 1.0)
        survivor = service.replicas[node_id("n1")]
        joiner = service.replicas[node_id("n4")]
        assert survivor.state is not None and joiner.state is not None
        assert joiner.state.snapshot() == survivor.state.snapshot()
        assert joiner.virtual_index == survivor.virtual_index

    def test_transfer_retries_through_crashed_source(self, sim):
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        sim.at(0.3, lambda: service.reconfigure(["n2", "n3", "n4"]))
        # Crash one potential snapshot source right away; another serves.
        sim.at(0.31, service.replicas[node_id("n1")].crash)
        sim.run(until=4.0)
        joiner = service.replicas[node_id("n4")]
        assert joiner.epoch_runtime(1) is not None
        assert joiner.epoch_runtime(1).start_state_ready


class TestSpeculationGate:
    def test_stw_defers_engine_until_state_ready(self, sim):
        service = ReplicatedService(
            sim, ["n1", "n2", "n3"], KvStateMachine, pipeline_depth=1
        )
        # Track engine-start traces for the joiner's epoch.
        sim.at(0.3, lambda: service.reconfigure(["n1", "n2", "n4"]))
        sim.run(until=3.0)
        joiner = service.replicas[node_id("n4")]
        runtime = joiner.epoch_runtime(1)
        assert runtime is not None
        assert runtime.engine_started
        starts = [
            r for r in sim.trace.records(category="engine-start", source="n4")
        ]
        assert starts and starts[0].detail["speculative"] is False

    def test_speculative_starts_engine_before_state(self, sim):
        service = ReplicatedService(
            sim, ["n1", "n2", "n3"], KvStateMachine, pipeline_depth=None
        )
        # Preload big state so the transfer is slow enough to observe.
        sim.network.latency.bandwidth = 1_000_000.0

        def big_app():
            app = KvStateMachine()
            app.preload(20_000)
            return app

        service.app_factory = big_app
        for replica in service.replicas.values():
            replica.app_factory = big_app
        sim.at(0.3, lambda: service.reconfigure(["n1", "n2", "n4"]))
        sim.run(until=3.0)
        starts = [r for r in sim.trace.records(category="engine-start", source="n4")]
        assert starts and starts[0].detail["speculative"] is True

    def test_depth_two_allows_one_epoch_ahead(self, sim):
        service, _, finished = run_kv_service(
            sim,
            n_ops=60,
            pipeline_depth=2,
            reconfigs=[(0.4, ("n1", "n2", "n4")), (0.6, ("n1", "n2", "n5"))],
        )
        assert finished
        assert service.newest_epoch() == 2


class TestOrphansAndRetirement:
    def test_orphaned_commands_reproposed_not_lost(self, sim):
        # Saturate with several clients so some commands are decided after
        # the cut and must hop to the next epoch.
        service, clients, finished = run_kv_service(
            sim, n_ops=60, client_count=4, reconfigs=[(0.35, ("n1", "n2", "n4"))]
        )
        assert finished
        total = sum(len(c.records) for c in clients)
        assert total == 240

    def test_retired_node_redirects(self, sim):
        service, clients, finished = run_kv_service(
            sim, n_ops=60, reconfigs=[(0.4, ("n1", "n2", "n4"))]
        )
        assert finished
        retired = service.replicas[node_id("n3")]
        assert retired.is_retired
        live = service.live_members()
        assert node_id("n3") not in [r.node for r in live]

    def test_engine_gc_stops_old_epoch(self, sim):
        service, _, finished = run_kv_service(
            sim, n_ops=40, reconfigs=[(0.4, ("n1", "n2", "n4"))]
        )
        assert finished
        sim.run(until=sim.now + 2.0)  # past engine_gc_grace
        survivor = service.replicas[node_id("n1")]
        assert survivor.epoch_runtime(0).engine.stopped

    def test_reply_cache_answers_duplicate_requests(self, sim):
        service, clients, finished = run_kv_service(sim, n_ops=20)
        assert finished
        replica = service.replicas[node_id("n1")]
        from repro.core.client import ClientRequest

        command = None
        for (payload, epoch, vindex) in replica.committed:
            if hasattr(payload, "cid") and not isinstance(payload, ReconfigCommand):
                command = payload
                break
        inbox = []
        sim.network.register(node_id("probe"), lambda m: inbox.append(m))
        replica.on_message(ClientRequest(command, node_id("probe")), node_id("probe"))
        sim.run(until=sim.now + 0.1)
        assert len(inbox) == 1
        assert inbox[0].payload.cid == command.cid


class TestVirtualLog:
    def test_virtual_index_continuous_across_epochs(self, sim):
        service, _, finished = run_kv_service(
            sim, n_ops=60, reconfigs=[(0.4, ("n1", "n2", "n4"))]
        )
        assert finished
        replica = service.replicas[node_id("n1")]
        indices = [v for _, _, v in replica.committed]
        assert indices == list(range(len(indices)))

    def test_epochs_in_committed_are_monotonic(self, sim):
        service, _, finished = run_kv_service(
            sim, n_ops=60, reconfigs=[(0.4, ("n1", "n2", "n4"))]
        )
        assert finished
        replica = service.replicas[node_id("n1")]
        epochs = [e for _, e, _ in replica.committed]
        assert epochs == sorted(epochs)
