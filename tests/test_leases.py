"""Tests for leader-lease local reads: performance path AND safety.

The safety tests are the important ones: lease reads must stay
linearizable through leader crashes and reconfigurations, and must be
refused whenever any of the guard conditions fails.
"""

from repro.apps.kvstore import KvStateMachine
from repro.consensus.multipaxos import MultiPaxosEngine, PaxosParams
from repro.core.client import ClientParams
from repro.core.reconfig import ReconfigParams
from repro.core.service import ReplicatedService
from repro.errors import ConfigurationError
from repro.sim.runner import Simulator
from repro.types import node_id
from repro.verify.histories import History
from repro.verify.linearizability import check_kv_linearizable

import pytest


def lease_service(sim, members=("n1", "n2", "n3")):
    return ReplicatedService(
        sim,
        list(members),
        KvStateMachine,
        params=ReconfigParams(
            engine_factory=MultiPaxosEngine.factory(), read_mode="lease"
        ),
    )


def mixed_clients(sim, service, count=3, n_ops=60, read_ratio=0.6):
    clients = []
    for i in range(count):
        budget = [n_ops]
        rng = sim.rng.fork(f"lease-c{i}")

        def ops(budget=budget, rng=rng):
            if budget[0] <= 0:
                return None
            budget[0] -= 1
            key = f"k{rng.randint(0, 4)}"
            if rng.random() < read_ratio:
                return ("get", (key,), 32)
            return ("set", (key, budget[0]), 64)

        clients.append(
            service.make_client(
                f"c{i}", ops, ClientParams(start_delay=0.3, request_timeout=0.3)
            )
        )
    return clients


class TestLeaseMechanics:
    def test_leader_acquires_lease_after_heartbeat_acks(self):
        sim = Simulator(seed=91)
        service = lease_service(sim)
        sim.run(until=0.5)
        leader = next(
            r
            for r in service.replicas.values()
            if r.epoch_runtime(0).engine.is_leader
        )
        assert leader.epoch_runtime(0).engine.has_read_lease(sim.now)

    def test_followers_have_no_lease(self):
        sim = Simulator(seed=92)
        service = lease_service(sim)
        sim.run(until=0.5)
        followers = [
            r
            for r in service.replicas.values()
            if not r.epoch_runtime(0).engine.is_leader
        ]
        assert followers
        for follower in followers:
            assert not follower.epoch_runtime(0).engine.has_read_lease(sim.now)

    def test_lease_expires_when_isolated(self):
        sim = Simulator(seed=93)
        service = lease_service(sim)
        sim.run(until=0.5)
        leader = next(
            r
            for r in service.replicas.values()
            if r.epoch_runtime(0).engine.is_leader
        )
        sim.network.partition("iso", [str(leader.node)],
                              [str(n) for n in service.replicas if n != leader.node])
        sim.run(until=sim.now + 0.3)  # > lease_duration with no fresh acks
        assert not leader.epoch_runtime(0).engine.has_read_lease(sim.now)

    def test_lease_must_be_below_suspect_timeout(self):
        with pytest.raises(ConfigurationError):
            PaxosParams(suspect_timeout_min=0.1, lease_duration=0.1)
            # constructing the engine performs the check
            sim = Simulator(seed=94)
            ReplicatedService(
                sim,
                ["n1"],
                KvStateMachine,
                params=ReconfigParams(
                    engine_factory=MultiPaxosEngine.factory(
                        PaxosParams(suspect_timeout_min=0.1, lease_duration=0.1)
                    )
                ),
            )

    def test_lease_reads_are_served_locally(self):
        sim = Simulator(seed=95)
        service = lease_service(sim)
        clients = mixed_clients(sim, service, count=2, n_ops=40, read_ratio=0.8)
        done = sim.run_until(lambda: all(c.finished for c in clients), timeout=20.0)
        assert done
        total_lease_reads = sum(r.lease_reads for r in service.replicas.values())
        assert total_lease_reads > 10

    def test_log_mode_serves_no_lease_reads(self):
        sim = Simulator(seed=96)
        service = ReplicatedService(sim, ["n1", "n2", "n3"], KvStateMachine)
        clients = mixed_clients(sim, service, count=2, n_ops=30)
        sim.run_until(lambda: all(c.finished for c in clients), timeout=20.0)
        assert sum(r.lease_reads for r in service.replicas.values()) == 0


class TestLeaseSafety:
    def test_linearizable_through_reconfiguration(self):
        sim = Simulator(seed=97)
        service = lease_service(sim)
        clients = mixed_clients(sim, service, count=3, n_ops=60)
        service.reconfigure_at(0.6, ["n1", "n2", "n4"])
        service.reconfigure_at(1.0, ["n2", "n4", "n5"])
        done = sim.run_until(lambda: all(c.finished for c in clients), timeout=40.0)
        assert done
        history = History.from_clients(clients)
        result = check_kv_linearizable(history)
        assert result.ok, f"lease reads broke linearizability at {result.failing_key}"
        assert sum(r.lease_reads for r in service.replicas.values()) > 0

    def test_linearizable_through_leader_crash(self):
        sim = Simulator(seed=98)
        service = lease_service(sim)
        clients = mixed_clients(sim, service, count=3, n_ops=60)
        sim.at(0.6, service.replicas[node_id("n1")].crash)
        done = sim.run_until(lambda: all(c.finished for c in clients), timeout=40.0)
        assert done
        history = History.from_clients(clients)
        assert check_kv_linearizable(history).ok

    def test_sealed_epoch_refuses_lease_reads(self):
        sim = Simulator(seed=99)
        service = lease_service(sim)
        sim.run(until=0.5)
        leader = next(
            r
            for r in service.replicas.values()
            if r.epoch_runtime(0).engine.is_leader
        )
        # Seal epoch 0 artificially and verify the guard trips.
        from repro.types import Command, CommandId, client_id

        read = Command(CommandId(client_id("probe"), 1), "get", ("k",), size=32)
        assert leader._serve_lease_read(read, node_id("probe-client")) in (True, False)
        runtime = leader.epoch_runtime(0)
        runtime.cut_slot = len(runtime.effective)  # pretend sealed
        assert leader._serve_lease_read(read, node_id("probe-client")) is False

    def test_lagging_execution_refuses_lease_reads(self):
        sim = Simulator(seed=100)
        service = lease_service(sim)
        sim.run(until=0.5)
        leader = next(
            r
            for r in service.replicas.values()
            if r.epoch_runtime(0).engine.is_leader
        )
        runtime = leader.epoch_runtime(0)
        runtime.effective.append(object())  # fake un-executed entry
        from repro.types import Command, CommandId, client_id

        read = Command(CommandId(client_id("probe"), 2), "get", ("k",), size=32)
        assert leader._serve_lease_read(read, node_id("probe-client")) is False

    def test_random_lease_schedules_linearizable(self):
        for seed in (201, 202, 203, 204):
            sim = Simulator(seed=seed)
            service = lease_service(sim)
            clients = mixed_clients(sim, service, count=2, n_ops=40, read_ratio=0.7)
            service.reconfigure_at(0.5 + (seed % 3) * 0.1, ["n1", "n2", "n4"])
            done = sim.run_until(
                lambda: all(c.finished for c in clients), timeout=40.0
            )
            assert done
            history = History.from_clients(clients)
            assert check_kv_linearizable(history).ok, f"seed {seed}"
